"""Figure 12 (Exp-VI): LETopK execution time vs sampling rate ρ.

Time should grow roughly linearly with ρ while precision climbs towards 1
(the paper reports >= 0.8 precision at 5x-20x speedups on subtree-heavy
queries).
"""

import pytest

from repro.bench.experiments import precision_at_k
from repro.search.linear_topk import linear_topk_search

K = 20


@pytest.mark.parametrize("rate", [0.1, 0.5, 1.0])
def test_sampling_rate(benchmark, wiki_indexes, wiki_heavy_query, rate):
    result = benchmark.pedantic(
        linear_topk_search,
        args=(wiki_indexes, wiki_heavy_query),
        kwargs={
            "k": K,
            "sampling_threshold": 0.0,
            "sampling_rate": rate,
            "seed": 1,
            "keep_subtrees": False,
        },
        rounds=2,
        iterations=1,
    )
    exact = linear_topk_search(
        wiki_indexes, wiki_heavy_query, k=K, keep_subtrees=False
    )
    precision = precision_at_k(exact.pattern_keys(), result.pattern_keys())
    benchmark.extra_info["precision"] = round(precision, 3)
    if rate == 1.0:
        assert precision == 1.0
