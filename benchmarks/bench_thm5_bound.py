"""Theorem 5: Hoeffding bound vs Monte-Carlo simulation (cost + validity).

Benchmarks the simulator used by the theory tests and re-asserts that the
simulated mis-ranking rate never exceeds the analytic bound.
"""

from repro.theory.hoeffding import bound_vs_simulation


def test_bound_vs_simulation(benchmark):
    s1 = [0.4] * 60
    s2 = [0.3] * 60
    bound, simulated = benchmark.pedantic(
        bound_vs_simulation,
        args=(s1, s2, 0.3),
        kwargs={"trials": 1000, "seed": 0},
        rounds=3,
        iterations=1,
    )
    assert simulated <= bound + 0.02
