"""Shared fixtures for the pytest-benchmark suite.

One bench module per paper figure/table (see DESIGN.md's per-experiment
index).  Scales are kept below the harness defaults so that
``pytest benchmarks/ --benchmark-only`` finishes in minutes; the full
sweeps that regenerate every row live in ``repro.bench.experiments`` and
run via ``python -m repro.bench.run_all``.
"""

from __future__ import annotations

import pytest

from repro.datasets.imdb import ImdbConfig, generate_imdb_graph
from repro.datasets.queries import WorkloadConfig, generate_workload
from repro.datasets.wiki import WikiConfig, generate_wiki_graph
from repro.index.builder import build_indexes

BENCH_WIKI = WikiConfig(
    num_entities=800,
    num_types=24,
    num_attrs=36,
    vocabulary_size=240,
    seed=23,
)
BENCH_IMDB = ImdbConfig(num_movies=300, num_people=400, seed=23)


@pytest.fixture(scope="session")
def wiki_graph():
    return generate_wiki_graph(BENCH_WIKI)


@pytest.fixture(scope="session")
def wiki_indexes(wiki_graph):
    return build_indexes(wiki_graph, d=3)


@pytest.fixture(scope="session")
def imdb_indexes():
    return build_indexes(generate_imdb_graph(BENCH_IMDB), d=3)


@pytest.fixture(scope="session")
def wiki_queries(wiki_indexes):
    return generate_workload(
        wiki_indexes,
        WorkloadConfig(queries_per_size=2, min_keywords=1, max_keywords=6, seed=23),
    )


@pytest.fixture(scope="session")
def imdb_queries(imdb_indexes):
    return generate_workload(
        imdb_indexes,
        WorkloadConfig(queries_per_size=2, min_keywords=1, max_keywords=6, seed=23),
    )


from repro.bench.harness import pick_query_by_subtrees  # noqa: E402


@pytest.fixture(scope="session")
def wiki_light_query(wiki_indexes, wiki_queries):
    """A query with a modest answer set (tens of subtrees)."""
    return pick_query_by_subtrees(wiki_indexes, wiki_queries, 5, 500)


@pytest.fixture(scope="session")
def wiki_heavy_query(wiki_indexes, wiki_queries):
    """The workload's heaviest query (most valid subtrees)."""
    from repro.search.linear_enum import count_answers

    return max(
        wiki_queries,
        key=lambda query: count_answers(wiki_indexes, query)[1],
    )
