"""Figure 8: query time vs number of tree patterns (imdb-like, d=3).

IMDB's graph has directed paths of at most 3 nodes, so d=3 is exhaustive
and answer sets are smaller than Wiki's; the paper reports PETopK fastest
on average with the same ordering as Figure 7.

Like the Figure 7 benches, the workload sweep records per-query p50/p95
latency and entries-materialized counts into the bench JSON so the
query-side trajectory is tracked.
"""

import pytest

from bench_fig07_wiki_by_patterns import profile_workload, record_profile
from repro.search.baseline import baseline_search
from repro.search.linear_topk import linear_topk_search
from repro.search.pattern_enum import pattern_enum_search

ENGINES = {
    "Baseline": baseline_search,
    "LETopK": linear_topk_search,
    "PETopK": pattern_enum_search,
}


@pytest.fixture(scope="module")
def imdb_query(imdb_indexes, imdb_queries):
    from repro.search.linear_enum import count_answers

    return max(
        imdb_queries,
        key=lambda query: count_answers(imdb_indexes, query)[1],
    )


@pytest.mark.parametrize("engine", ENGINES)
def test_imdb_heaviest_query(benchmark, imdb_indexes, imdb_query, engine):
    result = benchmark(
        ENGINES[engine], imdb_indexes, imdb_query, k=100, keep_subtrees=False
    )
    assert result.num_answers > 0
    benchmark.extra_info["answers"] = result.num_answers


@pytest.mark.parametrize("engine", ENGINES)
def test_imdb_workload_sweep(benchmark, imdb_indexes, imdb_queries, engine):
    """One pass over the whole IMDB workload (aggregate cost)."""

    def sweep():
        total = 0
        for query in imdb_queries:
            total += ENGINES[engine](
                imdb_indexes, query, k=100, keep_subtrees=False
            ).num_answers
        return total

    total = benchmark.pedantic(sweep, rounds=2, iterations=1)
    benchmark.extra_info["total_answers"] = total


@pytest.mark.parametrize("engine", ENGINES)
def test_imdb_workload_latency_profile(
    benchmark, imdb_indexes, imdb_queries, engine
):
    """p50/p95 per-query latency + zero-materialization (see Figure 7)."""

    def sweep():
        return profile_workload(ENGINES[engine], imdb_indexes, imdb_queries)

    latencies, materialized = benchmark.pedantic(sweep, rounds=2, iterations=1)
    assert materialized == 0
    record_profile(benchmark, latencies, materialized)
