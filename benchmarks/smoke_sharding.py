"""BENCH_5: sharded scatter–gather serving — work reduction + exactness.

Partitions the wiki synthetic (d=3) posting store into K shards by root
type (pattern-containment partitioning, see ``docs/sharding.md``), serves
the same heavy 1-3 keyword workload BENCH_3/BENCH_4 use through a
:class:`ShardedSearchService` worker pool, and measures **bound-driven
shard skipping**: how much posting work the per-shard score upper bounds
prove away before a shard is ever sent the query.

Per shard count K in {2, 4, 7}, each query runs at the report ``k`` and
at ``k=1`` (tight thresholds are where skipping bites):

* **divergence gate** — every sharded answer list (scores, pattern keys,
  subtree rows) must be bit-identical to a cold single-store
  ``TableAnswerEngine`` run; any mismatch fails the bench (exit 1);
* **shards skipped / dispatched** — totals from ``SearchStats``;
* **postings work avoided** — for each skipped shard, the posting-list
  entries under its candidate roots that were never scanned, as a
  fraction of the query's total posting work.

The bench also **fails (exit 1) if no shard is ever skipped** across the
whole grid — the bound machinery regressing to "dispatch everything"
must not pass silently.  CI runs the ``smoke`` profile and uploads the
JSON; ``full`` is the acceptance configuration (800 entities)::

    PYTHONPATH=src python benchmarks/smoke_sharding.py --profile full \
        --out BENCH_5.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.datasets.queries import WorkloadConfig, generate_workload
from repro.datasets.wiki import WikiConfig, generate_wiki_graph
from repro.index.builder import ResolvedQuery, build_indexes
from repro.index.shards import partition_indexes
from repro.search.context import EnumerationContext
from repro.search.engine import TableAnswerEngine
from repro.search.linear_enum import count_answers
from repro.search.sharding import ShardedSearchService

SHARD_COUNTS = (2, 4, 7)

PROFILES = {
    # ~seconds in CI; mirrors the BENCH_3/BENCH_4 smoke graph.
    "smoke": {
        "wiki": WikiConfig(
            num_entities=120, num_types=8, num_attrs=12,
            vocabulary_size=60, seed=5,
        ),
        "min_subtrees": 64,
        "max_queries": 8,
    },
    # The acceptance configuration: wiki synthetic, 800 entities, d=3.
    "full": {
        "wiki": WikiConfig(
            num_entities=800, num_types=24, num_attrs=36,
            vocabulary_size=240, seed=23,
        ),
        "min_subtrees": 4096,
        "max_queries": 10,
    },
}


def heavy_workload(indexes, min_subtrees, max_queries):
    """Deduplicated 1-3 keyword queries in the heavy answer-set group."""
    seen = set()
    heavy = []
    for seed in (23, 29, 31, 37, 41):
        for query in generate_workload(
            indexes,
            WorkloadConfig(
                queries_per_size=6, min_keywords=1, max_keywords=3, seed=seed
            ),
        ):
            if query in seen:
                continue
            seen.add(query)
            _patterns, subtrees = count_answers(indexes, query)
            if subtrees >= min_subtrees:
                heavy.append(query)
        if len(heavy) >= max_queries:
            break
    return heavy[:max_queries]


def fingerprint(result):
    return (
        result.scores(),
        result.pattern_keys(),
        [answer.num_subtrees for answer in result.answers],
        [
            [tuple(combo) for combo in answer.subtrees]
            for answer in result.answers
        ],
    )


def posting_work(indexes, words, roots):
    """Posting entries a store-native scan touches under ``roots``."""
    root_first = indexes.root_first
    return sum(
        root_first.path_count(word, root)
        for root in roots
        for word in words
    )


def run(profile_name: str, k: int, out_path: str) -> int:
    profile = PROFILES[profile_name]
    graph = generate_wiki_graph(profile["wiki"])
    indexes = build_indexes(graph, d=3)
    queries = heavy_workload(
        indexes, profile["min_subtrees"], profile["max_queries"]
    )
    if not queries:
        print("error: no heavy queries in the workload", file=sys.stderr)
        return 1
    k_values = sorted({1, k})

    # The no-cache oracle: cold engine on a pinned snapshot per (query, k).
    snap = indexes.snapshot()
    engine = TableAnswerEngine(snap.graph, indexes=snap)
    oracle = {
        (query, kk): fingerprint(engine.search(query, k=kk))
        for query in queries
        for kk in k_values
    }
    divergences = []
    per_k = {}

    for num_shards in SHARD_COUNTS:
        sharded = partition_indexes(indexes, num_shards)
        dispatched = skipped = failovers = 0
        work_total = work_avoided = 0
        latencies = []
        with ShardedSearchService(
            indexes, num_shards=num_shards, sharded=sharded
        ) as service:
            for query in queries:
                plan_words = service.plan(query, k=k).words
                candidates = EnumerationContext(
                    snap, ResolvedQuery(plan_words)
                ).candidate_roots
                parts = sharded.partition_roots(candidates)
                query_work = posting_work(snap, plan_words, candidates)
                for kk in k_values:
                    service._results.clear()  # measure execution, not cache
                    started = time.perf_counter()
                    result = service.search(query, k=kk)
                    latencies.append(time.perf_counter() - started)
                    if fingerprint(result) != oracle[(query, kk)]:
                        divergences.append(
                            {
                                "num_shards": num_shards,
                                "k": kk,
                                "query": " ".join(query),
                            }
                        )
                    stats = result.stats
                    dispatched += len(stats.shard_dispatch_order)
                    skipped += stats.shards_skipped
                    failovers += stats.shard_failovers
                    work_total += query_work
                    skipped_ids = set(range(num_shards)) - set(
                        stats.shard_dispatch_order
                    )
                    work_avoided += sum(
                        posting_work(snap, plan_words, parts[shard])
                        for shard in skipped_ids
                    )
        per_k[num_shards] = {
            "shard_paths": [s.store.num_paths for s in sharded.shards],
            "searches": len(queries) * len(k_values),
            "shards_dispatched": dispatched,
            "shards_skipped": skipped,
            "shard_failovers": failovers,
            "postings_work_total": work_total,
            "postings_work_avoided": work_avoided,
            "work_reduction": (
                work_avoided / work_total if work_total else 0.0
            ),
            "mean_latency_ms": (
                sum(latencies) / len(latencies) * 1000 if latencies else None
            ),
        }

    total_skipped = sum(row["shards_skipped"] for row in per_k.values())
    report = {
        "bench": "BENCH_5",
        "profile": profile_name,
        "k": k,
        "k_values": k_values,
        "d": indexes.d,
        "num_entities": profile["wiki"].num_entities,
        "queries": [" ".join(query) for query in queries],
        "per_shard_count": {str(n): row for n, row in per_k.items()},
        "total_shards_skipped": total_skipped,
        "divergences": divergences,
        "acceptance": {
            "bit_identical_met": not divergences,
            "shards_skipped_met": total_skipped > 0,
        },
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    for num_shards, row in per_k.items():
        print(
            f"K={num_shards}: dispatched {row['shards_dispatched']}, "
            f"skipped {row['shards_skipped']} "
            f"(work reduction {row['work_reduction']:.1%}, "
            f"mean {row['mean_latency_ms']:.2f} ms)"
        )
    print(f"wrote {out_path}")
    if divergences:
        print(
            f"FAIL: {len(divergences)} sharded results diverged from the "
            "cold single-store engine",
            file=sys.stderr,
        )
        return 1
    if total_skipped == 0:
        print(
            "FAIL: no shard was ever skipped — the per-shard bounds "
            "stopped pruning",
            file=sys.stderr,
        )
        return 1
    print("all sharded results identical to the single-store engine")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="smoke"
    )
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument("--out", default="BENCH_5.json")
    args = parser.parse_args(argv)
    return run(args.profile, args.k, args.out)


if __name__ == "__main__":
    sys.exit(main())
