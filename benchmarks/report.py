"""Aggregate every ``BENCH_*.json`` into one trajectory table.

Each PR's smoke bench emits a ``BENCH_<n>.json`` with its own schema but
a shared spine: a ``bench``/``profile`` identity and an ``acceptance``
dict of boolean gates.  This report walks a directory (default: cwd),
extracts that spine plus each bench's headline numbers, and prints one
table so the bench history reads as a trajectory instead of a pile of
per-PR artifacts::

    PYTHONPATH=src python benchmarks/report.py [--dir .] [--json out.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _fmt_ms(value) -> str:
    return f"{value:.2f} ms" if isinstance(value, (int, float)) else "-"


def _headline(name: str, data: dict) -> str:
    """The one number this bench exists to track, best-effort per schema."""
    if "update" in data and "compaction" in data:  # BENCH_10 (overlay)
        update = data["update"]
        speedup = update.get("speedup_vs_thaw")
        speedup_text = (
            f" = {speedup:.0f}x vs thaw"
            if isinstance(speedup, (int, float))
            else ""
        )
        return (
            f"update p50 {_fmt_ms(update.get('p50_ms'))} p95 "
            f"{_fmt_ms(update.get('p95_ms'))}{speedup_text}, gen "
            f"{data['compaction'].get('generation', '-')}"
        )
    if "fork_pool" in data:  # BENCH_9 (fork-pool execution backend)
        pool = data["fork_pool"]
        ratio = pool.get("ratio")
        ratio_text = (
            f"{ratio:.2f}x" if isinstance(ratio, (int, float)) else "-"
        )
        required = pool.get("required_ratio")
        floor_text = (
            f" (floor {required:.1f}x)"
            if isinstance(required, (int, float))
            else " (floor waived: 1 core)"
        )
        return (
            f"fork {pool.get('processes_qps', 0):.0f} QPS vs threads "
            f"{pool.get('threads_qps', 0):.0f} = {ratio_text}"
            f"{floor_text} at {data.get('workers', '?')} workers"
        )
    if "sustained" in data and "baseline" in data:  # BENCH_8 (HTTP tier)
        sustained = data["sustained"]
        ratio = sustained.get("ratio_vs_baseline")
        ratio_text = (
            f" ({ratio:.1f}x serial REPL)"
            if isinstance(ratio, (int, float))
            else ""
        )
        return (
            f"sustained {sustained.get('achieved_qps', 0):.0f} QPS"
            f"{ratio_text}, {sustained.get('coalesced', 0)} coalesced"
        )
    if "per_scale" in data:  # BENCH_7 (mmap cold start)
        largest = data["per_scale"][-1]
        return (
            f"{largest['num_entities']} entities: cold start "
            f"{largest['cold_start_speedup']:.0f}x vs v2, serving p50 "
            f"{_fmt_ms(largest['serving']['p50_ms'])}"
        )
    if "per_shard_count" in data:  # BENCH_5 (sharding)
        skipped = data.get("total_shards_skipped")
        return f"{skipped} shards skipped across the grid"
    if "single_query" in data:  # BENCH_4 (serving)
        single = data["single_query"]
        warm = single.get("warm_p50_ms")
        cold = single.get("cold_p50_ms")
        if isinstance(warm, (int, float)) and isinstance(cold, (int, float)):
            return (
                f"warm p50 {_fmt_ms(warm)} vs cold {_fmt_ms(cold)} "
                f"({cold / max(warm, 1e-9):.0f}x)"
            )
    if "speedups" in data:  # BENCH_3 (pruning)
        pairs = ", ".join(
            f"{algo} p50 {ratio:.2f}x"
            for algo, ratio in sorted(data["speedups"].items())
            if isinstance(ratio, (int, float))
        )
        if pairs:
            return pairs
    for key in ("p50_ms", "mean_latency_ms"):
        if isinstance(data.get(key), (int, float)):
            return f"p50 {_fmt_ms(data[key])}"
    return "-"


def _serving_columns(data: dict) -> dict:
    """Best-effort QPS / p99 / shed-rate columns, per schema.

    BENCH_8 (the HTTP tier) populates all three; older serving benches
    surface what they have; figure benches print dashes.
    """
    qps = p99 = shed = ratio = upd = None
    if "update" in data and "compaction" in data:  # BENCH_10
        upd = data["update"].get("p50_ms")
    if "fork_pool" in data:  # BENCH_9
        pool = data["fork_pool"]
        qps = pool.get("processes_qps")
        ratio = pool.get("ratio")
    elif "sustained" in data and "overload" in data:  # BENCH_8
        sustained = data["sustained"]
        qps = sustained.get("achieved_qps")
        p99 = sustained.get("latency_200", {}).get("p99_ms")
        overload = data["overload"]
        total = overload.get("requests")
        if total:
            shed = overload.get("shed_503", 0) / total
    elif "batch_threads" in data:  # BENCH_4
        runs = data["batch_threads"]
        best = runs.get("1") or runs.get(1) or {}
        qps = best.get("qps")
    return {
        "qps": f"{qps:.0f}" if isinstance(qps, (int, float)) else "-",
        "p99": _fmt_ms(p99) if isinstance(p99, (int, float)) else "-",
        "shed": (
            f"{shed * 100:.0f}%" if isinstance(shed, (int, float)) else "-"
        ),
        # Threads-vs-processes trajectory: how much the fork-pool backend
        # buys over the GIL-bound thread bridge at equal worker count.
        "t/p": (
            f"{ratio:.2f}x" if isinstance(ratio, (int, float)) else "-"
        ),
        # Update-latency trajectory: per-mutation p50 through the delta
        # overlay (BENCH_10).
        "upd": _fmt_ms(upd) if isinstance(upd, (int, float)) else "-",
    }


def collect(directory: Path) -> list:
    rows = []
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            rows.append(
                {
                    "file": path.name,
                    "bench": "(unreadable)",
                    "profile": "-",
                    "gates": f"error: {exc}",
                    "headline": "-",
                    "qps": "-",
                    "p99": "-",
                    "shed": "-",
                    "t/p": "-",
                    "upd": "-",
                    "ok": False,
                }
            )
            continue
        acceptance = data.get("acceptance", {})
        gates = (
            ", ".join(
                f"{name}={'ok' if passed else 'FAIL'}"
                for name, passed in sorted(acceptance.items())
            )
            or "-"
        )
        rows.append(
            {
                "file": path.name,
                "bench": data.get("bench", path.stem.lower()),
                "profile": data.get("profile", "-"),
                "gates": gates,
                "headline": _headline(path.stem, data),
                **_serving_columns(data),
                "ok": all(acceptance.values()) if acceptance else True,
            }
        )
    return rows


def format_table(rows: list) -> str:
    if not rows:
        return "no BENCH_*.json files found"
    headers = (
        "file", "bench", "profile", "headline", "qps", "p99", "shed",
        "t/p", "upd", "gates",
    )
    table = [headers] + [
        tuple(str(row[name]) for name in headers) for row in rows
    ]
    widths = [
        max(len(line[i]) for line in table) for i in range(len(headers))
    ]
    lines = []
    for index, line in enumerate(table):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line))
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir", default=".", help="directory holding BENCH_*.json files"
    )
    parser.add_argument(
        "--json", default=None, help="also write the aggregate as JSON"
    )
    args = parser.parse_args(argv)
    rows = collect(Path(args.dir))
    print(format_table(rows))
    if args.json:
        Path(args.json).write_text(json.dumps(rows, indent=2, sort_keys=True))
        print(f"wrote {args.json}")
    return 0 if all(row["ok"] for row in rows) else 1


if __name__ == "__main__":
    sys.exit(main())
