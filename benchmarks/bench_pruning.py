"""BENCH 3: bound-driven pruning — pruned vs unpruned top-k latency.

Times PETopK and LETopK at k=10 on the bench wiki synthetic (800
entities, d=3) with pruning on and off, over the pruning-regime workload
(1-3 keyword queries in the heavy answer-set group; light queries run
unpruned by design via the adaptive gate and are covered by fig07).
Each bench asserts the two variants return identical top-k answers and
records p50/p95 latency plus the pruning counters into the bench JSON.

The standalone ``benchmarks/smoke_pruning.py`` produces the same numbers
as a ``BENCH_3.json`` artifact (CI runs its ``smoke`` profile and fails
on oracle divergence); this module keeps the measurement inside the
pytest-benchmark suite for release-over-release tracking.
"""

import time

import pytest

from repro.search.linear_topk import linear_topk_search
from repro.search.pattern_enum import pattern_enum_search

# Same workload selection and percentile as the BENCH_3.json emitter, so
# both measurements stay aligned by construction.
from smoke_pruning import heavy_workload, percentile

ENGINES = {
    "PETopK": pattern_enum_search,
    "LETopK": linear_topk_search,
}

K = 10
MIN_SUBTREES = 4096


@pytest.fixture(scope="module")
def pruning_queries(wiki_indexes):
    """1-3 keyword wiki queries heavy enough for pruning to engage."""
    queries = heavy_workload(wiki_indexes, MIN_SUBTREES, max_queries=8)
    assert queries, "bench wiki config produced no heavy queries"
    return queries


@pytest.mark.parametrize("engine", ENGINES)
def test_pruning_speedup_profile(
    benchmark, wiki_indexes, pruning_queries, engine
):
    """One pass per variant over the heavy workload; p50/p95 + counters.

    Pruned and unpruned answers are asserted identical per query — the
    recorded speedup is never bought with a wrong result.
    """
    search = ENGINES[engine]
    wiki_indexes.store.bound_columns()  # warm the one-time aggregates

    counters = {"roots_skipped": 0, "prefixes_skipped": 0, "pairs_skipped": 0}
    for query in pruning_queries:
        pruned = search(
            wiki_indexes, query, k=K, prune=True, keep_subtrees=False
        )
        unpruned = search(
            wiki_indexes, query, k=K, prune=False, keep_subtrees=False
        )
        assert pruned.scores() == unpruned.scores()
        assert pruned.pattern_keys() == unpruned.pattern_keys()
        for field in counters:
            counters[field] += getattr(pruned.stats, field)
    assert counters["roots_skipped"] > 0
    assert counters["prefixes_skipped"] > 0

    def sweep():
        latencies = {True: [], False: []}
        for query in pruning_queries:
            for prune in (True, False):
                started = time.perf_counter()
                search(
                    wiki_indexes, query, k=K, prune=prune,
                    keep_subtrees=False,
                )
                latencies[prune].append(time.perf_counter() - started)
        return latencies

    latencies = benchmark.pedantic(sweep, rounds=3, iterations=1)
    pruned = sorted(latencies[True])
    unpruned = sorted(latencies[False])
    for label, fraction in (("p50", 0.5), ("p95", 0.95)):
        pruned_ms = percentile(pruned, fraction) * 1000
        unpruned_ms = percentile(unpruned, fraction) * 1000
        benchmark.extra_info[f"{label}_ms_pruned"] = pruned_ms
        benchmark.extra_info[f"{label}_ms_unpruned"] = unpruned_ms
        benchmark.extra_info[f"speedup_{label}"] = unpruned_ms / pruned_ms
    benchmark.extra_info.update(counters)
    benchmark.extra_info["queries"] = len(pruning_queries)
    benchmark.extra_info["k"] = K
