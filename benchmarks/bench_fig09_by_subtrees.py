"""Figure 9: query time vs number of valid subtrees (Wiki and IMDB).

Theorem 3 predicts LETopK scales linearly in the subtree count; the paper
shows Baseline/LETopK bound by dictionary building with PETopK fastest.
The benches time the engines on queries picked by subtree count so the
growth across the two groups is visible in one report.
"""

import pytest

from repro.bench.harness import pick_query_by_subtrees
from repro.search.baseline import baseline_search
from repro.search.linear_topk import linear_topk_search
from repro.search.pattern_enum import pattern_enum_search

ENGINES = {
    "Baseline": baseline_search,
    "LETopK": linear_topk_search,
    "PETopK": pattern_enum_search,
}


@pytest.fixture(scope="module")
def few_subtrees_query(wiki_indexes, wiki_queries):
    return pick_query_by_subtrees(wiki_indexes, wiki_queries, 1, 100)


@pytest.fixture(scope="module")
def many_subtrees_query(wiki_indexes, wiki_queries):
    query = pick_query_by_subtrees(wiki_indexes, wiki_queries, 1000)
    return query or pick_query_by_subtrees(wiki_indexes, wiki_queries, 100)


@pytest.mark.parametrize("engine", ENGINES)
def test_wiki_few_subtrees(benchmark, wiki_indexes, few_subtrees_query, engine):
    result = benchmark(
        ENGINES[engine],
        wiki_indexes,
        few_subtrees_query,
        k=100,
        keep_subtrees=False,
    )
    benchmark.extra_info["answers"] = result.num_answers


@pytest.mark.parametrize("engine", ENGINES)
def test_wiki_many_subtrees(
    benchmark, wiki_indexes, many_subtrees_query, engine
):
    result = benchmark.pedantic(
        ENGINES[engine],
        args=(wiki_indexes, many_subtrees_query),
        kwargs={"k": 100, "keep_subtrees": False},
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["answers"] = result.num_answers


@pytest.mark.parametrize("engine", ENGINES)
def test_imdb_subtree_scaling(benchmark, imdb_indexes, imdb_queries, engine):
    query = pick_query_by_subtrees(imdb_indexes, imdb_queries, 50)
    if query is None:
        query = imdb_queries[0]
    result = benchmark(
        ENGINES[engine], imdb_indexes, query, k=100, keep_subtrees=False
    )
    benchmark.extra_info["answers"] = result.num_answers
