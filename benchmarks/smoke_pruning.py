"""BENCH_3: bound-driven pruning — speedup profile + oracle divergence gate.

Measures PETopK and LETopK at k=10 on the wiki synthetic (d=3), pruned
vs unpruned, over the *pruning-regime* workload: 1-3 keyword queries
(the paper's Bing-log keyword distribution) whose answer sets are large
enough that top-k selection discards most of the candidate space — the
regime Figures 7/8 call the heavy groups, and the one bound-driven
pruning targets.  Light queries run unpruned by design (the adaptive
gate in the algorithms), so they are measured by the existing fig07/
fig08 benches, not here.

Emits a ``BENCH_3.json`` with per-algorithm p50/p95 latencies for both
variants, the speedups, and the pruning counters, and **fails (exit 1)
if the pruned top-k diverges** from the unpruned run or from the frozen
entry-based reference oracle (``repro.search.reference``) on any query.
CI runs the ``smoke`` profile and uploads the JSON as an artifact; the
``full`` profile reproduces the acceptance numbers (800 entities)::

    PYTHONPATH=src python benchmarks/smoke_pruning.py --profile full \
        --out BENCH_3.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.datasets.queries import WorkloadConfig, generate_workload
from repro.datasets.wiki import WikiConfig, generate_wiki_graph
from repro.index.builder import build_indexes
from repro.search.linear_enum import count_answers
from repro.search.linear_topk import linear_topk_search
from repro.search.pattern_enum import pattern_enum_search
from repro.search.reference import (
    reference_linear_topk_search,
    reference_pattern_enum_search,
)

PROFILES = {
    # ~seconds in CI; mirrors the old quick-bench smoke graph.
    "smoke": {
        "wiki": WikiConfig(
            num_entities=120, num_types=8, num_attrs=12,
            vocabulary_size=60, seed=5,
        ),
        "min_subtrees": 64,
        "repeats": 3,
        "max_queries": 8,
    },
    # The acceptance configuration: wiki synthetic, 800 entities, d=3.
    "full": {
        "wiki": WikiConfig(
            num_entities=800, num_types=24, num_attrs=36,
            vocabulary_size=240, seed=23,
        ),
        "min_subtrees": 4096,
        "repeats": 5,
        "max_queries": 10,
    },
}

ALGORITHMS = {
    "petopk": (pattern_enum_search, reference_pattern_enum_search),
    "letopk": (linear_topk_search, reference_linear_topk_search),
}

PRUNING_COUNTERS = ("roots_skipped", "prefixes_skipped", "pairs_skipped")


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1,
        max(0, round(fraction * (len(sorted_values) - 1))),
    )
    return sorted_values[rank]


def heavy_workload(indexes, min_subtrees, max_queries):
    """Deduplicated 1-3 keyword queries in the heavy answer-set group."""
    seen = set()
    heavy = []
    for seed in (23, 29, 31, 37, 41):
        for query in generate_workload(
            indexes,
            WorkloadConfig(
                queries_per_size=6, min_keywords=1, max_keywords=3, seed=seed
            ),
        ):
            if query in seen:
                continue
            seen.add(query)
            _patterns, subtrees = count_answers(indexes, query)
            if subtrees >= min_subtrees:
                heavy.append(query)
        if len(heavy) >= max_queries:
            break
    return heavy[:max_queries]


def answers_match(a, b):
    return (
        a.scores() == b.scores()
        and a.pattern_keys() == b.pattern_keys()
        and [ans.num_subtrees for ans in a.answers]
        == [ans.num_subtrees for ans in b.answers]
    )


def run(profile_name: str, k: int, out_path: str) -> int:
    profile = PROFILES[profile_name]
    graph = generate_wiki_graph(profile["wiki"])
    indexes = build_indexes(graph, d=3)
    queries = heavy_workload(
        indexes, profile["min_subtrees"], profile["max_queries"]
    )
    if not queries:
        print("error: no heavy queries in the workload", file=sys.stderr)
        return 1
    indexes.store.bound_columns()  # warm the one-time aggregate build
    repeats = profile["repeats"]
    report = {
        "bench": "BENCH_3",
        "profile": profile_name,
        "k": k,
        "d": indexes.d,
        "num_entities": profile["wiki"].num_entities,
        "min_subtrees": profile["min_subtrees"],
        "queries": [" ".join(query) for query in queries],
        "algorithms": {},
    }
    divergent = False
    for name, (search, reference) in ALGORITHMS.items():
        pruned_latencies = []
        unpruned_latencies = []
        counters = {field: 0 for field in PRUNING_COUNTERS}
        oracle_match = True
        for query in queries:
            pruned = search(
                indexes, query, k=k, prune=True, keep_subtrees=False
            )
            unpruned = search(
                indexes, query, k=k, prune=False, keep_subtrees=False
            )
            oracle = reference(indexes, query, k=k, keep_subtrees=False)
            if not (
                answers_match(pruned, unpruned)
                and answers_match(pruned, oracle)
            ):
                oracle_match = False
                divergent = True
                print(
                    f"DIVERGENCE: {name} on {' '.join(query)!r}",
                    file=sys.stderr,
                )
            for field in PRUNING_COUNTERS:
                counters[field] += getattr(pruned.stats, field)
            best_pruned = best_unpruned = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                search(indexes, query, k=k, prune=True, keep_subtrees=False)
                best_pruned = min(best_pruned, time.perf_counter() - started)
                started = time.perf_counter()
                search(indexes, query, k=k, prune=False, keep_subtrees=False)
                best_unpruned = min(
                    best_unpruned, time.perf_counter() - started
                )
            pruned_latencies.append(best_pruned)
            unpruned_latencies.append(best_unpruned)
        pruned_latencies.sort()
        unpruned_latencies.sort()
        entry = {
            "queries": len(queries),
            "oracle_match": oracle_match,
            "counters": counters,
        }
        for label, fraction in (("p50", 0.5), ("p95", 0.95)):
            pruned_ms = percentile(pruned_latencies, fraction) * 1000
            unpruned_ms = percentile(unpruned_latencies, fraction) * 1000
            entry[f"{label}_ms_pruned"] = pruned_ms
            entry[f"{label}_ms_unpruned"] = unpruned_ms
            entry[f"speedup_{label}"] = (
                unpruned_ms and unpruned_ms / pruned_ms or 0.0
            )
        report["algorithms"][name] = entry
        print(
            f"{name}: p50 {entry['p50_ms_unpruned']:.2f} -> "
            f"{entry['p50_ms_pruned']:.2f} ms "
            f"({entry['speedup_p50']:.2f}x), p95 "
            f"{entry['p95_ms_unpruned']:.2f} -> "
            f"{entry['p95_ms_pruned']:.2f} ms "
            f"({entry['speedup_p95']:.2f}x), counters={counters}, "
            f"oracle_match={oracle_match}"
        )
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {out_path}")
    if divergent:
        print("FAIL: pruned top-k diverged from the oracle", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="smoke"
    )
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--out", default="BENCH_3.json")
    args = parser.parse_args(argv)
    return run(args.profile, args.k, args.out)


if __name__ == "__main__":
    sys.exit(main())
