"""Figure 6: index construction cost for d = 2, 3, 4.

Paper numbers (1.89M-entity Wiki, C#): 43 s / 229 MB at d=2 rising to
7,011 s / 34 GB at d=4 — super-linear growth in d.  These benches measure
the same build at bench scale; the d=4 point uses a smaller graph, as the
blow-up is the phenomenon itself.

Beyond build seconds, each point records the figures that the columnar
posting store is meant to improve: peak build memory (``tracemalloc``),
the store's resident byte footprint, the serialized v2 index size, and
the path-dedup ratio — so BENCH_*.json captures the dedup win alongside
the timing.
"""

import tracemalloc

import pytest

from repro.datasets.wiki import WikiConfig, generate_wiki_graph
from repro.index.builder import build_indexes
from repro.index.serialize import save_indexes
from repro.kg.pagerank import pagerank

SMALL_WIKI = WikiConfig(
    num_entities=400, num_types=16, num_attrs=24, vocabulary_size=160, seed=29
)


@pytest.fixture(scope="module")
def small_graph():
    return generate_wiki_graph(SMALL_WIKI)


@pytest.fixture(scope="module")
def small_pagerank(small_graph):
    return pagerank(small_graph)


@pytest.mark.parametrize("d", [2, 3, 4])
def test_index_construction(
    benchmark, small_graph, small_pagerank, d, tmp_path
):
    indexes = benchmark.pedantic(
        build_indexes,
        args=(small_graph,),
        kwargs={"d": d, "pagerank_scores": small_pagerank},
        rounds=2,
        iterations=1,
    )
    assert indexes.num_entries > 0
    benchmark.extra_info["entries"] = indexes.num_entries
    benchmark.extra_info["patterns"] = indexes.num_patterns

    # One instrumented build outside the timing loop: peak allocation.
    tracemalloc.start()
    measured = build_indexes(
        small_graph, d=d, pagerank_scores=small_pagerank
    )
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    benchmark.extra_info["build_peak_bytes"] = peak

    benchmark.extra_info["unique_paths"] = measured.store.num_paths
    benchmark.extra_info["dedup_ratio"] = round(
        measured.store.dedup_ratio(), 4
    )
    benchmark.extra_info["store_bytes"] = measured.store.nbytes()
    benchmark.extra_info["serialized_bytes"] = save_indexes(
        measured, tmp_path / f"fig06_d{d}.idx"
    )


def test_pagerank_precompute(benchmark, small_graph):
    """The PageRank prepass the index build depends on."""
    scores = benchmark(pagerank, small_graph)
    assert len(scores) == small_graph.num_nodes
