"""BENCH_7: memory-mapped v3 index — O(1) cold start at scale.

Builds the scaled wiki synthetic (``scaled_wiki_config``, 1.5k–50k
entities) at each profile scale point, saves the same bundle as both a
FORMAT_VERSION 2 pickled envelope and a FORMAT_VERSION 3 mmap layout,
and measures — **in a fresh forked child per format**, so every load is
genuinely cold for the process:

* **cold start** — ``load_indexes`` wall time and resident-set growth
  (``/proc/self/status`` VmRSS) for v2 (full deserialize) vs v3 (mmap
  open);
* **first query** — latency of one fixed query straight after the load,
  plus the v3 laziness counters: the child asserts
  ``backed_stores_thawed == 0`` (no COW fired) and that
  ``words_materialized`` stays bounded by the query's keywords — the
  load + first query must complete without deserializing posting
  columns into heap lists;
* **oracle gate** — all four algorithms (PETopK, exact LINEARENUM-TOPK,
  sampled LETopK, baseline) replayed over the mapped bundle must be
  bit-identical (scores, pattern keys, subtree rows) to the in-memory
  build, unsharded and through a ``ShardedSearchService`` over a v3
  sharded file at K in {2, 4} (smallest scale point);
* **serving** — p50/p95 over a Zipfian-popularity request stream
  (``zipfian_requests``) served by a ``SearchService`` on the mapped
  bundle.

The bench **fails (exit 1)** on any oracle divergence, on a COW thaw
during read-only serving, or if the v3 cold open is not >= 10x faster
than the v2 deserialize at the largest profile scale.  CI runs the
``smoke`` profile and uploads the JSON; ``full`` adds the 50k-entity
acceptance point::

    PYTHONPATH=src python benchmarks/smoke_mmap.py --profile full \
        --out BENCH_7.json
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import statistics
import sys
import time
from pathlib import Path

from repro.datasets.queries import (
    WorkloadConfig,
    generate_workload,
    zipfian_requests,
)
from repro.datasets.wiki import generate_wiki_graph, scaled_wiki_config
from repro.index.builder import build_indexes
from repro.index.serialize import load_indexes, save_indexes
from repro.index.shards import partition_indexes
from repro.index.serialize import save_sharded_indexes
from repro.search.engine import TableAnswerEngine
from repro.search.service import SearchService
from repro.search.sharding import ShardedSearchService

PROFILES = {
    # CI configuration; the 4000-entity point is "the largest smoke
    # scale" the cold-start gate runs against.
    "smoke": {"scales": [1500, 4000], "num_requests": 120},
    # Acceptance configuration: adds the 50k-entity scale point.
    # ``--scale-500k`` opts the full profile into a 500k-entity point on
    # top — index build takes tens of minutes, so it never runs in CI.
    "full": {"scales": [1500, 4000, 12000, 50000], "num_requests": 300},
}

ALGORITHMS = ("pattern_enum", "linear", "letopk", "baseline")
SHARD_COUNTS = (2, 4)


def fingerprint(result):
    return (
        result.scores(),
        result.pattern_keys(),
        [answer.num_subtrees for answer in result.answers],
        [
            [tuple(combo) for combo in answer.subtrees]
            for answer in result.answers
        ],
    )


def _algo_params(algorithm):
    # Sampled LETopK draws from a seeded stream; pin it so the oracle and
    # the mapped replay sample identically.
    return {"seed": 1234} if algorithm == "letopk" else {}


def _rss_kb():
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    return 0  # pragma: no cover - VmRSS always present on Linux


def _cold_load_child(conn, path, query, k):
    """Forked child: cold ``load_indexes`` + one query, timed.

    Runs in a fresh process so nothing is pre-deserialized and the
    laziness counters start at zero.
    """
    from repro.index.mmapstore import MappedPostingStore

    # Class counters are cumulative and inherited through fork; everything
    # this child reports is the delta from its own start.
    thawed_base = MappedPostingStore.backed_stores_thawed
    words_base = MappedPostingStore.words_materialized
    rss_before = _rss_kb()
    t0 = time.perf_counter()
    indexes = load_indexes(path)
    load_seconds = time.perf_counter() - t0
    rss_loaded = _rss_kb()
    engine = TableAnswerEngine(indexes.graph, indexes=indexes)
    t0 = time.perf_counter()
    result = engine.search(list(query), k=k, algorithm="pattern_enum")
    first_query_seconds = time.perf_counter() - t0
    conn.send(
        {
            "backed": type(indexes.store).__name__ == "MappedPostingStore",
            "load_seconds": load_seconds,
            "first_query_seconds": first_query_seconds,
            "rss_delta_kb": _rss_kb() - rss_before,
            "rss_load_delta_kb": rss_loaded - rss_before,
            "load_seconds_reported": indexes.load_seconds,
            "num_answers": result.num_answers,
            "thawed": MappedPostingStore.backed_stores_thawed - thawed_base,
            "words_materialized": (
                MappedPostingStore.words_materialized - words_base
            ),
        }
    )
    conn.close()


def measure_cold(path, query, k):
    ctx = multiprocessing.get_context("fork")
    parent, child = ctx.Pipe()
    proc = ctx.Process(target=_cold_load_child, args=(child, path, query, k))
    proc.start()
    child.close()
    payload = parent.recv()
    proc.join()
    return payload


def build_scale_point(num_entities):
    config = scaled_wiki_config(num_entities)
    t0 = time.perf_counter()
    graph = generate_wiki_graph(config)
    indexes = build_indexes(graph, d=3)
    build_seconds = time.perf_counter() - t0
    return indexes, build_seconds


def pick_workload(indexes, max_queries):
    queries = generate_workload(
        indexes,
        WorkloadConfig(
            queries_per_size=max_queries, min_keywords=1, max_keywords=3,
            seed=11,
        ),
    )
    # Dedup preserving order; the Zipf stream ranks by position.
    return list(dict.fromkeys(queries))


def oracle_gate(indexes, loaded, queries, k):
    """Replay every (query, algorithm) on the mapped bundle; collect
    divergences against the in-memory build."""
    oracle = TableAnswerEngine(indexes.graph, indexes=indexes)
    mapped = TableAnswerEngine(loaded.graph, indexes=loaded)
    divergences = []
    for query in queries:
        for algorithm in ALGORITHMS:
            params = _algo_params(algorithm)
            expected = fingerprint(
                oracle.search(list(query), k=k, algorithm=algorithm, **params)
            )
            got = fingerprint(
                mapped.search(list(query), k=k, algorithm=algorithm, **params)
            )
            if expected != got:
                divergences.append(
                    {"query": " ".join(query), "algorithm": algorithm}
                )
    return divergences


def sharded_gate(indexes, queries, k, tmp_dir):
    """v3 sharded file served through the fork-worker pool vs oracle."""
    oracle = TableAnswerEngine(indexes.graph, indexes=indexes)
    divergences = []
    for num_shards in SHARD_COUNTS:
        path = Path(tmp_dir) / f"sharded_{num_shards}.idx"
        save_sharded_indexes(partition_indexes(indexes, num_shards), path)
        service = ShardedSearchService.from_file(path)
        try:
            for query in queries:
                for algorithm in ALGORITHMS:
                    params = _algo_params(algorithm)
                    expected = fingerprint(
                        oracle.search(
                            list(query), k=k, algorithm=algorithm, **params
                        )
                    )
                    got = fingerprint(
                        service.search(
                            list(query), k=k, algorithm=algorithm, **params
                        )
                    )
                    if expected != got:
                        divergences.append(
                            {
                                "query": " ".join(query),
                                "algorithm": algorithm,
                                "shards": num_shards,
                            }
                        )
        finally:
            service.close()
    return divergences


def serve_stream(loaded, queries, num_requests, k):
    """Zipfian-popularity stream through a SearchService on the mapped
    bundle; per-request latencies in milliseconds."""
    from repro.index.mmapstore import MappedPostingStore

    thawed_before = MappedPostingStore.backed_stores_thawed
    stream = zipfian_requests(queries, num_requests, alpha=0.9, seed=3)
    service = SearchService(loaded)
    latencies = []
    for query in stream:
        t0 = time.perf_counter()
        service.search(list(query), k=k)
        latencies.append((time.perf_counter() - t0) * 1000.0)
    latencies.sort()
    return {
        "requests": num_requests,
        "distinct_queries": len(queries),
        "p50_ms": statistics.median(latencies),
        "p95_ms": latencies[int(0.95 * (len(latencies) - 1))],
        "result_hit_rate": service.stats.result_hit_rate(),
        "thaws_during_serving": (
            MappedPostingStore.backed_stores_thawed - thawed_before
        ),
    }


def run(profile_name, k, out_path, keep_dir=None, scale_500k=False):
    import tempfile

    profile = PROFILES[profile_name]
    scales = list(profile["scales"])
    if scale_500k:
        scales.append(500_000)
    tmp_dir = keep_dir or tempfile.mkdtemp(prefix="bench_mmap_")
    per_scale = []
    divergences = []
    thaws = 0
    for position, num_entities in enumerate(scales):
        print(f"[{num_entities} entities] building ...", flush=True)
        indexes, build_seconds = build_scale_point(num_entities)
        queries = pick_workload(indexes, max_queries=4)
        first_query = max(queries, key=len)
        base = Path(tmp_dir) / f"wiki_{num_entities}"
        v2_bytes = save_indexes(indexes, base.with_suffix(".v2"), version=2)
        v3_bytes = save_indexes(indexes, base.with_suffix(".v3"), version=3)
        cold_v2 = measure_cold(base.with_suffix(".v2"), first_query, k)
        cold_v3 = measure_cold(base.with_suffix(".v3"), first_query, k)
        assert not cold_v2["backed"] and cold_v3["backed"]
        speedup = cold_v2["load_seconds"] / max(cold_v3["load_seconds"], 1e-9)
        # The O(1) claim, asserted: no COW thaw, and only the first
        # query's keywords came off disk (a few words, not the vocab).
        word_budget = 8 * len(first_query)
        lazy_ok = (
            cold_v3["thawed"] == 0
            and cold_v3["words_materialized"] <= word_budget
        )
        loaded = load_indexes(base.with_suffix(".v3"))
        # Oracle + sharded gates only at the smaller scales: the frozen
        # oracle is the in-memory build, and replaying 4 algorithms x
        # (1 + len(SHARD_COUNTS)) services at 50k entities dominates the
        # bench without adding coverage (laziness/speedup are gated at
        # every scale).
        if num_entities <= 4000:
            divergences += oracle_gate(indexes, loaded, queries, k)
            if position == 0:
                divergences += sharded_gate(indexes, queries, k, tmp_dir)
        serving = serve_stream(
            loaded, queries, profile["num_requests"], k
        )
        thaws += serving["thaws_during_serving"] + cold_v3["thawed"]
        row = {
            "num_entities": num_entities,
            "num_paths": indexes.store.num_paths,
            "num_postings": indexes.store.num_postings(),
            "build_seconds": build_seconds,
            "v2_bytes": v2_bytes,
            "v3_bytes": v3_bytes,
            "cold_v2": cold_v2,
            "cold_v3": cold_v3,
            "cold_start_speedup": speedup,
            "lazy_ok": lazy_ok,
            "serving": serving,
        }
        per_scale.append(row)
        print(
            f"[{num_entities} entities] v2 load "
            f"{cold_v2['load_seconds'] * 1000:.1f} ms "
            f"(+{cold_v2['rss_load_delta_kb']} KB RSS) vs v3 "
            f"{cold_v3['load_seconds'] * 1000:.1f} ms "
            f"(+{cold_v3['rss_load_delta_kb']} KB RSS): "
            f"{speedup:.0f}x; first query "
            f"{cold_v3['first_query_seconds'] * 1000:.1f} ms, "
            f"{cold_v3['words_materialized']} words off disk; "
            f"serving p50 {serving['p50_ms']:.2f} ms "
            f"p95 {serving['p95_ms']:.2f} ms",
            flush=True,
        )
    largest = per_scale[-1]
    speedup_met = largest["cold_start_speedup"] >= 10.0
    lazy_met = all(row["lazy_ok"] for row in per_scale)
    report = {
        "bench": "mmap_v3_cold_start",
        "profile": profile_name,
        "k": k,
        "scales": scales,
        "per_scale": per_scale,
        "divergences": divergences,
        "acceptance": {
            "bit_identical_met": not divergences,
            "speedup_met": speedup_met,
            "no_thaw_met": lazy_met and thaws == 0,
        },
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"wrote {out_path}")
    if divergences:
        print(
            f"FAIL: {len(divergences)} mapped results diverged from the "
            "in-memory oracle",
            file=sys.stderr,
        )
        return 1
    if not speedup_met:
        print(
            f"FAIL: v3 cold open only "
            f"{largest['cold_start_speedup']:.1f}x faster than v2 at "
            f"{largest['num_entities']} entities (>= 10x required)",
            file=sys.stderr,
        )
        return 1
    if not (lazy_met and thaws == 0):
        print(
            "FAIL: backed mode materialized eagerly (thaw fired or the "
            "word counter blew its budget)",
            file=sys.stderr,
        )
        return 1
    print("all mapped results identical to the in-memory oracle")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="smoke"
    )
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument("--out", default="BENCH_7.json")
    parser.add_argument(
        "--scale-500k", action="store_true",
        help="append a 500k-entity scale point (opt-in: tens of minutes "
        "of index build; intended with --profile full)",
    )
    args = parser.parse_args(argv)
    return run(args.profile, args.k, args.out, scale_500k=args.scale_500k)


if __name__ == "__main__":
    sys.exit(main())
