"""Figure 11 (Exp-V): LETopK under different sampling thresholds Λ.

Λ = inf disables sampling entirely (exact, slowest); Λ = 0 samples every
root type at rate ρ (fastest, approximate).  The paper's grid spans
Λ = 1e2..1e7 on millions of subtrees; at bench scale the two endpoints
bracket the same trade-off.
"""

import math

import pytest

from repro.bench.experiments import precision_at_k
from repro.search.linear_topk import linear_topk_search

K = 20
RHO = 0.1


@pytest.mark.parametrize("threshold", [0.0, math.inf], ids=["always", "never"])
def test_sampling_threshold(benchmark, wiki_indexes, wiki_heavy_query, threshold):
    result = benchmark.pedantic(
        linear_topk_search,
        args=(wiki_indexes, wiki_heavy_query),
        kwargs={
            "k": K,
            "sampling_threshold": threshold,
            "sampling_rate": RHO,
            "seed": 1,
            "keep_subtrees": False,
        },
        rounds=2,
        iterations=1,
    )
    exact = linear_topk_search(
        wiki_indexes, wiki_heavy_query, k=K, keep_subtrees=False
    )
    precision = precision_at_k(exact.pattern_keys(), result.pattern_keys())
    benchmark.extra_info["precision"] = round(precision, 3)
    benchmark.extra_info["sampled_types"] = result.stats.sampled_types
    if math.isinf(threshold):
        assert precision == 1.0
