"""Figure 16 (Exp-A-I): execution time vs number of keywords.

The paper: performance does not deteriorate with more keywords — the
bottleneck is the number of valid subtrees, which tends to *shrink* as
keywords are added (more constraints).  The benches time 2-keyword vs
6-keyword queries from the same workload.
"""

import pytest

from repro.search.linear_topk import linear_topk_search
from repro.search.pattern_enum import pattern_enum_search

ENGINES = {
    "LETopK": linear_topk_search,
    "PETopK": pattern_enum_search,
}


def _query_of_size(queries, size):
    for query in queries:
        if len(query) == size:
            return query
    return None


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("size", [2, 6])
def test_vary_keywords(benchmark, wiki_indexes, wiki_queries, engine, size):
    query = _query_of_size(wiki_queries, size)
    if query is None:
        pytest.skip(f"workload has no {size}-keyword query")
    result = benchmark(
        ENGINES[engine], wiki_indexes, query, k=100, keep_subtrees=False
    )
    benchmark.extra_info["keywords"] = size
    benchmark.extra_info["answers"] = result.num_answers
