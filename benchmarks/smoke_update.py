"""BENCH_10: delta-overlay updates — O(delta) mutation on the mapped store.

Before the overlay, the first mutation against a memory-mapped v3 bundle
paid a wholesale thaw: every column copied into heap arrays, RSS jumping
by the full index size, latency by the full deserialization cost.  This
bench pins the new story on a saved-and-reloaded bundle at scale:

* **overlay stream** — ``mutations`` timed ``add_entity`` calls (plus a
  handful of ``add_relationship`` edges for the path-explosion case)
  landing in the heap overlay: p50/p95 per-mutation latency, RSS delta
  across the whole stream, and ``backed_stores_thawed`` pinned at zero;
* **thaw baseline** — a fresh mapping of the same file put through the
  old path (explicit ``thaw()`` + one mutation), timed and RSS-metered:
  the denominator of the **speedup gate** (>= 10x on the smoke scale,
  >= 100x on the 50k full scale) and of the **RSS gate** (the overlay
  stream must stay within a fraction of the thaw copy's footprint);
* **compaction** — the overlay folded into a generation-1 v3 file,
  atomically re-mapped in place: overlay drained, timed;
* **parity gate** — a heap twin of the bundle receives the identical
  mutation sequence; all four algorithms must answer bit-identically on
  (a) the live re-mapped bundle, (b) a cold reload of the compacted
  file, and (c) sharded services at K in {2, 4} over that reload.

Emits ``BENCH_10.json``; exit 1 if any gate fails.  CI runs ``smoke``::

    PYTHONPATH=src python benchmarks/smoke_update.py --out BENCH_10.json
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path

from repro.index.incremental import add_entity, add_relationship
from repro.index.mmapstore import MappedPostingStore
from repro.index.serialize import (
    compact_indexes,
    load_indexes,
    save_indexes,
)
from repro.search.engine import TableAnswerEngine
from repro.search.sharding import ShardedSearchService

from smoke_mmap import (
    ALGORITHMS,
    SHARD_COUNTS,
    _algo_params,
    _rss_kb,
    build_scale_point,
    fingerprint,
    pick_workload,
)

PROFILES = {
    # CI configuration: the largest scale BENCH_7's smoke profile builds.
    "smoke": {"num_entities": 4000, "mutations": 200, "speedup": 10.0},
    # Acceptance configuration: the 50k-entity point from the issue.
    "full": {"num_entities": 50_000, "mutations": 400, "speedup": 100.0},
}

#: Edges interleaved into the entity stream (timed separately — an edge
#: indexes every new bounded path, not one singleton).
RELATIONSHIP_MUTATIONS = 8

#: The overlay stream's RSS growth must stay within this fraction of the
#: thaw copy's, with an absolute floor for allocator noise at small
#: scales.
RSS_FRACTION = 0.5
RSS_FLOOR_KB = 16384


def mutation_plan(queries, num_nodes, mutations):
    """A deterministic mutation sequence, replayable on any twin bundle.

    Entity texts reuse workload words so the writes land in posting
    lists the parity queries actually read; relationship endpoints are
    seeded draws over the *pre-mutation* node range, valid on both
    twins.
    """
    words = [query[0] for query in queries]
    rng = random.Random(4242)
    plan = []
    for index in range(mutations):
        plan.append(("entity", "delta_type", words[index % len(words)]))
    for _ in range(RELATIONSHIP_MUTATIONS):
        plan.append(
            (
                "edge",
                rng.randrange(num_nodes),
                "delta_link",
                rng.randrange(num_nodes),
            )
        )
    return plan


def apply_plan(indexes, plan, timings=None):
    """Replay ``plan``; when ``timings`` is given, record per-kind lists."""
    first_node = None
    for step in plan:
        started = time.perf_counter()
        if step[0] == "entity":
            node = add_entity(indexes, step[1], step[2])
            if first_node is None:
                first_node = node
        else:
            add_relationship(indexes, step[1], step[2], step[3])
        if timings is not None:
            timings[step[0]].append(time.perf_counter() - started)
    return first_node


def parity_divergences(stage, oracle_engine, engine, queries, k):
    divergences = []
    for query in queries:
        for algorithm in ALGORITHMS:
            params = _algo_params(algorithm)
            expected = fingerprint(
                oracle_engine.search(
                    list(query), k=k, algorithm=algorithm, **params
                )
            )
            got = fingerprint(
                engine.search(list(query), k=k, algorithm=algorithm, **params)
            )
            if expected != got:
                divergences.append(
                    {
                        "stage": stage,
                        "query": " ".join(query),
                        "algorithm": algorithm,
                    }
                )
    return divergences


def run(profile_name, k, out_path, keep_dir=None):
    import tempfile

    profile = PROFILES[profile_name]
    num_entities = profile["num_entities"]
    tmp_dir = Path(keep_dir or tempfile.mkdtemp(prefix="bench_update_"))

    print(f"[{num_entities} entities] building ...", flush=True)
    indexes, build_seconds = build_scale_point(num_entities)
    queries = pick_workload(indexes, max_queries=4)
    plan = mutation_plan(
        queries, indexes.graph.num_nodes, profile["mutations"]
    )
    index_path = tmp_dir / f"wiki_{num_entities}.repro"
    save_indexes(indexes, index_path)
    print(
        f"built in {build_seconds:.1f}s, saved "
        f"{index_path.stat().st_size >> 20} MB", flush=True
    )

    # ---- overlay stream: O(delta) writes against the mapped bundle ---
    overlay_bundle = load_indexes(index_path)
    thawed_before = MappedPostingStore.backed_stores_thawed
    rss_before = _rss_kb()
    timings = {"entity": [], "edge": []}
    apply_plan(overlay_bundle, plan, timings)
    overlay_rss_delta = max(0, _rss_kb() - rss_before)
    overlay_thawed = (
        MappedPostingStore.backed_stores_thawed - thawed_before
    )
    assert overlay_thawed == 0, (
        f"overlay mutation phase thawed {overlay_thawed} mapped stores"
    )
    entity_ms = sorted(seconds * 1000.0 for seconds in timings["entity"])
    p50_ms = statistics.median(entity_ms)
    p95_ms = entity_ms[int(0.95 * (len(entity_ms) - 1))]
    edge_p50_ms = statistics.median(timings["edge"]) * 1000.0
    overlay_postings = overlay_bundle.store.overlay_postings
    print(
        f"overlay: {len(entity_ms)} entities p50 {p50_ms:.3f} ms "
        f"p95 {p95_ms:.3f} ms, {RELATIONSHIP_MUTATIONS} edges p50 "
        f"{edge_p50_ms:.3f} ms, {overlay_postings} overlay postings, "
        f"+{overlay_rss_delta} KB RSS, {overlay_thawed} thaws"
    )

    # ---- thaw baseline: the pre-overlay first-mutation cost ----------
    thaw_bundle = load_indexes(index_path)
    rss_before = _rss_kb()
    started = time.perf_counter()
    thaw_bundle.store.thaw()
    add_entity(thaw_bundle, "delta_type", plan[0][2])
    thaw_seconds = time.perf_counter() - started
    thaw_rss_delta = max(1, _rss_kb() - rss_before)
    thaw_count = (
        MappedPostingStore.backed_stores_thawed - thawed_before
    )
    speedup = (thaw_seconds * 1000.0) / max(p50_ms, 1e-9)
    print(
        f"thaw baseline: first mutation {thaw_seconds * 1000.0:.1f} ms "
        f"(+{thaw_rss_delta} KB RSS) -> overlay speedup {speedup:.0f}x "
        f"(floor {profile['speedup']:.0f}x)"
    )
    del thaw_bundle

    # ---- compaction: fold the overlay into generation 1 --------------
    started = time.perf_counter()
    outcome = compact_indexes(overlay_bundle, index_path)
    compact_seconds = time.perf_counter() - started
    overlay_after = overlay_bundle.store.overlay_postings
    print(
        f"compaction: {outcome['bytes'] >> 20} MB re-mapped as generation "
        f"{outcome['generation']} in {compact_seconds:.2f}s, overlay "
        f"{overlay_postings} -> {overlay_after} postings"
    )

    # ---- parity: heap twin with the identical mutation sequence ------
    apply_plan(indexes, plan)
    oracle_engine = TableAnswerEngine(indexes.graph, indexes=indexes)
    live_engine = TableAnswerEngine(
        overlay_bundle.graph, indexes=overlay_bundle
    )
    divergences = parity_divergences(
        "live-remapped", oracle_engine, live_engine, queries, k
    )
    reloaded = load_indexes(index_path)
    reload_generation = reloaded.store.generation
    cold_engine = TableAnswerEngine(reloaded.graph, indexes=reloaded)
    divergences += parity_divergences(
        "cold-reload", oracle_engine, cold_engine, queries, k
    )
    for num_shards in SHARD_COUNTS:
        service = ShardedSearchService(reloaded, num_shards=num_shards)
        try:
            divergences += parity_divergences(
                f"sharded-{num_shards}", oracle_engine, service, queries, k
            )
        finally:
            service.close()
    total_thawed = (
        MappedPostingStore.backed_stores_thawed - thawed_before
    )
    print(
        f"parity: {len(queries)} queries x {len(ALGORITHMS)} algorithms "
        f"on live + cold reload (generation {reload_generation}) + shards "
        f"{list(SHARD_COUNTS)}: {len(divergences)} divergences"
    )

    rss_budget_kb = max(int(RSS_FRACTION * thaw_rss_delta), RSS_FLOOR_KB)
    acceptance = {
        "speedup_met": speedup >= profile["speedup"],
        "no_thaw_met": overlay_thawed == 0 and total_thawed == thaw_count,
        "rss_bounded_met": overlay_rss_delta <= rss_budget_kb,
        "compacted_met": (
            outcome["generation"] == 1
            and overlay_after == 0
            and reload_generation == 1
        ),
        "bit_identical_met": not divergences,
    }
    report = {
        "bench": "BENCH_10",
        "profile": profile_name,
        "k": k,
        "num_entities": num_entities,
        "build_seconds": build_seconds,
        "queries": [" ".join(query) for query in queries],
        "update": {
            "mutations": len(entity_ms),
            "p50_ms": p50_ms,
            "p95_ms": p95_ms,
            "edge_mutations": RELATIONSHIP_MUTATIONS,
            "edge_p50_ms": edge_p50_ms,
            "overlay_postings": overlay_postings,
            "thaw_first_mutation_ms": thaw_seconds * 1000.0,
            "speedup_vs_thaw": speedup,
            "required_speedup": profile["speedup"],
        },
        "rss": {
            "overlay_delta_kb": overlay_rss_delta,
            "thaw_delta_kb": thaw_rss_delta,
            "budget_kb": rss_budget_kb,
        },
        "compaction": {
            "seconds": compact_seconds,
            "bytes": outcome["bytes"],
            "generation": outcome["generation"],
            "overlay_postings_before": overlay_postings,
            "overlay_postings_after": overlay_after,
        },
        "parity": {
            "algorithms": list(ALGORITHMS),
            "shard_counts": list(SHARD_COUNTS),
            "reload_generation": reload_generation,
        },
        "divergences": divergences,
        "acceptance": acceptance,
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"wrote {out_path}")

    failures = [name for name, ok in acceptance.items() if not ok]
    if failures:
        print(f"FAIL: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(
        "all gates passed: overlay mutations O(delta), compacted "
        "generation bit-identical to the mutated heap twin"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="smoke"
    )
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument("--out", default="BENCH_10.json")
    parser.add_argument(
        "--keep-dir", default=None,
        help="directory for the index files (default: a fresh tempdir)",
    )
    args = parser.parse_args(argv)
    return run(args.profile, args.k, args.out, keep_dir=args.keep_dir)


if __name__ == "__main__":
    sys.exit(main())
