"""BENCH_4: SearchService serving — cold/warm latency, batch QPS, hit rates.

Measures the plan/execute + SearchService layer on the wiki synthetic
(d=3) over the same heavy 1-3 keyword workload BENCH_3 uses, replayed
the way a service sees traffic (queries repeat):

* **cold vs warm p50/p95** — first service hit per query (empty caches)
  vs the same queries replayed (result-cache tier);
* **batch QPS at 1/4/8 threads** — ``search_many`` over the repeated
  workload, caches flushed between runs (CPython threads interleave
  CPU-bound execution, so thread QPS measures overhead + cache sharing,
  not parallelism — the honest number is printed either way);
* **batch QPS at 1/4/8 fork workers** — the genuinely parallel path
  (``processes=``, ``keep_subtrees=False``);
* **cache hit rates** from ``ServiceStats``.

Emits ``BENCH_4.json`` and **fails (exit 1) if any served result — warm,
threaded, or forked — diverges** from a cold single-threaded
``TableAnswerEngine`` run on the same store version.  CI runs the
``smoke`` profile and uploads the JSON; ``full`` reproduces the
acceptance numbers (800 entities)::

    PYTHONPATH=src python benchmarks/smoke_serving.py --profile full \
        --out BENCH_4.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.datasets.queries import WorkloadConfig, generate_workload
from repro.datasets.wiki import WikiConfig, generate_wiki_graph
from repro.index.builder import build_indexes
from repro.search.engine import TableAnswerEngine
from repro.search.linear_enum import count_answers
from repro.search.service import SearchService

PROFILES = {
    # ~seconds in CI; mirrors the BENCH_3 smoke graph.
    "smoke": {
        "wiki": WikiConfig(
            num_entities=120, num_types=8, num_attrs=12,
            vocabulary_size=60, seed=5,
        ),
        "min_subtrees": 64,
        "max_queries": 8,
        "repeat_factor": 4,
    },
    # The acceptance configuration: wiki synthetic, 800 entities, d=3.
    "full": {
        "wiki": WikiConfig(
            num_entities=800, num_types=24, num_attrs=36,
            vocabulary_size=240, seed=23,
        ),
        "min_subtrees": 4096,
        "max_queries": 10,
        "repeat_factor": 8,
    },
}


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1,
        max(0, round(fraction * (len(sorted_values) - 1))),
    )
    return sorted_values[rank]


def heavy_workload(indexes, min_subtrees, max_queries):
    """Deduplicated 1-3 keyword queries in the heavy answer-set group."""
    seen = set()
    heavy = []
    for seed in (23, 29, 31, 37, 41):
        for query in generate_workload(
            indexes,
            WorkloadConfig(
                queries_per_size=6, min_keywords=1, max_keywords=3, seed=seed
            ),
        ):
            if query in seen:
                continue
            seen.add(query)
            _patterns, subtrees = count_answers(indexes, query)
            if subtrees >= min_subtrees:
                heavy.append(query)
        if len(heavy) >= max_queries:
            break
    return heavy[:max_queries]


def fingerprint(result):
    return (
        result.scores(),
        result.pattern_keys(),
        [answer.num_subtrees for answer in result.answers],
    )


def run(profile_name: str, k: int, out_path: str) -> int:
    profile = PROFILES[profile_name]
    graph = generate_wiki_graph(profile["wiki"])
    indexes = build_indexes(graph, d=3)
    queries = heavy_workload(
        indexes, profile["min_subtrees"], profile["max_queries"]
    )
    if not queries:
        print("error: no heavy queries in the workload", file=sys.stderr)
        return 1

    # The no-cache oracle: cold engine on a pinned snapshot per query.
    snap = indexes.snapshot()
    engine = TableAnswerEngine(snap.graph, indexes=snap)
    oracle = {
        query: fingerprint(engine.search(query, k=k)) for query in queries
    }
    divergences = []

    def check(label, query, result):
        if fingerprint(result) != oracle[query]:
            divergences.append({"stage": label, "query": " ".join(query)})

    service = SearchService(indexes)

    # ---- cold vs warm single-query latency ----------------------------
    cold_latencies = []
    for query in queries:
        started = time.perf_counter()
        result = service.search(query, k=k)
        cold_latencies.append(time.perf_counter() - started)
        check("cold", query, result)
    warm_latencies = []
    for _round in range(3):
        for query in queries:
            started = time.perf_counter()
            result = service.search(query, k=k)
            warm_latencies.append(time.perf_counter() - started)
            check("warm", query, result)
    cold_latencies.sort()
    warm_latencies.sort()
    cold_p50 = percentile(cold_latencies, 0.50)
    warm_p50 = percentile(warm_latencies, 0.50)
    single_stats = service.stats

    # ---- batch throughput: a repeat-heavy stream ----------------------
    repeat = profile["repeat_factor"]
    stream = [
        queries[(i * 7 + j) % len(queries)]
        for i in range(repeat)
        for j in range(len(queries))
    ]

    def batch_run(threads=0, processes=0):
        service.invalidate()
        service.stats = type(service.stats)()  # fresh counters per config
        kwargs = {"threads": threads, "processes": processes}
        if processes:
            kwargs["keep_subtrees"] = False
        started = time.perf_counter()
        results = service.search_many(stream, k=k, **kwargs)
        elapsed = time.perf_counter() - started
        for query, result in zip(stream, results):
            if processes:
                # keep_subtrees=False drops rows; compare scores/patterns.
                got = (result.scores(), result.pattern_keys())
                want = (oracle[query][0], oracle[query][1])
                if got != want:
                    divergences.append(
                        {"stage": f"processes={processes}",
                         "query": " ".join(query)}
                    )
            else:
                check(f"threads={threads}", query, result)
        return {
            "queries": len(stream),
            "seconds": elapsed,
            "qps": len(stream) / elapsed if elapsed > 0 else None,
            "result_hit_rate": service.stats.result_hit_rate(),
            "deduped": service.stats.batch_deduped,
        }

    thread_runs = {n: batch_run(threads=n) for n in (1, 4, 8)}
    process_runs = {}
    if hasattr(sys, "getwindowsversion"):  # pragma: no cover
        pass  # no fork
    else:
        process_runs = {n: batch_run(processes=n) for n in (1, 4, 8)}

    report = {
        "bench": "BENCH_4",
        "profile": profile_name,
        "k": k,
        "d": indexes.d,
        "num_entities": profile["wiki"].num_entities,
        "queries": [" ".join(query) for query in queries],
        "single_query": {
            "cold_p50_ms": cold_p50 * 1000,
            "cold_p95_ms": percentile(cold_latencies, 0.95) * 1000,
            "warm_p50_ms": warm_p50 * 1000,
            "warm_p95_ms": percentile(warm_latencies, 0.95) * 1000,
            "warm_speedup_p50": (
                cold_p50 / warm_p50 if warm_p50 > 0 else None
            ),
            "result_hit_rate": single_stats.result_hit_rate(),
            "context_hit_rate": single_stats.context_hit_rate(),
            "resolution_hit_rate": single_stats.resolution_hit_rate(),
        },
        "batch_threads": thread_runs,
        "batch_processes": process_runs,
        "thread_scaling_4x": (
            thread_runs[4]["qps"] / thread_runs[1]["qps"]
            if thread_runs[1]["qps"]
            else None
        ),
        "process_scaling_4x": (
            process_runs[4]["qps"] / process_runs[1]["qps"]
            if process_runs and process_runs[1]["qps"]
            else None
        ),
        "divergences": divergences,
        # The ISSUE acceptance criteria, answered explicitly rather than
        # buried in the numbers.  The 4-thread >= 2x criterion is not
        # achievable for CPU-bound pure-Python loops under the GIL
        # (threads buy snapshot/cache sharing, not parallelism); the
        # measured ratio is recorded unvarnished and the fork pool is
        # the parallel path — see docs/serving.md.
        "acceptance": {
            "warm_speedup_p50_required": 5.0,
            "warm_speedup_p50_met": (
                cold_p50 / warm_p50 >= 5.0 if warm_p50 > 0 else True
            ),
            "thread_scaling_4x_required": 2.0,
            "thread_scaling_4x_met": (
                thread_runs[1]["qps"] is not None
                and thread_runs[4]["qps"] is not None
                and thread_runs[4]["qps"] >= 2.0 * thread_runs[1]["qps"]
            ),
            "bit_identical_met": not divergences,
        },
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    single = report["single_query"]
    print(
        f"single query: cold p50 {single['cold_p50_ms']:.2f} ms -> warm "
        f"p50 {single['warm_p50_ms']:.4f} ms "
        f"({single['warm_speedup_p50']:.0f}x)"
    )
    for n, stats in thread_runs.items():
        print(f"batch threads={n}: {stats['qps']:.0f} QPS")
    for n, stats in process_runs.items():
        print(f"batch processes={n}: {stats['qps']:.0f} QPS")
    print(f"wrote {out_path}")
    if divergences:
        print(
            f"FAIL: {len(divergences)} served results diverged from the "
            "cold engine",
            file=sys.stderr,
        )
        return 1
    # Acceptance floor: the result-cache tier must keep warm repeats at
    # least 5x faster than cold execution (in practice it is orders of
    # magnitude; a bench run scraping past 5x means the cache broke).
    # Thread scaling is recorded but not gated — CPython's GIL holds
    # CPU-bound thread pools at ~1x; the fork pool is the parallel path
    # (see docs/serving.md).
    speedup = report["single_query"]["warm_speedup_p50"]
    if speedup is not None and speedup < 5.0:
        print(
            f"FAIL: warm p50 only {speedup:.1f}x faster than cold "
            "(acceptance floor is 5x)",
            file=sys.stderr,
        )
        return 1
    print("all served results identical to the cold engine")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="smoke"
    )
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument("--out", default="BENCH_4.json")
    args = parser.parse_args(argv)
    return run(args.profile, args.k, args.out)


if __name__ == "__main__":
    sys.exit(main())
