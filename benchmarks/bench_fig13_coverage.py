"""Figure 13: individual top-k vs top-k tree patterns.

The paper's two series (coverage of individual answers inside pattern
answers; fraction of "new" patterns) are computed per query; the bench
times the full metric pipeline at k = 20 and records the metric values.
"""

import pytest

from repro.search.individual import coverage_metrics, individual_topk
from repro.search.pattern_enum import pattern_enum_search

K = 20


def _metrics(indexes, query):
    individual = individual_topk(indexes, query, k=K)
    patterns = pattern_enum_search(indexes, query, k=K, keep_subtrees=True)
    return coverage_metrics(individual, patterns)


def test_coverage_pipeline(benchmark, wiki_indexes, wiki_light_query):
    metrics = benchmark(_metrics, wiki_indexes, wiki_light_query)
    assert 0.0 <= metrics.coverage <= 1.0
    benchmark.extra_info["coverage"] = round(metrics.coverage, 3)
    benchmark.extra_info["new_patterns"] = round(
        metrics.new_pattern_fraction, 3
    )


def test_individual_topk_alone(benchmark, wiki_indexes, wiki_heavy_query):
    """Ranking individual subtrees over the heaviest query."""
    result = benchmark.pedantic(
        individual_topk,
        args=(wiki_indexes, wiki_heavy_query),
        kwargs={"k": K},
        rounds=2,
        iterations=1,
    )
    assert len(result.ranked) <= K
