"""Open-loop HTTP load generator for the ``repro serve --http`` tier.

Replays a :mod:`repro.serve.workload` JSONL stream against a running
server at a **fixed arrival rate**: request *i* is due at ``start +
i/rate`` whether or not earlier requests have completed, so a slow
server accumulates queueing delay instead of silently slowing the
clients down (the closed-loop fallacy / coordinated omission).  Client
thread *c* owns requests ``i % clients == c`` on one keep-alive
connection; latency is measured **from the scheduled arrival time**, so
client-side lag counts against the server, never for it.

Usable as a library (``benchmarks/smoke_load.py``) or a CLI::

    PYTHONPATH=src python benchmarks/loadgen.py 127.0.0.1:8080 \
        --workload wl.jsonl --rate 50 --clients 8
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlencode

from repro.serve.workload import WorkloadRequest, load_workload


def percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1,
        max(0, round(fraction * (len(sorted_values) - 1))),
    )
    return sorted_values[rank]


def request_path(request: WorkloadRequest, k: Optional[int] = None) -> str:
    """The request line a :class:`WorkloadRequest` maps to."""
    if request.is_mutation:
        return "/admin/invalidate"
    query: List[Tuple[str, str]] = [("q", request.query)]
    if request.k is not None:
        query.append(("k", str(request.k)))
    elif k is not None:
        query.append(("k", str(k)))
    if request.algorithm is not None:
        query.append(("algorithm", request.algorithm))
    for name, value in request.params:
        query.append((name, str(value)))
    return "/search?" + urlencode(query)


@dataclass
class Observation:
    """One completed (or failed) request."""

    index: int
    path: str
    status: int
    #: Seconds from *scheduled arrival* to response (None on transport
    #: failure).
    latency: Optional[float]
    coalesced: bool = False
    body: Optional[bytes] = None


@dataclass
class LoadResult:
    """Everything one open-loop run produced."""

    offered_rate: float
    wall_seconds: float = 0.0
    observations: List[Observation] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return sum(1 for o in self.observations if o.status > 0)

    @property
    def achieved_qps(self) -> float:
        return (
            self.completed / self.wall_seconds if self.wall_seconds else 0.0
        )

    def status_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for obs in self.observations:
            counts[obs.status] = counts.get(obs.status, 0) + 1
        return counts

    def latencies(self, statuses: Tuple[int, ...] = (200,)) -> List[float]:
        """Sorted latencies of responses with the given statuses."""
        return sorted(
            obs.latency
            for obs in self.observations
            if obs.status in statuses and obs.latency is not None
        )

    def quantiles_ms(
        self, statuses: Tuple[int, ...] = (200,)
    ) -> Dict[str, float]:
        window = self.latencies(statuses)
        return {
            "p50_ms": percentile(window, 0.50) * 1000,
            "p95_ms": percentile(window, 0.95) * 1000,
            "p99_ms": percentile(window, 0.99) * 1000,
        }

    def summary(self) -> dict:
        counts = self.status_counts()
        return {
            "offered_rate": self.offered_rate,
            "wall_seconds": self.wall_seconds,
            "requests": len(self.observations),
            "achieved_qps": self.achieved_qps,
            "status_counts": {str(s): n for s, n in sorted(counts.items())},
            "shed_503": counts.get(503, 0),
            "expired_504": counts.get(504, 0),
            "transport_errors": counts.get(0, 0),
            "coalesced": sum(1 for o in self.observations if o.coalesced),
            "latency_200": self.quantiles_ms(),
        }


def run_open_loop(
    address: str,
    requests: List[WorkloadRequest],
    rate: float,
    clients: int = 4,
    k: Optional[int] = None,
    timeout: float = 30.0,
    capture_bodies: bool = False,
) -> LoadResult:
    """Fire ``requests`` at ``rate``/s; returns every observation."""
    host, _, port_text = address.partition(":")
    port = int(port_text)
    paths = [request_path(request, k=k) for request in requests]
    result = LoadResult(offered_rate=rate)
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client(client_id: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        barrier.wait()
        for index in range(client_id, len(paths), clients):
            due = start + index / rate
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            path = paths[index]
            method = (
                "POST" if requests[index].is_mutation else "GET"
            )
            try:
                conn.request(method, path)
                response = conn.getresponse()
                body = response.read()
                obs = Observation(
                    index=index,
                    path=path,
                    status=response.status,
                    latency=time.monotonic() - due,
                    coalesced=response.getheader("X-Coalesced") == "1",
                    body=body if capture_bodies else None,
                )
            except (OSError, http.client.HTTPException):
                # Transport failure: reconnect and record status 0.
                conn.close()
                conn = http.client.HTTPConnection(
                    host, port, timeout=timeout
                )
                obs = Observation(
                    index=index, path=path, status=0, latency=None
                )
            with lock:
                result.observations.append(obs)
        conn.close()

    threads = [
        threading.Thread(target=client, args=(c,), daemon=True)
        for c in range(clients)
    ]
    for thread in threads:
        thread.start()
    start = time.monotonic() + 0.05  # let every client reach the barrier
    barrier.wait()
    for thread in threads:
        thread.join()
    result.wall_seconds = time.monotonic() - start
    result.observations.sort(key=lambda obs: obs.index)
    return result


def fetch_metrics(address: str, timeout: float = 10.0) -> Dict[str, float]:
    """Scrape ``/metrics`` into ``{"name{labels}": value}``."""
    host, _, port_text = address.partition(":")
    conn = http.client.HTTPConnection(host, int(port_text), timeout=timeout)
    conn.request("GET", "/metrics")
    response = conn.getresponse()
    text = response.read().decode("utf-8")
    conn.close()
    if response.status != 200:
        raise RuntimeError(f"/metrics answered {response.status}")
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            samples[name] = float(value)
        except ValueError:
            continue
    return samples


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("address", help="HOST:PORT of a running server")
    parser.add_argument(
        "--workload", required=True,
        help="JSONL workload file (repro.serve.workload format)",
    )
    parser.add_argument(
        "--rate", type=float, required=True, help="arrival rate (req/s)"
    )
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("-k", type=int, default=None)
    parser.add_argument(
        "--repeat", type=int, default=1,
        help="replay the workload this many times back to back",
    )
    args = parser.parse_args(argv)
    requests = load_workload(args.workload) * args.repeat
    result = run_open_loop(
        args.address, requests, args.rate, clients=args.clients, k=args.k
    )
    print(json.dumps(result.summary(), indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
