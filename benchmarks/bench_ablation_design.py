"""Ablation benches for the design choices DESIGN.md calls out.

* **Aggregator choice** (§2.2.3: sum vs avg vs max vs count) — same engine,
  different pattern scoring; the bench records how much the top-k sets
  diverge (sum/count favour many-row patterns, avg/max favour strong
  individual rows).
* **Tree-validity checking** — the per-combination check
  (`entries_form_tree`) is this implementation's corrective to the paper's
  pseudo-code; its cost is measured against a no-check enumeration of the
  same products.
* **Prefix-intersection DFS in PATTERNENUM** — measured indirectly: the
  adversarial worst case in `bench_thm1_baseline_worstcase.py` bounds the
  empty-pattern regime; this bench times the dense regime where the
  optimization matters least (sanity that it does not regress).
"""

from itertools import product

import pytest

from repro.index.entry import entries_form_tree
from repro.scoring.function import ScoringFunction
from repro.search.pattern_enum import pattern_enum_search

AGGREGATORS = ("sum", "avg", "max", "count")


@pytest.mark.parametrize("aggregator", AGGREGATORS)
def test_aggregator_choice(benchmark, wiki_indexes, wiki_light_query, aggregator):
    scoring = ScoringFunction(aggregator=aggregator)
    result = benchmark(
        pattern_enum_search,
        wiki_indexes,
        wiki_light_query,
        k=10,
        scoring=scoring,
        keep_subtrees=False,
    )
    # Record ranking divergence against the paper's default (sum).
    baseline = pattern_enum_search(
        wiki_indexes, wiki_light_query, k=10, keep_subtrees=False
    )
    overlap = len(
        set(result.pattern_keys()) & set(baseline.pattern_keys())
    )
    benchmark.extra_info["topk_overlap_with_sum"] = overlap
    benchmark.extra_info["answers"] = result.num_answers


def _gather_root_products(indexes, query, limit=200):
    """Entry combinations for the first candidate roots of a query."""
    words = indexes.resolve_query(query)
    root_maps = [indexes.root_first.roots(word) for word in words]
    shared = set(root_maps[0])
    for root_map in root_maps[1:]:
        shared &= set(root_map)
    combos = []
    for root in sorted(shared):
        entry_lists = [
            [e for entries in indexes.root_first.pattern_map(w, root).values()
             for e in entries]
            for w in words
        ]
        for combo in product(*entry_lists):
            combos.append(combo)
            if len(combos) >= limit:
                return combos
    return combos


def test_tree_validity_check_cost(benchmark, wiki_indexes, wiki_light_query):
    """The incremental cost of checking each combination is a tree."""
    combos = _gather_root_products(wiki_indexes, wiki_light_query)
    if not combos:
        pytest.skip("query yields no combinations")

    def run_checks():
        return sum(1 for combo in combos if entries_form_tree(combo))

    valid = benchmark(run_checks)
    benchmark.extra_info["combos"] = len(combos)
    benchmark.extra_info["valid"] = valid
    assert 0 <= valid <= len(combos)


def test_enumeration_without_check(benchmark, wiki_indexes, wiki_light_query):
    """Reference cost: touching the same combinations with no check."""
    combos = _gather_root_products(wiki_indexes, wiki_light_query)
    if not combos:
        pytest.skip("query yields no combinations")

    def run_no_checks():
        total = 0
        for combo in combos:
            total += len(combo)
        return total

    total = benchmark(run_no_checks)
    assert total >= len(combos)
