"""Figures 14-15: the "XBox Game" case study, end to end.

Times the full pipeline (index build + both rankings) on the hand-crafted
case-study slice and asserts the paper's qualitative outcome: the popular
Xbox entity tops the individual ranking while the top-1 *pattern* is the
multi-row table of Xbox games.
"""

import pytest

from repro.datasets.case_study import (
    CASE_STUDY_D,
    XBOX_GAMES,
    xbox_case_study_graph,
)
from repro.index.builder import build_indexes
from repro.search.individual import individual_topk
from repro.search.pattern_enum import pattern_enum_search


@pytest.fixture(scope="module")
def case_indexes():
    graph, query = xbox_case_study_graph()
    return build_indexes(graph, d=CASE_STUDY_D), query


def test_case_study_end_to_end(benchmark):
    def pipeline():
        graph, query = xbox_case_study_graph()
        indexes = build_indexes(graph, d=CASE_STUDY_D)
        individual = individual_topk(indexes, query, k=3)
        patterns = pattern_enum_search(indexes, query, k=1)
        return indexes, individual, patterns

    indexes, individual, patterns = benchmark(pipeline)
    graph = indexes.graph
    # Individual top-1: rooted at the popular Xbox console entity.
    top_root = individual.ranked[0][2][0].nodes[0]
    assert graph.node_text(top_root) == "Xbox"
    # Pattern top-1: the table of Xbox games, one row per game.
    top_pattern = patterns.answers[0]
    assert top_pattern.num_subtrees == len(XBOX_GAMES)
    rows = top_pattern.to_table(graph).rows
    assert ["Halo 2", "Xbox"] in rows


def test_case_study_query_only(benchmark, case_indexes):
    indexes, query = case_indexes
    result = benchmark(pattern_enum_search, indexes, query, k=3)
    assert result.num_answers >= 1
