"""BENCH_8 / BENCH_9: HTTP serving tier — latency under open-loop load.

Default mode measures ``repro.serve.http`` end to end on the wiki synthetic (d=3,
BENCH_4's heavy-query workload) with the open-loop generator from
``benchmarks/loadgen.py`` (fixed arrival rate, latency measured from the
*scheduled* arrival, so queueing is charged to the server):

* **serial baseline** — the pre-HTTP serving story: the ``serve`` REPL
  loop (search + ASCII table rendering) replaying the Zipf stream on one
  thread;
* **coalescing burst** — 16 simultaneous identical cold requests against
  a one-worker server: one execution, every response's answers
  bit-identical, ``X-Coalesced`` on the followers;
* **sustained phase** — the Zipf stream (writer ticks every 250
  requests) at ``sustained_ratio``× the baseline rate: achieved QPS,
  p50/p95/p99, coalescing count, and a **divergence gate** — every 200
  response is fingerprinted (scores, pattern keys, row counts; floats
  survive the JSON round trip exactly) against a cold single-shot
  ``TableAnswerEngine`` run;
* **overload phase** — a one-worker, ``max_queue=4`` server at 2× its
  measured capacity over distinct cold plans: the server must shed
  (503s + ``requests_shed``) while the p99 of *admitted* requests stays
  bounded by queue math instead of growing with offered load;
* **mutation phase** — the same bundle saved + re-loaded memory-mapped,
  then an ``add_entity`` stream lands in the delta overlay while HTTP
  traffic flows: served answers checked against a cold engine over the
  *mutated* snapshot, compaction re-maps a fresh generation without
  moving an answer, and ``backed_stores_thawed`` must stay at zero;
* **/metrics gate** — the scrape must expose QPS, latency quantiles,
  queue depth, shed/coalesced/expired counts, cache tiers, and search
  work counters.

Emits ``BENCH_8.json``; exit 1 if any gate fails.  CI runs ``smoke``::

    PYTHONPATH=src python benchmarks/smoke_load.py --out BENCH_8.json

``--fork-pool`` instead runs the **BENCH_9** suite for the fork-pool
execution backend (``repro.serve.pool``) over a *memory-mapped* v3
bundle (save → load, so workers inherit shard pages copy-free):

* **threaded flood** — distinct cold ``(query, k)`` plans through the
  stock thread-bridge server at W workers: the GIL-bound reference QPS;
* **fork-pool flood** — the identical request set through
  ``PooledSearchService`` at W processes: QPS plus a per-response
  fingerprint check against the cold engine *and* an ``include_rows``
  body comparison against the threaded server (portable PathEntry rows
  cross the pipe bit-identically);
* **fault injection** — ``arm_exit`` (deterministic mid-request death)
  + SIGKILL against live HTTP traffic: every response still 200 and
  bit-identical via inline failover, ``worker_failovers`` counted,
  the pool healed to W workers, and graceful drain completes with a
  freshly killed worker left in the pool;
* **sharded HTTP** — ``--shards``-composed backends under concurrent
  load: the sharded thread service and the pooled+sharded service both
  divergence-checked, shard counters visible in ``/metrics``;
* **mutation under the pool** — an ``add_entity`` stream into the
  parent's delta overlay forces a version-bumped pool rebuild (workers
  inherit the overlay copy-on-write), then compaction re-maps a fresh
  generation and the next rebuild forks from the re-mapped pages;
  answers checked against a cold engine over the mutated snapshot;
* **gates** — zero divergence anywhere, ``backed_stores_thawed == 0``
  (serving never copies a mapped store), pool metric families exposed,
  and a **core-aware speedup floor**: fork QPS >= 2x threaded at >= 4
  cores (the CI shape), >= 1.3x at 2-3 cores, recorded-but-waived on a
  single core where no parallel speedup is physically available.

Emits ``BENCH_9.json``; exit 1 if any gate fails::

    PYTHONPATH=src python benchmarks/smoke_load.py --fork-pool --out BENCH_9.json
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import random
import sys
import time

from repro.cli import _print_result
from repro.datasets.queries import zipfian_requests
from repro.datasets.wiki import WikiConfig, generate_wiki_graph
from repro.index.builder import build_indexes
from repro.search.engine import TableAnswerEngine
from repro.search.service import SearchService
from repro.serve import start_http_server
from repro.serve.workload import WorkloadRequest, zipf_workload

from loadgen import fetch_metrics, run_open_loop
from smoke_serving import fingerprint, heavy_workload

PROFILES = {
    "smoke": {
        "wiki": WikiConfig(
            num_entities=120, num_types=8, num_attrs=12,
            vocabulary_size=60, seed=5,
        ),
        "min_subtrees": 64,
        "max_queries": 8,
        "baseline_requests": 120,
        "sustained_requests": 2000,
        "overload_seconds": 2.0,
    },
    "full": {
        "wiki": WikiConfig(
            num_entities=800, num_types=24, num_attrs=36,
            vocabulary_size=240, seed=23,
        ),
        "min_subtrees": 4096,
        "max_queries": 10,
        "baseline_requests": 200,
        "sustained_requests": 4000,
        "overload_seconds": 3.0,
    },
}

#: Offered sustained rate as a multiple of the serial baseline; the gate
#: requires achieved >= REQUIRED_RATIO x baseline.  Calibrated headroom:
#: the tier floods at ~3.8x baseline on the smoke profile, so 3.25x
#: offered holds a stable queue while clearing the 3x acceptance floor.
SUSTAINED_RATIO = 3.25
REQUIRED_RATIO = 3.0
#: Sustained-phase SLO on answered requests.
SLO_P95_MS = 200.0
#: Overload server shape: one executor, four admission slots.
OVERLOAD_QUEUE = 4
#: Admitted p99 under 2x-capacity overload must stay within queue math:
#: (queue depth + 2) service times, with 3x slack for GIL contention
#: between the in-process clients and the server, floored absolutely.
OVERLOAD_P99_SLACK = 3.0
OVERLOAD_P99_FLOOR_MS = 250.0


def http_fingerprint(body: bytes):
    payload = json.loads(body)
    return (
        [answer["score"] for answer in payload["answers"]],
        [tuple(answer["pattern_key"]) for answer in payload["answers"]],
        [answer["num_subtrees"] for answer in payload["answers"]],
    )


def check_responses(stage, observations, oracle, divergences):
    """Fingerprint every 200 /search response against the cold oracle."""
    checked = 0
    for obs in observations:
        if obs.status != 200 or obs.body is None:
            continue
        if not obs.path.startswith("/search"):
            continue
        payload = json.loads(obs.body)
        query = payload["query"]
        if http_fingerprint(obs.body) != oracle[query]:
            divergences.append({"stage": stage, "query": query})
        checked += 1
    return checked


def run(profile_name: str, k: int, out_path: str) -> int:
    profile = PROFILES[profile_name]
    graph = generate_wiki_graph(profile["wiki"])
    indexes = build_indexes(graph, d=3)
    queries = heavy_workload(
        indexes, profile["min_subtrees"], profile["max_queries"]
    )
    if not queries:
        print("error: no heavy queries in the workload", file=sys.stderr)
        return 1
    query_texts = [" ".join(query) for query in queries]

    # The no-cache oracle: cold engine on a pinned snapshot, keyed by the
    # query text the HTTP responses echo back.
    snap = indexes.snapshot()
    engine = TableAnswerEngine(snap.graph, indexes=snap)
    oracle = {}
    cold_seconds = {}
    for query, text in zip(queries, query_texts):
        started = time.perf_counter()
        result = engine.search(query, k=k)
        cold_seconds[text] = time.perf_counter() - started
        oracle[text] = fingerprint(result)
    divergences = []

    # ---- serial baseline: the serve REPL loop ------------------------
    baseline_stream = zipfian_requests(
        queries, profile["baseline_requests"], alpha=0.9, seed=11
    )
    service = SearchService(indexes)
    sink = io.StringIO()
    started = time.perf_counter()
    for query in baseline_stream:
        result = service.search(query, k=k)
        with contextlib.redirect_stdout(sink):
            _print_result(service, result, 10, False)
    baseline_seconds = time.perf_counter() - started
    baseline_qps = len(baseline_stream) / baseline_seconds
    service.close()
    print(
        f"serial REPL baseline: {baseline_qps:.0f} QPS "
        f"({len(baseline_stream)} requests in {baseline_seconds:.3f}s)"
    )

    # ---- coalescing burst: N waiters, one execution ------------------
    # One worker so the leader occupies the executor while 15 duplicates
    # arrive; the heaviest query maximizes the coalescing window.
    heaviest = max(query_texts, key=lambda text: cold_seconds[text])
    server = start_http_server(
        SearchService(indexes), max_queue=64, workers=1
    )
    burst = run_open_loop(
        server.address,
        [WorkloadRequest(query=heaviest, k=k)] * 16,
        rate=1e9,
        clients=16,
        capture_bodies=True,
    )
    burst_stats = server.server.service.stats
    burst_executions = burst_stats.result_misses
    burst_coalesced = sum(1 for obs in burst.observations if obs.coalesced)
    check_responses("burst", burst.observations, oracle, divergences)
    server.stop()
    print(
        f"coalescing burst: 16 duplicates -> {burst_executions} "
        f"executions, {burst_coalesced} coalesced"
    )

    # ---- sustained phase: Zipf mix at SUSTAINED_RATIO x baseline -----
    sustained_rate = SUSTAINED_RATIO * baseline_qps
    workload = zipf_workload(
        query_texts,
        profile["sustained_requests"],
        k=k,
        alpha=0.9,
        seed=17,
        invalidate_every=250,
    )
    server = start_http_server(
        SearchService(indexes), max_queue=256, workers=4
    )
    sustained = run_open_loop(
        server.address, workload, rate=sustained_rate, clients=8,
        capture_bodies=True,
    )
    sustained_summary = sustained.summary()
    checked = check_responses(
        "sustained", sustained.observations, oracle, divergences
    )
    metrics = fetch_metrics(server.address)
    server.stop()
    print(
        f"sustained: offered {sustained_rate:.0f}/s -> achieved "
        f"{sustained_summary['achieved_qps']:.0f} QPS "
        f"({sustained_summary['achieved_qps'] / baseline_qps:.2f}x "
        f"baseline), p95 "
        f"{sustained_summary['latency_200']['p95_ms']:.1f} ms, "
        f"{sustained_summary['coalesced']} coalesced, "
        f"{checked} responses checked"
    )

    # ---- overload phase: 2x capacity into a tiny admission queue -----
    # Distinct (query, k) pairs so every request is a cold plan: no
    # result-cache hits, no coalescing — admission control alone.
    pairs = [
        (text, 3 + j) for j in range(200) for text in query_texts
    ]
    random.Random(42).shuffle(pairs)
    def to_requests(chunk):
        return [
            WorkloadRequest(query=text, k=pair_k) for text, pair_k in chunk
        ]
    server = start_http_server(
        SearchService(indexes), max_queue=OVERLOAD_QUEUE, workers=1
    )
    flood = run_open_loop(
        server.address, to_requests(pairs[:40]), rate=1e9, clients=1
    )
    capacity_qps = flood.achieved_qps
    paced = run_open_loop(
        server.address,
        to_requests(pairs[40:80]),
        rate=max(capacity_qps / 2, 1.0),
        clients=2,
    )
    paced_p95_ms = paced.quantiles_ms()["p95_ms"]
    overload_count = min(
        int(2 * capacity_qps * profile["overload_seconds"]),
        len(pairs) - 80,
    )
    overload = run_open_loop(
        server.address,
        to_requests(pairs[80:80 + overload_count]),
        rate=2 * capacity_qps,
        clients=8,
    )
    server.stop()
    overload_summary = overload.summary()
    admitted_p99_ms = overload_summary["latency_200"]["p99_ms"]
    p99_bound_ms = max(
        OVERLOAD_P99_FLOOR_MS,
        OVERLOAD_P99_SLACK * (OVERLOAD_QUEUE + 2) * paced_p95_ms,
    )
    print(
        f"overload: capacity {capacity_qps:.0f}/s, offered "
        f"{2 * capacity_qps:.0f}/s -> {overload_summary['shed_503']} shed, "
        f"admitted p99 {admitted_p99_ms:.1f} ms "
        f"(bound {p99_bound_ms:.0f} ms)"
    )

    # ---- mutation phase: add_entity stream against a mapped bundle ---
    # The delta-overlay serving story: O(delta) writes land in the heap
    # overlay while HTTP traffic flows (never a wholesale thaw), and
    # compaction folds them into a fresh generation atomically re-mapped
    # under the serving lock — without moving a single answer.
    import os
    import tempfile

    from repro.index.incremental import add_entity
    from repro.index.mmapstore import MappedPostingStore
    from repro.index.serialize import save_indexes

    tmpdir = tempfile.mkdtemp(prefix="bench8-")
    index_path = os.path.join(tmpdir, "wiki.repro")
    save_indexes(indexes, index_path)
    mut_service = SearchService.from_file(index_path)
    mapped = mut_service.indexes
    thawed_before = MappedPostingStore.backed_stores_thawed
    server = start_http_server(mut_service, max_queue=256, workers=2)
    mut_requests = [
        WorkloadRequest(query=text, k=k) for text in query_texts
    ]

    # Pre-mutation: the mapped bundle serves the heap bundle's answers.
    pre = run_open_loop(
        server.address, mut_requests, rate=1e9, clients=4,
        capture_bodies=True,
    )
    check_responses("mutation-pre", pre.observations, oracle, divergences)

    # Writer stream: new entities named after workload words, absorbed
    # by the overlay and surfaced through the invalidation protocol.
    for _ in range(2):
        for text in query_texts:
            add_entity(mapped, "delta_type", text.split()[0])
        mut_service.invalidate()
    overlay_postings = mapped.store.overlay_postings

    # Post-mutation oracle: a cold engine over the *mutated* snapshot —
    # served answers must track the writes, not the build-time file.
    mut_snap = mapped.snapshot()
    mut_engine = TableAnswerEngine(mut_snap.graph, indexes=mut_snap)
    post_oracle = {
        text: fingerprint(mut_engine.search(query, k=k))
        for query, text in zip(queries, query_texts)
    }
    post = run_open_loop(
        server.address, mut_requests, rate=1e9, clients=4,
        capture_bodies=True,
    )
    check_responses(
        "mutation-post", post.observations, post_oracle, divergences
    )

    # Compact, then read through the fresh generation at a cold k (the
    # result cache cannot answer it): parity against the same oracle
    # engine, which itself still reads the pre-compaction snapshot —
    # the old generation stays pinned for live readers.
    outcome = mut_service.compact()
    compacted_oracle = {
        text: fingerprint(mut_engine.search(query, k=k + 1))
        for query, text in zip(queries, query_texts)
    }
    compacted = run_open_loop(
        server.address,
        [WorkloadRequest(query=text, k=k + 1) for text in query_texts],
        rate=1e9,
        clients=4,
        capture_bodies=True,
    )
    check_responses(
        "mutation-compacted", compacted.observations, compacted_oracle,
        divergences,
    )
    server.stop()
    mutation_thawed = (
        MappedPostingStore.backed_stores_thawed - thawed_before
    )
    assert mutation_thawed == 0, (
        f"mutation phase thawed {mutation_thawed} mapped stores"
    )
    print(
        f"mutation: {2 * len(query_texts)} entities -> "
        f"{overlay_postings} overlay postings, compacted to generation "
        f"{outcome['generation']}, {mutation_thawed} thaws"
    )

    required_metrics = [
        "repro_http_qps",
        "repro_http_queue_depth",
        "repro_http_requests_shed_total",
        "repro_http_requests_coalesced_total",
        "repro_http_requests_expired_total",
        'repro_http_request_latency_seconds{quantile="0.99"}',
        'repro_cache_hits_total{tier="result"}',
        'repro_search_counter_total{counter="patterns_checked"}',
        "repro_service_searches_total",
        "repro_service_invalidations_total",
    ]
    missing_metrics = [
        name for name in required_metrics if name not in metrics
    ]

    acceptance = {
        "bit_identical_met": not divergences,
        "throughput_3x_met": (
            sustained_summary["achieved_qps"]
            >= REQUIRED_RATIO * baseline_qps
        ),
        "slo_p95_met": (
            sustained_summary["latency_200"]["p95_ms"] <= SLO_P95_MS
        ),
        "coalescing_met": (
            burst_coalesced > 0 and burst_executions == 1
        ),
        "shedding_met": overload_summary["shed_503"] > 0,
        "admitted_p99_bounded_met": admitted_p99_ms <= p99_bound_ms,
        "metrics_exposed_met": not missing_metrics,
        "no_transport_errors_met": (
            sustained_summary["transport_errors"] == 0
            and overload_summary["transport_errors"] == 0
        ),
        "mutation_no_thaw_met": mutation_thawed == 0,
        "mutation_compacted_met": (
            overlay_postings > 0
            and outcome["generation"] == 1
            and mapped.store.overlay_postings == 0
        ),
    }
    report = {
        "bench": "BENCH_8",
        "profile": profile_name,
        "k": k,
        "d": indexes.d,
        "num_entities": profile["wiki"].num_entities,
        "queries": query_texts,
        "baseline": {
            "qps": baseline_qps,
            "requests": len(baseline_stream),
            "seconds": baseline_seconds,
        },
        "burst": {
            "requests": 16,
            "executions": burst_executions,
            "coalesced": burst_coalesced,
        },
        "sustained": dict(
            sustained_summary,
            ratio_vs_baseline=(
                sustained_summary["achieved_qps"] / baseline_qps
            ),
            responses_checked=checked,
            slo_p95_ms=SLO_P95_MS,
        ),
        "overload": dict(
            overload_summary,
            capacity_qps=capacity_qps,
            paced_p95_ms=paced_p95_ms,
            max_queue=OVERLOAD_QUEUE,
            admitted_p99_bound_ms=p99_bound_ms,
        ),
        "mutation": {
            "entities_added": 2 * len(query_texts),
            "overlay_postings": overlay_postings,
            "generation": outcome["generation"],
            "backed_stores_thawed": mutation_thawed,
        },
        "metrics_missing": missing_metrics,
        "divergences": divergences,
        "acceptance": acceptance,
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"wrote {out_path}")

    failures = [name for name, ok in acceptance.items() if not ok]
    if failures:
        print(f"FAIL: {', '.join(failures)}", file=sys.stderr)
        if divergences:
            print(
                f"  {len(divergences)} served results diverged from the "
                "cold engine",
                file=sys.stderr,
            )
        return 1
    print("all gates passed: served answers identical to the cold engine")
    return 0


# --------------------------------------------------------------------------
# BENCH_9: the fork-pool execution backend
# --------------------------------------------------------------------------

#: Core-aware speedup floor for the fork flood vs the threaded flood at
#: equal worker count.  On >= 4 cores (the CI runner shape) the pool must
#: clear 2x; on 2-3 cores there is less parallelism to buy, so 1.3x; on a
#: single core no parallel speedup is physically available — the ratio is
#: recorded but the QPS gate is waived (divergence/thaw/failover gates
#: still apply).
def fork_speedup_floor(cores: int):
    if cores >= 4:
        return 2.0
    if cores >= 2:
        return 1.3
    return None


def _http_get(address: str, path: str, timeout: float = 30.0):
    import http.client

    host, _, port_text = address.partition(":")
    conn = http.client.HTTPConnection(host, int(port_text), timeout=timeout)
    conn.request("GET", path)
    response = conn.getresponse()
    body = response.read()
    conn.close()
    return response.status, body


def _body_minus_timing(body: bytes):
    payload = json.loads(body)
    payload.get("stats", {}).pop("elapsed_ms", None)
    return payload


def _check_pairs(stage, observations, oracle, divergences):
    """Fingerprint every 200 /search response against the cold oracle,
    keyed by the ``(query, k)`` pair the response echoes back."""
    checked = 0
    for obs in observations:
        if obs.status != 200 or obs.body is None:
            continue
        if not obs.path.startswith("/search"):
            continue
        payload = json.loads(obs.body)
        key = (payload["query"], payload["k"])
        if http_fingerprint(obs.body) != oracle[key]:
            divergences.append(
                {"stage": stage, "query": key[0], "k": key[1]}
            )
        checked += 1
    return checked


def run_fork(profile_name: str, k: int, out_path: str) -> int:
    import os
    import tempfile

    from repro.index.mmapstore import MappedPostingStore
    from repro.index.serialize import load_indexes, save_indexes
    from repro.search.sharding import ShardedSearchService
    from repro.serve.pool import PooledSearchService

    profile = PROFILES[profile_name]
    cores = os.cpu_count() or 1
    workers = max(2, min(4, cores))
    shards = 2

    # The serving bundle is the *mapped* v3 layout — what production
    # serves and what the fork workers must inherit copy-free.
    graph = generate_wiki_graph(profile["wiki"])
    built = build_indexes(graph, d=3)
    tmpdir = tempfile.mkdtemp(prefix="bench9-")
    index_path = os.path.join(tmpdir, "wiki.repro")
    save_indexes(built, index_path)
    indexes = load_indexes(index_path)
    thawed_before = MappedPostingStore.backed_stores_thawed

    queries = heavy_workload(
        indexes, profile["min_subtrees"], profile["max_queries"]
    )
    if not queries:
        print("error: no heavy queries in the workload", file=sys.stderr)
        return 1
    query_texts = [" ".join(query) for query in queries]

    # Distinct cold (query, k) plans: no result-cache hits, no
    # coalescing — both backends execute every request.  The identical
    # shuffled set goes to both floods.
    k_variants = list(range(3, 3 + max(8, k)))
    pairs = [(text, kv) for kv in k_variants for text in query_texts]
    random.Random(9).shuffle(pairs)
    flood = [WorkloadRequest(query=text, k=kv) for text, kv in pairs]
    warmup = [
        WorkloadRequest(query=text, k=2) for text in query_texts[:workers]
    ]

    # Fault-phase plans use k values outside the flood so the parent's
    # result LRU cannot serve them — they *must* cross the wounded pool.
    fault_variants = [101, 102]
    snap = indexes.snapshot()
    engine = TableAnswerEngine(snap.graph, indexes=snap)
    oracle = {
        (text, kv): fingerprint(engine.search(query, k=kv))
        for query, text in zip(queries, query_texts)
        for kv in k_variants + fault_variants + [2]
    }
    divergences = []

    # ---- threaded flood: the GIL-bound reference ---------------------
    threaded_server = start_http_server(
        SearchService(indexes), max_queue=512, workers=workers
    )
    run_open_loop(threaded_server.address, warmup, rate=1e9, clients=2)
    threaded = run_open_loop(
        threaded_server.address, flood, rate=1e9, clients=workers * 2,
        capture_bodies=True,
    )
    threads_checked = _check_pairs(
        "threads", threaded.observations, oracle, divergences
    )
    threads_qps = threaded.achieved_qps
    print(
        f"threaded flood: {threads_qps:.0f} QPS at {workers} workers "
        f"({threads_checked} responses checked)"
    )

    # ---- fork-pool flood: same requests, W processes -----------------
    pooled = PooledSearchService(indexes, processes=workers)
    pooled_server = start_http_server(
        pooled, max_queue=512, workers=workers
    )
    run_open_loop(pooled_server.address, warmup, rate=1e9, clients=2)
    forked = run_open_loop(
        pooled_server.address, flood, rate=1e9, clients=workers * 2,
        capture_bodies=True,
    )
    fork_checked = _check_pairs(
        "fork-pool", forked.observations, oracle, divergences
    )
    processes_qps = forked.achieved_qps
    ratio = processes_qps / threads_qps if threads_qps else 0.0
    print(
        f"fork-pool flood: {processes_qps:.0f} QPS at {workers} processes "
        f"({ratio:.2f}x threaded, {fork_checked} responses checked)"
    )

    # ---- include_rows across the pipe: portable PathEntry rows -------
    rows_divergences = 0
    rows_path_template = "/search?q={q}&k=3&include_rows=1&max_rows=8"
    for text in query_texts:
        path = rows_path_template.format(q=text.replace(" ", "+"))
        status_a, body_a = _http_get(threaded_server.address, path)
        status_b, body_b = _http_get(pooled_server.address, path)
        if (status_a, status_b) != (200, 200) or (
            _body_minus_timing(body_a) != _body_minus_timing(body_b)
        ):
            rows_divergences += 1
            divergences.append({"stage": "rows", "query": text, "k": 3})
    print(
        f"include_rows: {len(query_texts)} bodies compared across "
        f"backends, {rows_divergences} diverged"
    )

    # ---- fault injection against live HTTP traffic -------------------
    # arm_exit makes worker 0 die *mid-request* (after receiving its
    # plan); SIGKILL takes the last worker outright.  Every request must
    # still answer 200 and bit-identical via inline failover, and the
    # pool must heal back to full strength.
    pooled.arm_exit(0)
    pooled.kill_worker(workers - 1)
    fault = run_open_loop(
        pooled_server.address,
        [
            WorkloadRequest(query=text, k=kv)
            for kv in fault_variants
            for text in query_texts
        ],
        rate=1e9,
        clients=2,
        capture_bodies=True,
    )
    fault_checked = _check_pairs(
        "failover", fault.observations, oracle, divergences
    )
    fault_all_200 = all(
        obs.status == 200 for obs in fault.observations
    )
    pool_metrics = fetch_metrics(pooled_server.address)
    failovers = pool_metrics.get("repro_worker_failovers_total", 0.0)
    healed = pooled._pool is not None and (
        pooled._pool.alive_workers() == workers
    )
    print(
        f"fault injection: {fault_checked} responses checked, "
        f"{failovers:.0f} failovers, pool healed={healed}"
    )
    required_pool_metrics = [
        'repro_execution_workers{backend="fork-pool"}',
        'repro_pool_worker_alive{worker="0"}',
        "repro_worker_failovers_total",
        "repro_pool_rebuilds_total",
        "repro_pool_free_slots",
    ]
    missing_metrics = [
        name for name in required_pool_metrics
        if name not in pool_metrics
    ]
    # Graceful drain with a freshly killed worker left in the pool:
    # completing stop() IS the assertion.
    pooled.kill_worker(0)
    pooled_server.stop()
    drained_with_dead_worker = True
    threaded_server.stop()

    # ---- sharded composition under concurrent load -------------------
    sharded_server = start_http_server(
        ShardedSearchService(indexes, num_shards=shards),
        max_queue=512, workers=workers,
    )
    sharded_load = run_open_loop(
        sharded_server.address, flood[: len(flood) // 2], rate=1e9,
        clients=workers * 2, capture_bodies=True,
    )
    sharded_checked = _check_pairs(
        "sharded", sharded_load.observations, oracle, divergences
    )
    sharded_metrics = fetch_metrics(sharded_server.address)
    sharded_server.stop()
    shard_counter = sharded_metrics.get(
        'repro_search_counter_total{counter="shards_total"}', 0.0
    )
    print(
        f"sharded HTTP: {sharded_checked} responses checked, "
        f"shards_total counter {shard_counter:.0f}"
    )

    pooled_sharded = PooledSearchService(
        indexes, processes=workers, num_shards=shards
    )
    composed_server = start_http_server(
        pooled_sharded, max_queue=512, workers=workers
    )
    composed_load = run_open_loop(
        composed_server.address, flood[: len(flood) // 2], rate=1e9,
        clients=workers * 2, capture_bodies=True,
    )
    composed_checked = _check_pairs(
        "fork-pool+sharded", composed_load.observations, oracle,
        divergences,
    )
    composed_metrics = fetch_metrics(composed_server.address)
    composed_server.stop()
    print(
        f"fork-pool+sharded HTTP: {composed_checked} responses checked"
    )

    # ---- mutation under the pool: writer stream, re-forked workers ---
    # add_entity lands in the parent's delta overlay; the store version
    # bump makes the next search re-fork the pool, so workers inherit
    # the overlay copy-on-write.  Compaction then folds it into a fresh
    # mapped generation and the rebuild after *that* forks from the
    # re-mapped pages — never from a thawed heap copy.
    from repro.index.incremental import add_entity

    mut_pooled = PooledSearchService.from_file(
        index_path, processes=workers
    )
    mut_server = start_http_server(
        mut_pooled, max_queue=512, workers=workers
    )
    run_open_loop(mut_server.address, warmup, rate=1e9, clients=2)
    for text in query_texts:
        add_entity(mut_pooled.indexes, "delta_type", text.split()[0])
    mut_pooled.invalidate()
    mut_overlay = mut_pooled.indexes.store.overlay_postings

    # Fresh oracle over the mutated snapshot, at k values no earlier
    # phase (or cache) has seen — every answer crosses the rebuilt pool.
    mut_k = max(k_variants) + 1
    compacted_k = mut_k + 1
    mut_snap = mut_pooled.indexes.snapshot()
    mut_engine = TableAnswerEngine(mut_snap.graph, indexes=mut_snap)
    mut_oracle = {
        (text, kv): fingerprint(mut_engine.search(query, k=kv))
        for query, text in zip(queries, query_texts)
        for kv in (mut_k, compacted_k)
    }
    mutated = run_open_loop(
        mut_server.address,
        [WorkloadRequest(query=text, k=mut_k) for text in query_texts],
        rate=1e9,
        clients=2,
        capture_bodies=True,
    )
    mut_checked = _check_pairs(
        "mutation", mutated.observations, mut_oracle, divergences
    )
    rebuilds_before_compact = fetch_metrics(mut_server.address).get(
        "repro_pool_rebuilds_total", 0.0
    )
    mut_outcome = mut_pooled.compact()
    compacted_load = run_open_loop(
        mut_server.address,
        [
            WorkloadRequest(query=text, k=compacted_k)
            for text in query_texts
        ],
        rate=1e9,
        clients=2,
        capture_bodies=True,
    )
    compacted_checked = _check_pairs(
        "mutation-compacted", compacted_load.observations, mut_oracle,
        divergences,
    )
    mut_metrics = fetch_metrics(mut_server.address)
    mut_generation = mut_metrics.get("repro_store_generation", 0.0)
    mut_rebuilds = mut_metrics.get("repro_pool_rebuilds_total", 0.0)
    mut_server.stop()
    print(
        f"mutation under pool: {mut_overlay} overlay postings, "
        f"{mut_checked + compacted_checked} responses checked, "
        f"generation {mut_generation:.0f} after compaction, "
        f"{mut_rebuilds - rebuilds_before_compact:.0f} pool rebuilds "
        "from the re-mapped file"
    )

    thawed_delta = (
        MappedPostingStore.backed_stores_thawed - thawed_before
    )
    assert thawed_delta == 0, (
        f"serving benches thawed {thawed_delta} mapped stores"
    )
    required_ratio = fork_speedup_floor(cores)
    speedup_met = True
    if required_ratio is None:
        print(
            "NOTE: single core — no parallel speedup is physically "
            f"available; QPS gate waived (measured {ratio:.2f}x), "
            "divergence/thaw/failover gates still enforced"
        )
    else:
        speedup_met = ratio >= required_ratio

    acceptance = {
        "bit_identical_met": not divergences,
        "speedup_met": speedup_met,
        "rows_across_pipe_met": rows_divergences == 0,
        "failover_met": (
            fault_all_200 and failovers >= 1 and healed
            and drained_with_dead_worker
        ),
        "no_thaw_met": thawed_delta == 0,
        "mutation_overlay_met": (
            mut_overlay > 0
            and mut_checked == len(query_texts)
            and compacted_checked == len(query_texts)
        ),
        "mutation_compacted_met": (
            mut_outcome["generation"] == 1
            and mut_generation == 1.0
            and mut_rebuilds > rebuilds_before_compact
        ),
        "pool_metrics_exposed_met": not missing_metrics,
        "sharded_counters_met": (
            shard_counter >= shards
            and 'repro_execution_workers{backend="fork-pool+sharded"}'
            in composed_metrics
        ),
        "no_transport_errors_met": (
            threaded.summary()["transport_errors"] == 0
            and forked.summary()["transport_errors"] == 0
        ),
    }
    report = {
        "bench": "BENCH_9",
        "profile": profile_name,
        "k": k,
        "d": indexes.d,
        "num_entities": profile["wiki"].num_entities,
        "cores": cores,
        "workers": workers,
        "queries": query_texts,
        "fork_pool": {
            "threads_qps": threads_qps,
            "processes_qps": processes_qps,
            "ratio": ratio,
            "required_ratio": required_ratio,
            "requests_per_flood": len(flood),
            "responses_checked": threads_checked + fork_checked,
        },
        "rows": {
            "compared": len(query_texts),
            "diverged": rows_divergences,
        },
        "failover": {
            "responses_checked": fault_checked,
            "worker_failovers": failovers,
            "healed": healed,
            "drained_with_dead_worker": drained_with_dead_worker,
        },
        "sharded": {
            "num_shards": shards,
            "responses_checked": sharded_checked + composed_checked,
            "shards_total_counter": shard_counter,
        },
        "backed_stores_thawed": thawed_delta,
        "mutation": {
            "entities_added": len(query_texts),
            "overlay_postings": mut_overlay,
            "responses_checked": mut_checked + compacted_checked,
            "generation": mut_outcome["generation"],
            "pool_rebuilds_after_compaction": (
                mut_rebuilds - rebuilds_before_compact
            ),
        },
        "metrics_missing": missing_metrics,
        "divergences": divergences,
        "acceptance": acceptance,
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"wrote {out_path}")

    failures = [name for name, ok in acceptance.items() if not ok]
    if failures:
        print(f"FAIL: {', '.join(failures)}", file=sys.stderr)
        if divergences:
            print(
                f"  {len(divergences)} served results diverged from the "
                "cold engine",
                file=sys.stderr,
            )
        return 1
    print(
        "all gates passed: fork-pool answers identical to the cold "
        "engine, zero mapped stores thawed"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="smoke"
    )
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument(
        "--fork-pool", action="store_true",
        help="run the BENCH_9 fork-pool backend suite instead of BENCH_8",
    )
    parser.add_argument("--out", default=None)
    args = parser.parse_args(argv)
    if args.fork_pool:
        return run_fork(
            args.profile, args.k, args.out or "BENCH_9.json"
        )
    return run(args.profile, args.k, args.out or "BENCH_8.json")


if __name__ == "__main__":
    sys.exit(main())
