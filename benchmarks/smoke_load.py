"""BENCH_8: HTTP serving tier — latency under open-loop load.

Measures ``repro.serve.http`` end to end on the wiki synthetic (d=3,
BENCH_4's heavy-query workload) with the open-loop generator from
``benchmarks/loadgen.py`` (fixed arrival rate, latency measured from the
*scheduled* arrival, so queueing is charged to the server):

* **serial baseline** — the pre-HTTP serving story: the ``serve`` REPL
  loop (search + ASCII table rendering) replaying the Zipf stream on one
  thread;
* **coalescing burst** — 16 simultaneous identical cold requests against
  a one-worker server: one execution, every response's answers
  bit-identical, ``X-Coalesced`` on the followers;
* **sustained phase** — the Zipf stream (writer ticks every 250
  requests) at ``sustained_ratio``× the baseline rate: achieved QPS,
  p50/p95/p99, coalescing count, and a **divergence gate** — every 200
  response is fingerprinted (scores, pattern keys, row counts; floats
  survive the JSON round trip exactly) against a cold single-shot
  ``TableAnswerEngine`` run;
* **overload phase** — a one-worker, ``max_queue=4`` server at 2× its
  measured capacity over distinct cold plans: the server must shed
  (503s + ``requests_shed``) while the p99 of *admitted* requests stays
  bounded by queue math instead of growing with offered load;
* **/metrics gate** — the scrape must expose QPS, latency quantiles,
  queue depth, shed/coalesced/expired counts, cache tiers, and search
  work counters.

Emits ``BENCH_8.json``; exit 1 if any gate fails.  CI runs ``smoke``::

    PYTHONPATH=src python benchmarks/smoke_load.py --out BENCH_8.json
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import random
import sys
import time

from repro.cli import _print_result
from repro.datasets.queries import zipfian_requests
from repro.datasets.wiki import WikiConfig, generate_wiki_graph
from repro.index.builder import build_indexes
from repro.search.engine import TableAnswerEngine
from repro.search.service import SearchService
from repro.serve import start_http_server
from repro.serve.workload import WorkloadRequest, zipf_workload

from loadgen import fetch_metrics, run_open_loop
from smoke_serving import fingerprint, heavy_workload

PROFILES = {
    "smoke": {
        "wiki": WikiConfig(
            num_entities=120, num_types=8, num_attrs=12,
            vocabulary_size=60, seed=5,
        ),
        "min_subtrees": 64,
        "max_queries": 8,
        "baseline_requests": 120,
        "sustained_requests": 2000,
        "overload_seconds": 2.0,
    },
    "full": {
        "wiki": WikiConfig(
            num_entities=800, num_types=24, num_attrs=36,
            vocabulary_size=240, seed=23,
        ),
        "min_subtrees": 4096,
        "max_queries": 10,
        "baseline_requests": 200,
        "sustained_requests": 4000,
        "overload_seconds": 3.0,
    },
}

#: Offered sustained rate as a multiple of the serial baseline; the gate
#: requires achieved >= REQUIRED_RATIO x baseline.  Calibrated headroom:
#: the tier floods at ~3.8x baseline on the smoke profile, so 3.25x
#: offered holds a stable queue while clearing the 3x acceptance floor.
SUSTAINED_RATIO = 3.25
REQUIRED_RATIO = 3.0
#: Sustained-phase SLO on answered requests.
SLO_P95_MS = 200.0
#: Overload server shape: one executor, four admission slots.
OVERLOAD_QUEUE = 4
#: Admitted p99 under 2x-capacity overload must stay within queue math:
#: (queue depth + 2) service times, with 3x slack for GIL contention
#: between the in-process clients and the server, floored absolutely.
OVERLOAD_P99_SLACK = 3.0
OVERLOAD_P99_FLOOR_MS = 250.0


def http_fingerprint(body: bytes):
    payload = json.loads(body)
    return (
        [answer["score"] for answer in payload["answers"]],
        [tuple(answer["pattern_key"]) for answer in payload["answers"]],
        [answer["num_subtrees"] for answer in payload["answers"]],
    )


def check_responses(stage, observations, oracle, divergences):
    """Fingerprint every 200 /search response against the cold oracle."""
    checked = 0
    for obs in observations:
        if obs.status != 200 or obs.body is None:
            continue
        if not obs.path.startswith("/search"):
            continue
        payload = json.loads(obs.body)
        query = payload["query"]
        if http_fingerprint(obs.body) != oracle[query]:
            divergences.append({"stage": stage, "query": query})
        checked += 1
    return checked


def run(profile_name: str, k: int, out_path: str) -> int:
    profile = PROFILES[profile_name]
    graph = generate_wiki_graph(profile["wiki"])
    indexes = build_indexes(graph, d=3)
    queries = heavy_workload(
        indexes, profile["min_subtrees"], profile["max_queries"]
    )
    if not queries:
        print("error: no heavy queries in the workload", file=sys.stderr)
        return 1
    query_texts = [" ".join(query) for query in queries]

    # The no-cache oracle: cold engine on a pinned snapshot, keyed by the
    # query text the HTTP responses echo back.
    snap = indexes.snapshot()
    engine = TableAnswerEngine(snap.graph, indexes=snap)
    oracle = {}
    cold_seconds = {}
    for query, text in zip(queries, query_texts):
        started = time.perf_counter()
        result = engine.search(query, k=k)
        cold_seconds[text] = time.perf_counter() - started
        oracle[text] = fingerprint(result)
    divergences = []

    # ---- serial baseline: the serve REPL loop ------------------------
    baseline_stream = zipfian_requests(
        queries, profile["baseline_requests"], alpha=0.9, seed=11
    )
    service = SearchService(indexes)
    sink = io.StringIO()
    started = time.perf_counter()
    for query in baseline_stream:
        result = service.search(query, k=k)
        with contextlib.redirect_stdout(sink):
            _print_result(service, result, 10, False)
    baseline_seconds = time.perf_counter() - started
    baseline_qps = len(baseline_stream) / baseline_seconds
    service.close()
    print(
        f"serial REPL baseline: {baseline_qps:.0f} QPS "
        f"({len(baseline_stream)} requests in {baseline_seconds:.3f}s)"
    )

    # ---- coalescing burst: N waiters, one execution ------------------
    # One worker so the leader occupies the executor while 15 duplicates
    # arrive; the heaviest query maximizes the coalescing window.
    heaviest = max(query_texts, key=lambda text: cold_seconds[text])
    server = start_http_server(
        SearchService(indexes), max_queue=64, workers=1
    )
    burst = run_open_loop(
        server.address,
        [WorkloadRequest(query=heaviest, k=k)] * 16,
        rate=1e9,
        clients=16,
        capture_bodies=True,
    )
    burst_stats = server.server.service.stats
    burst_executions = burst_stats.result_misses
    burst_coalesced = sum(1 for obs in burst.observations if obs.coalesced)
    check_responses("burst", burst.observations, oracle, divergences)
    server.stop()
    print(
        f"coalescing burst: 16 duplicates -> {burst_executions} "
        f"executions, {burst_coalesced} coalesced"
    )

    # ---- sustained phase: Zipf mix at SUSTAINED_RATIO x baseline -----
    sustained_rate = SUSTAINED_RATIO * baseline_qps
    workload = zipf_workload(
        query_texts,
        profile["sustained_requests"],
        k=k,
        alpha=0.9,
        seed=17,
        invalidate_every=250,
    )
    server = start_http_server(
        SearchService(indexes), max_queue=256, workers=4
    )
    sustained = run_open_loop(
        server.address, workload, rate=sustained_rate, clients=8,
        capture_bodies=True,
    )
    sustained_summary = sustained.summary()
    checked = check_responses(
        "sustained", sustained.observations, oracle, divergences
    )
    metrics = fetch_metrics(server.address)
    server.stop()
    print(
        f"sustained: offered {sustained_rate:.0f}/s -> achieved "
        f"{sustained_summary['achieved_qps']:.0f} QPS "
        f"({sustained_summary['achieved_qps'] / baseline_qps:.2f}x "
        f"baseline), p95 "
        f"{sustained_summary['latency_200']['p95_ms']:.1f} ms, "
        f"{sustained_summary['coalesced']} coalesced, "
        f"{checked} responses checked"
    )

    # ---- overload phase: 2x capacity into a tiny admission queue -----
    # Distinct (query, k) pairs so every request is a cold plan: no
    # result-cache hits, no coalescing — admission control alone.
    pairs = [
        (text, 3 + j) for j in range(200) for text in query_texts
    ]
    random.Random(42).shuffle(pairs)
    def to_requests(chunk):
        return [
            WorkloadRequest(query=text, k=pair_k) for text, pair_k in chunk
        ]
    server = start_http_server(
        SearchService(indexes), max_queue=OVERLOAD_QUEUE, workers=1
    )
    flood = run_open_loop(
        server.address, to_requests(pairs[:40]), rate=1e9, clients=1
    )
    capacity_qps = flood.achieved_qps
    paced = run_open_loop(
        server.address,
        to_requests(pairs[40:80]),
        rate=max(capacity_qps / 2, 1.0),
        clients=2,
    )
    paced_p95_ms = paced.quantiles_ms()["p95_ms"]
    overload_count = min(
        int(2 * capacity_qps * profile["overload_seconds"]),
        len(pairs) - 80,
    )
    overload = run_open_loop(
        server.address,
        to_requests(pairs[80:80 + overload_count]),
        rate=2 * capacity_qps,
        clients=8,
    )
    server.stop()
    overload_summary = overload.summary()
    admitted_p99_ms = overload_summary["latency_200"]["p99_ms"]
    p99_bound_ms = max(
        OVERLOAD_P99_FLOOR_MS,
        OVERLOAD_P99_SLACK * (OVERLOAD_QUEUE + 2) * paced_p95_ms,
    )
    print(
        f"overload: capacity {capacity_qps:.0f}/s, offered "
        f"{2 * capacity_qps:.0f}/s -> {overload_summary['shed_503']} shed, "
        f"admitted p99 {admitted_p99_ms:.1f} ms "
        f"(bound {p99_bound_ms:.0f} ms)"
    )

    required_metrics = [
        "repro_http_qps",
        "repro_http_queue_depth",
        "repro_http_requests_shed_total",
        "repro_http_requests_coalesced_total",
        "repro_http_requests_expired_total",
        'repro_http_request_latency_seconds{quantile="0.99"}',
        'repro_cache_hits_total{tier="result"}',
        'repro_search_counter_total{counter="patterns_checked"}',
        "repro_service_searches_total",
        "repro_service_invalidations_total",
    ]
    missing_metrics = [
        name for name in required_metrics if name not in metrics
    ]

    acceptance = {
        "bit_identical_met": not divergences,
        "throughput_3x_met": (
            sustained_summary["achieved_qps"]
            >= REQUIRED_RATIO * baseline_qps
        ),
        "slo_p95_met": (
            sustained_summary["latency_200"]["p95_ms"] <= SLO_P95_MS
        ),
        "coalescing_met": (
            burst_coalesced > 0 and burst_executions == 1
        ),
        "shedding_met": overload_summary["shed_503"] > 0,
        "admitted_p99_bounded_met": admitted_p99_ms <= p99_bound_ms,
        "metrics_exposed_met": not missing_metrics,
        "no_transport_errors_met": (
            sustained_summary["transport_errors"] == 0
            and overload_summary["transport_errors"] == 0
        ),
    }
    report = {
        "bench": "BENCH_8",
        "profile": profile_name,
        "k": k,
        "d": indexes.d,
        "num_entities": profile["wiki"].num_entities,
        "queries": query_texts,
        "baseline": {
            "qps": baseline_qps,
            "requests": len(baseline_stream),
            "seconds": baseline_seconds,
        },
        "burst": {
            "requests": 16,
            "executions": burst_executions,
            "coalesced": burst_coalesced,
        },
        "sustained": dict(
            sustained_summary,
            ratio_vs_baseline=(
                sustained_summary["achieved_qps"] / baseline_qps
            ),
            responses_checked=checked,
            slo_p95_ms=SLO_P95_MS,
        ),
        "overload": dict(
            overload_summary,
            capacity_qps=capacity_qps,
            paced_p95_ms=paced_p95_ms,
            max_queue=OVERLOAD_QUEUE,
            admitted_p99_bound_ms=p99_bound_ms,
        ),
        "metrics_missing": missing_metrics,
        "divergences": divergences,
        "acceptance": acceptance,
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"wrote {out_path}")

    failures = [name for name, ok in acceptance.items() if not ok]
    if failures:
        print(f"FAIL: {', '.join(failures)}", file=sys.stderr)
        if divergences:
            print(
                f"  {len(divergences)} served results diverged from the "
                "cold engine",
                file=sys.stderr,
            )
        return 1
    print("all gates passed: served answers identical to the cold engine")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="smoke"
    )
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument("--out", default="BENCH_8.json")
    args = parser.parse_args(argv)
    return run(args.profile, args.k, args.out)


if __name__ == "__main__":
    sys.exit(main())
