"""Figure 10 (Exp-III): scalability with knowledge-graph size.

The paper runs the 500 queries against induced subgraphs on 10%-100% of
Wiki's entities and sees near-linear growth.  These benches compare query
time at 50% vs 100% of the bench graph.
"""

import random

import pytest

from repro.index.builder import build_indexes
from repro.search.linear_topk import linear_topk_search
from repro.search.pattern_enum import pattern_enum_search

ENGINES = {
    "LETopK": linear_topk_search,
    "PETopK": pattern_enum_search,
}


@pytest.fixture(scope="module")
def half_indexes(wiki_graph):
    rng = random.Random(31)
    keep = [v for v in wiki_graph.nodes() if rng.random() < 0.5]
    return build_indexes(wiki_graph.induced_subgraph(keep), d=3)


def _sweep(engine, indexes, queries):
    total = 0
    for query in queries:
        total += engine(indexes, query, k=100, keep_subtrees=False).num_answers
    return total


@pytest.mark.parametrize("engine", ENGINES)
def test_half_graph(benchmark, half_indexes, wiki_queries, engine):
    total = benchmark.pedantic(
        _sweep,
        args=(ENGINES[engine], half_indexes, wiki_queries),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["total_answers"] = total
    benchmark.extra_info["nodes"] = half_indexes.graph.num_nodes


@pytest.mark.parametrize("engine", ENGINES)
def test_full_graph(benchmark, wiki_indexes, wiki_queries, engine):
    total = benchmark.pedantic(
        _sweep,
        args=(ENGINES[engine], wiki_indexes, wiki_queries),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["total_answers"] = total
    benchmark.extra_info["nodes"] = wiki_indexes.graph.num_nodes


def test_index_build_scales(benchmark, wiki_graph):
    """Index construction on the half graph (build-side scalability)."""
    rng = random.Random(31)
    keep = [v for v in wiki_graph.nodes() if rng.random() < 0.5]
    subgraph = wiki_graph.induced_subgraph(keep)
    indexes = benchmark.pedantic(
        build_indexes, args=(subgraph,), kwargs={"d": 3}, rounds=2, iterations=1
    )
    assert indexes.num_entries > 0
