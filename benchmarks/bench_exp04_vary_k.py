"""Exp-IV: the value of k barely affects execution time.

The paper: a pattern costs O(log k) to insert into the size-k queue while
*finding* it costs far more, so time is flat in k.  The benches time the
same query at k = 10 and k = 100; the two medians should be within noise
of each other.
"""

import pytest

from repro.search.linear_topk import linear_topk_search
from repro.search.pattern_enum import pattern_enum_search

ENGINES = {
    "LETopK": linear_topk_search,
    "PETopK": pattern_enum_search,
}


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("k", [10, 100])
def test_vary_k(benchmark, wiki_indexes, wiki_heavy_query, engine, k):
    result = benchmark.pedantic(
        ENGINES[engine],
        args=(wiki_indexes, wiki_heavy_query),
        kwargs={"k": k, "keep_subtrees": False},
        rounds=2,
        iterations=1,
    )
    assert result.num_answers <= k
    benchmark.extra_info["k"] = k
    benchmark.extra_info["answers"] = result.num_answers
