"""Figure 7: query time vs number of tree patterns (wiki-like, d=3).

The paper partitions 500 Bing queries into decades of #patterns and plots
min/geo/max time per group for Baseline, LETopK, PETopK.  The benches here
time the three engines on a light and on the heaviest workload query; the
full grouped sweep is ``python -m repro.bench.run_all fig7``.

Expected shape: PETopK and LETopK beat Baseline by 1-2 orders of
magnitude; the heavy query costs orders of magnitude more than the light
one for every engine.
"""

import pytest

from repro.search.baseline import baseline_search
from repro.search.linear_topk import linear_topk_search
from repro.search.pattern_enum import pattern_enum_search

ENGINES = {
    "Baseline": baseline_search,
    "LETopK": linear_topk_search,
    "PETopK": pattern_enum_search,
}


@pytest.mark.parametrize("engine", ENGINES)
def test_light_query(benchmark, wiki_indexes, wiki_light_query, engine):
    result = benchmark(
        ENGINES[engine],
        wiki_indexes,
        wiki_light_query,
        k=100,
        keep_subtrees=False,
    )
    benchmark.extra_info["answers"] = result.num_answers
    benchmark.extra_info["query"] = " ".join(wiki_light_query)


@pytest.mark.parametrize("engine", ENGINES)
def test_heavy_query(benchmark, wiki_indexes, wiki_heavy_query, engine):
    result = benchmark.pedantic(
        ENGINES[engine],
        args=(wiki_indexes, wiki_heavy_query),
        kwargs={"k": 100, "keep_subtrees": False},
        rounds=2,
        iterations=1,
    )
    assert result.num_answers > 0
    benchmark.extra_info["answers"] = result.num_answers
    benchmark.extra_info["query"] = " ".join(wiki_heavy_query)
