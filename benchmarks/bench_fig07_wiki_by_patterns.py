"""Figure 7: query time vs number of tree patterns (wiki-like, d=3).

The paper partitions 500 Bing queries into decades of #patterns and plots
min/geo/max time per group for Baseline, LETopK, PETopK.  The benches here
time the three engines on a light and on the heaviest workload query; the
full grouped sweep is ``python -m repro.bench.run_all fig7``.

Expected shape: PETopK and LETopK beat Baseline by 1-2 orders of
magnitude; the heavy query costs orders of magnitude more than the light
one for every engine.

The workload-profile benches additionally record per-query p50/p95
latency and the number of path entries materialized from the store into
the bench JSON (``--benchmark-json``), so the query-side trajectory —
and the id-based enumeration's zero-materialization contract — is
tracked release over release.
"""

import time

import pytest

from repro.index.store import PostingStore
from repro.search.baseline import baseline_search
from repro.search.linear_topk import linear_topk_search
from repro.search.pattern_enum import pattern_enum_search

ENGINES = {
    "Baseline": baseline_search,
    "LETopK": linear_topk_search,
    "PETopK": pattern_enum_search,
}


def percentile(sorted_values, fraction):
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1,
        max(0, round(fraction * (len(sorted_values) - 1))),
    )
    return sorted_values[rank]


def profile_workload(engine, indexes, queries, **params):
    """Per-query latencies (seconds, ascending) plus entry materializations.

    Materializations are counted process-wide
    (``PostingStore.total_entries_materialized``) rather than on
    ``indexes.store`` so the baseline's query-local scratch stores are
    covered too.
    """
    params.setdefault("k", 100)
    params.setdefault("keep_subtrees", False)
    before = PostingStore.total_entries_materialized
    latencies = []
    for query in queries:
        started = time.perf_counter()
        engine(indexes, query, **params)
        latencies.append(time.perf_counter() - started)
    materialized = PostingStore.total_entries_materialized - before
    return sorted(latencies), materialized


def record_profile(benchmark, latencies, materialized):
    benchmark.extra_info["queries"] = len(latencies)
    benchmark.extra_info["p50_ms"] = percentile(latencies, 0.50) * 1000
    benchmark.extra_info["p95_ms"] = percentile(latencies, 0.95) * 1000
    benchmark.extra_info["entries_materialized"] = materialized


@pytest.mark.parametrize("engine", ENGINES)
def test_light_query(benchmark, wiki_indexes, wiki_light_query, engine):
    result = benchmark(
        ENGINES[engine],
        wiki_indexes,
        wiki_light_query,
        k=100,
        keep_subtrees=False,
    )
    benchmark.extra_info["answers"] = result.num_answers
    benchmark.extra_info["query"] = " ".join(wiki_light_query)


@pytest.mark.parametrize("engine", ENGINES)
def test_heavy_query(benchmark, wiki_indexes, wiki_heavy_query, engine):
    result = benchmark.pedantic(
        ENGINES[engine],
        args=(wiki_indexes, wiki_heavy_query),
        kwargs={"k": 100, "keep_subtrees": False},
        rounds=2,
        iterations=1,
    )
    assert result.num_answers > 0
    benchmark.extra_info["answers"] = result.num_answers
    benchmark.extra_info["query"] = " ".join(wiki_heavy_query)


@pytest.mark.parametrize("engine", ENGINES)
def test_workload_latency_profile(benchmark, wiki_indexes, wiki_queries, engine):
    """One pass over the whole wiki workload; p50/p95 + materializations.

    With ``keep_subtrees=False`` the id-based enumeration must read zero
    entries out of the store — asserted here so the bench JSON records a
    hard 0, not a drifting count.
    """

    def sweep():
        return profile_workload(ENGINES[engine], wiki_indexes, wiki_queries)

    latencies, materialized = benchmark.pedantic(sweep, rounds=2, iterations=1)
    assert materialized == 0
    record_profile(benchmark, latencies, materialized)
