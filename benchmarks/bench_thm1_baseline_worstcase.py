"""Ablation: the Section 4.1 adversarial graph and Theorem 1's reduction.

* PETopK pays Theta(p^2) empty-pattern checks on the adversarial graph
  while LETopK terminates immediately (zero candidate roots) — the
  theoretical separation DESIGN.md calls out, measured.
* The Theorem 1 reduction instance demonstrates COUNTPAT's output scale:
  counting patterns on the reduction of a 2^layers-path DAG touches N^2
  patterns.
"""

import pytest

from repro.datasets.worstcase import pattern_enum_adversarial_graph
from repro.index.builder import build_indexes
from repro.search.linear_topk import linear_topk_search
from repro.search.pattern_enum import pattern_enum_search
from repro.theory.reduction import build_reduction_instance, count_tree_patterns


@pytest.fixture(scope="module", params=[20, 40])
def adversarial(request):
    graph, query = pattern_enum_adversarial_graph(request.param)
    return build_indexes(graph, d=2), query, request.param


def test_pattern_enum_quadratic(benchmark, adversarial):
    indexes, query, p = adversarial
    result = benchmark(
        pattern_enum_search, indexes, query, k=10, keep_subtrees=False
    )
    assert result.num_answers == 0
    assert result.stats.patterns_checked == p * p
    benchmark.extra_info["p"] = p
    benchmark.extra_info["patterns_checked"] = result.stats.patterns_checked


def test_linear_enum_immediate(benchmark, adversarial):
    indexes, query, p = adversarial
    result = benchmark(
        linear_topk_search, indexes, query, k=10, keep_subtrees=False
    )
    assert result.num_answers == 0
    assert result.stats.candidate_roots == 0
    benchmark.extra_info["p"] = p


def test_reduction_countpat(benchmark):
    """COUNTPAT on the reduction of a 2-way layered DAG (N = 4, N^2 = 16)."""
    digraph = {0: [1, 2], 1: [3, 4], 2: [3, 4], 3: [5], 4: [5], 5: []}
    kg, query, d = build_reduction_instance(digraph, 0, 5)
    count = benchmark(count_tree_patterns, kg, query, d)
    assert count == 16
