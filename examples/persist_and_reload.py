"""Production flow: load a KB dump, build once, persist, serve queries.

Demonstrates the deployment shape the paper implies (index construction is
minutes-to-hours; queries are milliseconds): parse an N-Triples dump,
build the path indexes, save them to disk, reload in a "server" process,
and answer queries — including a synonym-expanded one.

Run:  python examples/persist_and_reload.py
"""

import tempfile
from pathlib import Path

from repro.index.builder import build_indexes
from repro.index.serialize import load_indexes, save_indexes
from repro.index.stats import index_statistics
from repro.kg.builder import build_graph
from repro.kg.loaders.ntriples import load_ntriples
from repro.kg.synonyms import SynonymTable
from repro.search.engine import TableAnswerEngine

NTRIPLES_DUMP = """\
<http://ex.org/Braveheart> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/Movie> .
<http://ex.org/Braveheart> <http://ex.org/director> <http://ex.org/Mel_Gibson> .
<http://ex.org/Braveheart> <http://ex.org/year> "1995" .
<http://ex.org/Mad_Max> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/Movie> .
<http://ex.org/Mad_Max> <http://ex.org/starring> <http://ex.org/Mel_Gibson> .
<http://ex.org/Mad_Max> <http://ex.org/year> "1979" .
<http://ex.org/Mel_Gibson> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/Person> .
<http://ex.org/Mel_Gibson> <http://www.w3.org/2000/01/rdf-schema#label> "Mel Gibson" .
<http://ex.org/Lethal_Weapon> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/Movie> .
<http://ex.org/Lethal_Weapon> <http://ex.org/starring> <http://ex.org/Mel_Gibson> .
<http://ex.org/Lethal_Weapon> <http://ex.org/year> "1987" .
"""


def main() -> None:
    # --- offline: parse, build, persist -------------------------------
    kb = load_ntriples(NTRIPLES_DUMP.splitlines())
    graph, _nodes = build_graph(kb)
    synonyms = SynonymTable([["movie", "film"]])
    indexes = build_indexes(graph, d=3, synonyms=synonyms)
    print("built:", index_statistics(indexes).format())

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "movies.idx"
        size = save_indexes(indexes, path)
        print(f"persisted {size / 1024:.1f} KiB to {path.name}")

        # --- online: reload and serve --------------------------------
        served = load_indexes(path)
        engine = TableAnswerEngine(served.graph, indexes=served)
        for query in ("gibson movie year", "gibson film year"):
            print(f'\nquery: "{query}"  '
                  f"(resolved: {served.resolve_query(query)})")
            tables = engine.tables(query, k=1)
            if tables:
                print(tables[0].to_ascii())
            else:
                print("no answers")


if __name__ == "__main__":
    main()
