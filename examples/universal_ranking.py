"""Universal ranking + query relaxation: the library's extensions.

Two capabilities beyond the paper:

* **Mixed ranking** (the Section 5.3 open problem): one result list
  interleaving table answers with singular individual subtrees, shown on
  the paper's "XBox Game" case study — the games *table* and the popular
  *Xbox* entity both surface.
* **Query relaxation**: an over-constrained query ("xbox game warranty")
  recovers answers by dropping its least selective unanswerable keyword.

Run:  python examples/universal_ranking.py
"""

from repro.datasets.case_study import CASE_STUDY_D, xbox_case_study_graph
from repro.index.builder import build_indexes
from repro.search.engine import TableAnswerEngine


def main() -> None:
    graph, query = xbox_case_study_graph()
    indexes = build_indexes(graph, d=CASE_STUDY_D)
    engine = TableAnswerEngine(graph, indexes=indexes)

    print(f'=== universal ranking for "{query}" ===\n')
    mixed = engine.search_mixed(query, k=4)
    for rank, answer in enumerate(mixed.answers, start=1):
        table = answer.pattern_answer.to_table(graph)
        print(f"#{rank} [{answer.kind}] normalized={answer.normalized_score:.3f} "
              f"rows={answer.num_rows}")
        print(table.to_ascii(max_rows=3))
        print()
    print(f"(patterns: {mixed.num_patterns_ranked}, "
          f"individual subtrees: {mixed.num_subtrees_ranked}, "
          f"subsumed by tables: {mixed.num_subtrees_subsumed})")

    print('\n=== relaxation for "xbox game warranty" ===\n')
    relaxed = engine.search_relaxed("xbox game warranty", k=2)
    if relaxed.was_relaxed:
        print(f"dropped: {', '.join(relaxed.dropped_keywords)}  "
              f"(kept: {', '.join(relaxed.kept_keywords)})")
    for answer in relaxed.result.answers[:1]:
        print(answer.to_table(graph).to_ascii(max_rows=4))


if __name__ == "__main__":
    main()
