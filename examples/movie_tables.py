"""Movie tables: the intro's "Mel Gibson movies" scenario.

Builds a small hand-written movie knowledge base (the kind of data IMDB
holds), then shows how a keyword query over *multiple entities* is better
answered by a table than by individual subtrees:

* "mel gibson movies"      -> a table of movies starring Mel Gibson
* "braveheart actor"       -> the cast table of one movie
* "thriller director year" -> movies with their directors and years

Run:  python examples/movie_tables.py
"""

from repro.kg.entity import EntityRef, TextValue
from repro.kg.knowledge_base import KnowledgeBase
from repro.search.engine import TableAnswerEngine

MOVIES = [
    # title, year, genre, director, actors
    ("Braveheart", "1995", "Drama", "Mel Gibson",
     ["Mel Gibson", "Sophie Marceau"]),
    ("Mad Max", "1979", "Action", "George Miller",
     ["Mel Gibson", "Joanne Samuel"]),
    ("Lethal Weapon", "1987", "Action", "Richard Donner",
     ["Mel Gibson", "Danny Glover"]),
    ("The Patriot", "2000", "Drama", "Roland Emmerich",
     ["Mel Gibson", "Heath Ledger"]),
    ("Heat", "1995", "Thriller", "Michael Mann",
     ["Al Pacino", "Robert De Niro"]),
    ("Ransom", "1996", "Thriller", "Ron Howard",
     ["Mel Gibson", "Rene Russo"]),
    ("The Insider", "1999", "Thriller", "Michael Mann",
     ["Al Pacino", "Russell Crowe"]),
]


def build_movie_kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    people = set()
    genres = set()
    for title, year, genre, director, actors in MOVIES:
        kb.add_entity(title, "Movie")
        for person in [director, *actors]:
            if person not in people:
                people.add(person)
                kb.add_entity(person, "Person")
        if genre not in genres:
            genres.add(genre)
            kb.add_entity(genre, "Genre")
    for title, year, genre, director, actors in MOVIES:
        kb.set_attribute(title, "Director", EntityRef(director))
        for actor in actors:
            kb.set_attribute(title, "Starring", EntityRef(actor))
        kb.set_attribute(title, "Genre", EntityRef(genre))
        kb.set_attribute(title, "Year", TextValue(year))
    return kb


def show(engine: TableAnswerEngine, query: str, k: int = 2) -> None:
    print(f'\n=== query: "{query}" ===')
    result = engine.search(query, k=k)
    if not result.answers:
        print("no answers")
        return
    for rank, answer in enumerate(result.answers, start=1):
        print(f"\nanswer #{rank} (score {answer.score:.4f}, "
              f"{answer.num_subtrees} rows)")
        print(answer.to_table(engine.graph).to_ascii(max_rows=8))


def main() -> None:
    engine = TableAnswerEngine.from_knowledge_base(build_movie_kb(), d=3)
    print(f"graph: {engine.graph}")
    show(engine, "mel gibson movie")
    show(engine, "braveheart starring person")
    show(engine, "thriller movie director year", k=1)


if __name__ == "__main__":
    main()
