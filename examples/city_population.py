"""City tables: the intro's "Washington cities population" scenario.

A user asking for "washington cities population" wants a *table* of cities
in Washington with their populations — not a ranked list of individual
subtrees.  This example builds a small geographic knowledge base and shows
the tree pattern the engine composes for it, plus how a second state's
cities land in a different (correctly separated) table.

Run:  python examples/city_population.py
"""

from repro.kg.entity import EntityRef, TextValue
from repro.kg.knowledge_base import KnowledgeBase
from repro.search.engine import TableAnswerEngine

CITIES = [
    # city, state, population
    ("Seattle", "Washington", "737,015"),
    ("Spokane", "Washington", "228,989"),
    ("Tacoma", "Washington", "219,346"),
    ("Bellevue", "Washington", "151,854"),
    ("Portland", "Oregon", "652,503"),
    ("Eugene", "Oregon", "176,654"),
]

UNIVERSITIES = [
    # university, city, enrollment
    ("University of Washington", "Seattle", "47,400"),
    ("Washington State University", "Spokane", "31,607"),
    ("University of Oregon", "Eugene", "23,202"),
]


def build_geo_kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    for state in {state for _city, state, _pop in CITIES}:
        kb.add_entity(state, "State")
    for city, state, population in CITIES:
        kb.add_entity(city, "City")
        kb.set_attribute(city, "State", EntityRef(state))
        kb.set_attribute(city, "Population", TextValue(population))
    for university, city, enrollment in UNIVERSITIES:
        kb.add_entity(university, "University")
        kb.set_attribute(university, "Located in", EntityRef(city))
        kb.set_attribute(university, "Enrollment", TextValue(enrollment))
    return kb


def main() -> None:
    engine = TableAnswerEngine.from_knowledge_base(build_geo_kb(), d=3)
    print(f"graph: {engine.graph}")

    for query in (
        "washington city population",
        "oregon city population",
        "washington university enrollment",
    ):
        print(f'\n=== query: "{query}" ===')
        result = engine.search(query, k=1)
        if not result.answers:
            print("no answers")
            continue
        answer = result.answers[0]
        print(f"top pattern ({answer.num_subtrees} rows, "
              f"score {answer.score:.4f}):")
        print(answer.pattern.format(engine.graph, result.query))
        print()
        print(answer.to_table(engine.graph).to_ascii())


if __name__ == "__main__":
    main()
