"""Sampling trade-off: LINEARENUM-TOPK's speed/precision dial (Section 4.2.2).

Generates a wiki-like knowledge graph, picks the workload's heaviest query
(most valid subtrees), and sweeps the sampling rate rho, printing execution
time, precision against the exact top-k, and the Theorem 5 pairwise error
bound for the top two patterns.

Run:  python examples/sampling_tradeoff.py
"""

import time

from repro.bench.experiments import precision_at_k
from repro.datasets.queries import WorkloadConfig, generate_workload
from repro.datasets.wiki import WikiConfig, generate_wiki_graph
from repro.index.builder import build_indexes
from repro.search.linear_enum import count_answers
from repro.search.linear_topk import linear_topk_search
from repro.theory.hoeffding import pairwise_error_bound

K = 20
RATES = (0.05, 0.1, 0.25, 0.5, 1.0)


def main() -> None:
    graph = generate_wiki_graph(
        WikiConfig(num_entities=1200, num_types=25, vocabulary_size=280, seed=5)
    )
    print(f"graph: {graph}")
    started = time.perf_counter()
    indexes = build_indexes(graph, d=3)
    print(f"index: {indexes.num_entries} entries "
          f"built in {time.perf_counter() - started:.1f}s")

    queries = generate_workload(
        indexes, WorkloadConfig(queries_per_size=4, max_keywords=4, seed=5)
    )
    query = max(queries, key=lambda q: count_answers(indexes, q)[1])
    patterns, subtrees = count_answers(indexes, query)
    print(f'\nheaviest query: "{" ".join(query)}" '
          f"({patterns} patterns, {subtrees} subtrees)")

    exact = linear_topk_search(indexes, query, k=K, keep_subtrees=False)
    exact_keys = exact.pattern_keys()
    if len(exact.scores()) >= 2:
        s1, s2 = exact.scores()[0], exact.scores()[1]
    else:
        s1 = s2 = None

    print(f"\n{'rho':>5}  {'time (ms)':>10}  {'precision':>9}  "
          f"{'Thm5 bound (top-2)':>18}")
    for rate in RATES:
        started = time.perf_counter()
        sampled = linear_topk_search(
            indexes,
            query,
            k=K,
            sampling_threshold=0,
            sampling_rate=rate,
            seed=7,
            keep_subtrees=False,
        )
        elapsed_ms = (time.perf_counter() - started) * 1000
        precision = precision_at_k(exact_keys, sampled.pattern_keys())
        if s1 is not None and s1 > s2:
            bound = f"{pairwise_error_bound(s1, s2, rate):.3f}"
        else:
            bound = "-"
        print(f"{rate:>5}  {elapsed_ms:>10.1f}  {precision:>9.2f}  {bound:>18}")

    print("\nrho = 1.0 is the exact algorithm (precision 1 by Theorem 4); "
          "smaller rho trades precision for speed, bounded by Theorem 5.")


if __name__ == "__main__":
    main()
