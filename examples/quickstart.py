"""Quickstart: the paper's running example, end to end.

Builds the Figure 1 knowledge base (SQL Server / Microsoft / Oracle /
book), indexes it, runs the paper's query "database software company
revenue", and prints the ranked table answers — the top one is exactly
Figure 3.

Run:  python examples/quickstart.py
"""

from repro.datasets.example import (
    EXAMPLE_NORMALIZER,
    EXAMPLE_QUERY,
    example_kb,
)
from repro.kg.builder import build_graph
from repro.kg.pagerank import uniform_scores
from repro.search.engine import TableAnswerEngine


def main() -> None:
    kb = example_kb()
    graph, _node_of_entity = build_graph(kb)
    print(f"knowledge graph: {graph}")

    # Paper-exact configuration: keep stopwords (the book title's six
    # tokens matter in Example 2.4) and uniform node importance.
    engine = TableAnswerEngine(
        graph,
        d=3,
        normalizer=EXAMPLE_NORMALIZER,
        pagerank_scores=uniform_scores(graph),
    )

    print(f'\nquery: "{EXAMPLE_QUERY}"\n')
    result = engine.search(EXAMPLE_QUERY, k=3)
    for rank, answer in enumerate(result.answers, start=1):
        print(f"--- answer #{rank}  score={answer.score:.4f} "
              f"rows={answer.num_subtrees} ---")
        print(answer.pattern.format(engine.graph, result.query))
        print()
        print(answer.to_table(engine.graph).to_ascii())
        print()

    print("search statistics:", result.stats.format())


if __name__ == "__main__":
    main()
