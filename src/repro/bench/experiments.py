"""Experiment runners: one function per table/figure of Section 5.

Every ``exp_*`` function regenerates the rows/series of one paper artifact
at laptop scale and returns an :class:`ExperimentResult`.  ``run_all`` in
:mod:`repro.bench.run_all` executes the lot and renders EXPERIMENTS.md.

Scale note: datasets are ~100x smaller than the paper's (see
DESIGN.md "Substitutions"), so sampling-parameter grids (Λ) are shifted
down accordingly; each experiment records its grid in the result notes.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench import harness
from repro.bench.reporting import (
    ExperimentResult,
    decade_group,
    geometric_mean,
    summarize_ms,
)
from repro.datasets.case_study import xbox_case_study_graph
from repro.datasets.wiki import WikiConfig, generate_wiki_graph
from repro.index.builder import build_indexes
from repro.index.stats import index_statistics
from repro.search.individual import coverage_metrics, individual_topk
from repro.search.linear_topk import linear_topk_search
from repro.search.pattern_enum import pattern_enum_search

DEFAULT_K = 100

#: Smaller graph for the d-sweep: path counts explode with d (that is the
#: point of Figure 6) and d=4 on the full bench graph is disproportionate.
FIG6_WIKI = WikiConfig(
    num_entities=600, num_types=20, num_attrs=30, vocabulary_size=200, seed=17
)


def exp_fig6(d_values: Sequence[int] = (2, 3, 4)) -> ExperimentResult:
    """Figure 6: index construction time and size for d = 2, 3, 4."""
    result = ExperimentResult(
        "fig6",
        "Index construction cost vs height threshold d (wiki-like)",
        ["d", "build (s)", "entries", "sum|p|", "est. MB", "patterns"],
    )
    graph = generate_wiki_graph(FIG6_WIKI)
    for d in d_values:
        indexes = build_indexes(graph, d=d)
        stats = index_statistics(indexes)
        result.add_row(
            d,
            round(stats.build_seconds, 3),
            stats.num_entries,
            stats.total_path_nodes,
            round(stats.estimated_bytes / 1e6, 1),
            stats.num_patterns,
        )
    result.note(
        "Paper: 229 MB / 43 s (d=2) -> 34 GB / 7011 s (d=4) on 1.89M "
        "entities; expected shape = super-linear growth in d."
    )
    return result


def _grouped_times(
    indexes,
    profiles: Sequence[harness.QueryProfile],
    group_of,
    k: int = DEFAULT_K,
) -> Dict[int, harness.GroupedTimes]:
    groups: Dict[int, harness.GroupedTimes] = {}
    for profile in profiles:
        group = group_of(profile)
        bucket = groups.get(group)
        if bucket is None:
            bucket = groups[group] = harness.GroupedTimes(str(group))
        for name, algorithm in harness.ALGORITHMS.items():
            seconds, _result = harness.time_run(
                algorithm, indexes, profile.query, k=k
            )
            bucket.add(name, seconds)
    return groups


def _emit_grouped(
    result: ExperimentResult,
    prefix: Tuple,
    groups: Dict[int, harness.GroupedTimes],
) -> None:
    for group in sorted(groups):
        bucket = groups[group]
        count = len(next(iter(bucket.times.values())))
        result.add_row(
            *prefix,
            group,
            count,
            *(
                summarize_ms(bucket.times.get(name, []))
                for name in harness.ALGORITHMS
            ),
        )


def exp_fig7(d_values: Sequence[int] = (2, 3)) -> ExperimentResult:
    """Figure 7: execution time vs number of tree patterns on Wiki.

    The paper sweeps d = 2, 3, 4; d = 4 at bench scale multiplies runtimes
    without changing the ordering, so the default grid stops at 3 (pass
    ``d_values=(2, 3, 4)`` to run it all).
    """
    result = ExperimentResult(
        "fig7",
        "Execution time vs #tree patterns, per d (wiki-like)",
        ["d", "#patterns<", "queries"]
        + [f"{name} ms min/geo/max" for name in harness.ALGORITHMS],
    )
    for d in d_values:
        indexes = harness.wiki_indexes(d=d)
        queries = harness.workload(indexes)
        profiles = harness.profile_workload(indexes, queries)
        groups = _grouped_times(
            indexes, profiles, lambda p: decade_group(p.num_patterns)
        )
        _emit_grouped(result, (d,), groups)
    result.note(
        "Paper shape: time grows with #patterns; PETopK fastest on "
        "average, LETopK <= Baseline."
    )
    return result


def exp_fig8() -> ExperimentResult:
    """Figure 8: execution time vs number of tree patterns on IMDB (d=3)."""
    result = ExperimentResult(
        "fig8",
        "Execution time vs #tree patterns (imdb-like, d=3)",
        ["#patterns<", "queries"]
        + [f"{name} ms min/geo/max" for name in harness.ALGORITHMS],
    )
    indexes = harness.imdb_indexes(d=3)
    queries = harness.workload(indexes)
    profiles = harness.profile_workload(indexes, queries)
    groups = _grouped_times(
        indexes, profiles, lambda p: decade_group(p.num_patterns)
    )
    _emit_grouped(result, (), groups)
    result.note("IMDB paths are <= 3 nodes, so d=3 enumerates everything.")
    return result


def exp_fig9() -> ExperimentResult:
    """Figure 9: execution time vs number of valid subtrees (both datasets)."""
    result = ExperimentResult(
        "fig9",
        "Execution time vs #valid subtrees",
        ["dataset", "#subtrees<", "queries"]
        + [f"{name} ms min/geo/max" for name in harness.ALGORITHMS],
    )
    for label, indexes in (
        ("wiki", harness.wiki_indexes(d=3)),
        ("imdb", harness.imdb_indexes(d=3)),
    ):
        queries = harness.workload(indexes)
        profiles = harness.profile_workload(indexes, queries)
        groups = _grouped_times(
            indexes, profiles, lambda p: decade_group(p.num_subtrees)
        )
        _emit_grouped(result, (label,), groups)
    result.note(
        "Theorem 3: LETopK's time is linear in #subtrees; Baseline and "
        "LETopK are bound by dictionary building."
    )
    return result


def exp_fig10(
    fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0)
) -> ExperimentResult:
    """Figure 10 (Exp-III): scalability in the number of entities."""
    result = ExperimentResult(
        "fig10",
        "Execution time vs knowledge-graph size (induced subgraphs)",
        ["entities %", "nodes", "edges"]
        + [f"{name} geo ms" for name in harness.ALGORITHMS],
    )
    full = harness.wiki_indexes(d=3)
    queries = harness.workload(full)
    import random as _random

    rng = _random.Random(99)
    node_order = list(full.graph.nodes())
    rng.shuffle(node_order)
    for fraction in fractions:
        if fraction >= 1.0:
            indexes = full
        else:
            keep = node_order[: int(len(node_order) * fraction)]
            subgraph = full.graph.induced_subgraph(keep)
            indexes = build_indexes(subgraph, d=3)
        per_algorithm: Dict[str, List[float]] = {}
        for query in queries:
            for name, algorithm in harness.ALGORITHMS.items():
                seconds, _result = harness.time_run(
                    algorithm, indexes, query, k=DEFAULT_K
                )
                per_algorithm.setdefault(name, []).append(seconds)
        result.add_row(
            int(fraction * 100),
            indexes.graph.num_nodes,
            indexes.graph.num_edges,
            *(
                round(geometric_mean(per_algorithm[name]) * 1000, 2)
                for name in harness.ALGORITHMS
            ),
        )
    result.note(
        "Paper shape: roughly linear growth from 10% to 100% of entities."
    )
    return result


def exp_vary_k(
    k_values: Sequence[int] = (10, 25, 50, 75, 100)
) -> ExperimentResult:
    """Exp-IV: the effect of k on execution time (negligible)."""
    result = ExperimentResult(
        "exp4",
        "Execution time vs k (should be flat)",
        ["k"] + [f"{name} geo ms" for name in harness.ALGORITHMS],
    )
    indexes = harness.wiki_indexes(d=3)
    queries = harness.workload(indexes)[:20]
    for k in k_values:
        per_algorithm: Dict[str, List[float]] = {}
        for query in queries:
            for name, algorithm in harness.ALGORITHMS.items():
                seconds, _result = harness.time_run(
                    algorithm, indexes, query, k=k
                )
                per_algorithm.setdefault(name, []).append(seconds)
        result.add_row(
            k,
            *(
                round(geometric_mean(per_algorithm[name]) * 1000, 2)
                for name in harness.ALGORITHMS
            ),
        )
    result.note(
        "Paper: inserting into the size-k queue costs O(log k); finding a "
        "pattern costs far more, so k has very little impact."
    )
    return result


def precision_at_k(exact_keys: Sequence, approx_keys: Sequence) -> float:
    """|approx top-k ∩ exact top-k| / |exact top-k| (paper's precision)."""
    if not exact_keys:
        return 1.0
    exact = set(exact_keys)
    return len(exact & set(approx_keys)) / len(exact)


def precision_by_score(
    exact_scores: Sequence[float],
    approx_scores: Sequence[float],
    tolerance: float = 1e-9,
) -> float:
    """Fraction of approx answers that are "truly top-k" by score.

    The paper defines precision as "the ratio between the number of truly
    top-k answers found ... and k"; under score ties any pattern scoring at
    least the exact k-th score is a truly-top-k answer, which this variant
    counts (the sampled answers carry exact scores after Algorithm 4's
    re-scoring step, so the comparison is exact-vs-exact).
    """
    if not exact_scores:
        return 1.0
    threshold = exact_scores[-1] - tolerance
    hits = sum(1 for score in approx_scores if score >= threshold)
    return min(1.0, hits / len(exact_scores))


def _sampling_indexes():
    """Build (cached) the Figure 11/12 dataset; returns (indexes, profiles)."""
    from repro.datasets.sampling_stress import sampling_stress_graph

    key = "sampling-stress"
    if key not in harness._CACHE:
        graph, queries = sampling_stress_graph()
        indexes = build_indexes(graph, d=2)
        profiles = harness.profile_workload(
            indexes, [tuple(q.split()) for q in queries]
        )
        harness._CACHE[key] = (indexes, profiles)
    return harness._CACHE[key]


def _sampling_rows(
    indexes,
    profiles: Sequence[harness.QueryProfile],
    thresholds: Sequence[float],
    rates: Sequence[float],
    k: int,
    result: ExperimentResult,
    sweep: str,
) -> None:
    for profile in profiles:
        exact = linear_topk_search(
            indexes, profile.query, k=k, keep_subtrees=False
        )
        exact_scores = exact.scores()
        petopk_seconds, _ = harness.time_run(
            pattern_enum_search, indexes, profile.query, k=k
        )
        for threshold in thresholds:
            for rate in rates:
                seconds, sampled = harness.time_run(
                    linear_topk_search,
                    indexes,
                    profile.query,
                    k=k,
                    sampling_threshold=threshold,
                    sampling_rate=rate,
                    seed=1,
                )
                label = (
                    f"Λ={threshold:g}" if sweep == "threshold" else f"ρ={rate}"
                )
                result.add_row(
                    f"{profile.num_subtrees}",
                    label,
                    rate if sweep == "threshold" else f"{threshold:g}",
                    round(seconds * 1000, 1),
                    round(petopk_seconds * 1000, 1),
                    round(
                        precision_by_score(exact_scores, sampled.scores()), 3
                    ),
                )


def exp_fig11(
    thresholds: Sequence[float] = (1e2, 1e3, 1e4, 1e5),
    rates: Sequence[float] = (0.1, 0.3),
    k: int = 20,
) -> ExperimentResult:
    """Figure 11 (Exp-V): LETopK vs sampling threshold Λ."""
    result = ExperimentResult(
        "fig11",
        "LETopK sampling-threshold sweep (sampling-stress dataset)",
        ["query #subtrees", "Λ", "ρ", "LETopK ms", "PETopK ms", "precision"],
    )
    indexes, profiles = _sampling_indexes()
    _sampling_rows(indexes, profiles, thresholds, rates, k, result, "threshold")
    result.note(
        "Paper grid Λ=1e2..1e7 on 2.5M-subtree queries; grid shifted to "
        "bench scale.  Shape: time and precision rise with Λ."
    )
    return result


def exp_fig12(
    rates: Sequence[float] = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
    threshold: float = 1e3,
    k: int = 20,
) -> ExperimentResult:
    """Figure 12 (Exp-VI): LETopK vs sampling rate ρ."""
    result = ExperimentResult(
        "fig12",
        f"LETopK sampling-rate sweep (Λ={threshold:g}, sampling-stress dataset)",
        ["query #subtrees", "ρ", "Λ", "LETopK ms", "PETopK ms", "precision"],
    )
    indexes, profiles = _sampling_indexes()
    _sampling_rows(indexes, profiles, [threshold], rates, k, result, "rate")
    result.note(
        "Paper shape: time ~linear in ρ; precision above ~0.8 for moderate "
        "ρ on subtree-heavy queries; ρ=1 gives precision 1."
    )
    return result


def exp_fig13(k_values: Sequence[int] = (10, 20, 30, 40, 50)) -> ExperimentResult:
    """Figure 13: individual top-k vs top-k tree patterns."""
    result = ExperimentResult(
        "fig13",
        "Coverage of individual top-k in top-k patterns / new patterns",
        ["k", "queries", "avg coverage %", "avg new patterns %"],
    )
    indexes = harness.wiki_indexes(d=3)
    queries = harness.workload(indexes)
    for k in k_values:
        coverages: List[float] = []
        new_fractions: List[float] = []
        for query in queries:
            individual = individual_topk(indexes, query, k=k)
            if not individual.ranked:
                continue
            patterns = pattern_enum_search(
                indexes, query, k=k, keep_subtrees=True
            )
            metrics = coverage_metrics(individual, patterns)
            coverages.append(metrics.coverage)
            new_fractions.append(metrics.new_pattern_fraction)
        result.add_row(
            k,
            len(coverages),
            round(100 * sum(coverages) / max(len(coverages), 1), 1),
            round(100 * sum(new_fractions) / max(len(new_fractions), 1), 1),
        )
    result.note(
        "Paper: ~42-50% coverage; 30-70% of top-k patterns are new "
        "(invisible in the individual top-k)."
    )
    return result


def exp_fig16() -> ExperimentResult:
    """Figure 16 (Exp-A-I): execution time vs number of keywords."""
    result = ExperimentResult(
        "fig16",
        "Execution time vs #keywords (wiki-like)",
        ["#keywords", "queries"]
        + [f"{name} ms min/geo/max" for name in harness.ALGORITHMS],
    )
    indexes = harness.wiki_indexes(d=3)
    queries = harness.workload(indexes)
    by_size: Dict[int, List[Tuple[str, ...]]] = {}
    for query in queries:
        by_size.setdefault(len(query), []).append(query)
    for size in sorted(by_size):
        times: Dict[str, List[float]] = {}
        for query in by_size[size]:
            for name, algorithm in harness.ALGORITHMS.items():
                seconds, _result = harness.time_run(
                    algorithm, indexes, query, k=DEFAULT_K
                )
                times.setdefault(name, []).append(seconds)
        result.add_row(
            size,
            len(by_size[size]),
            *(summarize_ms(times[name]) for name in harness.ALGORITHMS),
        )
    result.note(
        "Paper finding: performance does not deteriorate with more "
        "keywords (the bottleneck is the number of valid subtrees)."
    )
    return result


def exp_case_study() -> ExperimentResult:
    """Figures 14-15: 'XBox Game' — individual subtrees vs top pattern."""
    result = ExperimentResult(
        "fig14_15",
        'Case study: query "XBox Game"',
        ["rank", "kind", "answer"],
    )
    from repro.datasets.case_study import CASE_STUDY_D

    graph, query = xbox_case_study_graph()
    indexes = build_indexes(graph, d=CASE_STUDY_D)
    individual = individual_topk(indexes, query, k=3)
    for rank, (score, key, combo) in enumerate(individual.ranked, start=1):
        from repro.search.result import pattern_from_key

        pattern = pattern_from_key(indexes, key)
        cells = " / ".join(
            graph.node_text(entry.nodes[-1]) for entry in combo
        )
        result.add_row(
            rank,
            "individual",
            f"{pattern.format(graph, query.split())} -> {cells} "
            f"(score {score:.4f})",
        )
    patterns = pattern_enum_search(indexes, query, k=1, keep_subtrees=True)
    top = patterns.answers[0]
    table = top.to_table(graph)
    result.add_row(
        1,
        "pattern",
        f"{top.num_subtrees} rows: "
        + "; ".join(" | ".join(row) for row in table.rows[:4]),
    )
    result.note(
        "Paper: individual top-1 = popular 'Xbox' entity; top-1 pattern = "
        "the table of Xbox games (Figure 15)."
    )
    return result


ALL_EXPERIMENTS = {
    "fig6": exp_fig6,
    "fig7": exp_fig7,
    "fig8": exp_fig8,
    "fig9": exp_fig9,
    "fig10": exp_fig10,
    "exp4": exp_vary_k,
    "fig11": exp_fig11,
    "fig12": exp_fig12,
    "fig13": exp_fig13,
    "fig14_15": exp_case_study,
    "fig16": exp_fig16,
}


def run_experiments(
    names: Optional[Sequence[str]] = None,
) -> List[ExperimentResult]:
    """Run the named experiments (all by default), returning their results."""
    chosen = list(ALL_EXPERIMENTS) if names is None else list(names)
    results = []
    for name in chosen:
        runner = ALL_EXPERIMENTS.get(name)
        if runner is None:
            raise KeyError(
                f"unknown experiment {name!r}; choose from "
                f"{sorted(ALL_EXPERIMENTS)}"
            )
        started = time.perf_counter()
        result = runner()
        result.note(f"experiment wall time: {time.perf_counter() - started:.1f}s")
        results.append(result)
    return results
