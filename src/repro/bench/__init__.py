"""Experiment harness reproducing every table and figure of Section 5."""

from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    exp_case_study,
    exp_fig6,
    exp_fig7,
    exp_fig8,
    exp_fig9,
    exp_fig10,
    exp_fig11,
    exp_fig12,
    exp_fig13,
    exp_fig16,
    exp_vary_k,
    precision_at_k,
    run_experiments,
)
from repro.bench.reporting import (
    ExperimentResult,
    decade_group,
    geometric_mean,
    summarize_ms,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "decade_group",
    "exp_case_study",
    "exp_fig6",
    "exp_fig7",
    "exp_fig8",
    "exp_fig9",
    "exp_fig10",
    "exp_fig11",
    "exp_fig12",
    "exp_fig13",
    "exp_fig16",
    "exp_vary_k",
    "geometric_mean",
    "precision_at_k",
    "run_experiments",
    "summarize_ms",
]
