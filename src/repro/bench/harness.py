"""Shared machinery for the experiment runners.

Builds and caches the benchmark datasets (wiki-like, IMDB-like) at the
scales used by the Section 5 reproductions, generates their query
workloads, and times algorithm runs uniformly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.datasets.imdb import ImdbConfig, generate_imdb_graph
from repro.datasets.queries import WorkloadConfig, generate_workload
from repro.datasets.wiki import WikiConfig, generate_wiki_graph
from repro.index.builder import PathIndexes, build_indexes
from repro.search.baseline import baseline_search
from repro.search.linear_topk import linear_topk_search
from repro.search.pattern_enum import pattern_enum_search
from repro.search.result import SearchResult

#: Benchmark-scale dataset configurations.  ~100x smaller than the paper's
#: datasets (pure Python vs C# on server hardware); all comparisons are
#: within-implementation so relative behaviour is what matters.
BENCH_WIKI = WikiConfig(
    num_entities=1500,
    num_types=30,
    num_attrs=45,
    vocabulary_size=320,
    seed=17,
)
BENCH_IMDB = ImdbConfig(num_movies=500, num_people=650, seed=17)
BENCH_WORKLOAD = WorkloadConfig(
    queries_per_size=5, min_keywords=1, max_keywords=10, seed=17
)

#: The three competitors of Section 5, keyed by the paper's labels.
#: LETopK runs exact here (sampling experiments configure it separately).
ALGORITHMS: Dict[str, Callable[..., SearchResult]] = {
    "Baseline": baseline_search,
    "LETopK": linear_topk_search,
    "PETopK": pattern_enum_search,
}

_CACHE: Dict[object, object] = {}


def wiki_indexes(d: int = 3, config: WikiConfig = BENCH_WIKI) -> PathIndexes:
    """Bench wiki indexes, cached per (config, d)."""
    key = ("wiki", config.seed, config.num_entities, d)
    if key not in _CACHE:
        graph_key = ("wiki-graph", config.seed, config.num_entities)
        if graph_key not in _CACHE:
            _CACHE[graph_key] = generate_wiki_graph(config)
        _CACHE[key] = build_indexes(_CACHE[graph_key], d=d)
    return _CACHE[key]


def imdb_indexes(d: int = 3, config: ImdbConfig = BENCH_IMDB) -> PathIndexes:
    """Bench IMDB indexes, cached per (config, d)."""
    key = ("imdb", config.seed, config.num_movies, d)
    if key not in _CACHE:
        graph_key = ("imdb-graph", config.seed, config.num_movies)
        if graph_key not in _CACHE:
            _CACHE[graph_key] = generate_imdb_graph(config)
        _CACHE[key] = build_indexes(_CACHE[graph_key], d=d)
    return _CACHE[key]


def workload(
    indexes: PathIndexes, config: WorkloadConfig = BENCH_WORKLOAD
) -> List[Tuple[str, ...]]:
    """Query workload for an index bundle, cached."""
    key = ("workload", id(indexes), config.seed, config.queries_per_size,
           config.min_keywords, config.max_keywords)
    if key not in _CACHE:
        _CACHE[key] = generate_workload(indexes, config)
    return _CACHE[key]


def clear_cache() -> None:
    """Drop all cached datasets (tests use this to bound memory)."""
    _CACHE.clear()


def time_run(
    algorithm: Callable[..., SearchResult],
    indexes: PathIndexes,
    query,
    k: int = 100,
    **params,
) -> Tuple[float, SearchResult]:
    """(wall seconds, result) for one query run.

    Subtree materialization is disabled — the experiments measure search
    time, and the paper's engines also only keep the k retained patterns.
    """
    params.setdefault("keep_subtrees", False)
    started = time.perf_counter()
    result = algorithm(indexes, query, k=k, **params)
    return time.perf_counter() - started, result


@dataclass
class QueryProfile:
    """A query annotated with its answer totals (for the paper's groupings)."""

    query: Tuple[str, ...]
    num_patterns: int
    num_subtrees: int


def profile_workload(
    indexes: PathIndexes, queries: List[Tuple[str, ...]]
) -> List[QueryProfile]:
    """Annotate queries with their total pattern/subtree counts.

    Full enumerations are expensive on pattern-heavy queries, and several
    experiments group the same workload, so profiles are cached.
    """
    from repro.search.linear_enum import count_answers

    key = ("profiles", id(indexes), tuple(queries))
    if key in _CACHE:
        return _CACHE[key]
    profiles = []
    for query in queries:
        patterns, subtrees = count_answers(indexes, query)
        profiles.append(QueryProfile(query, patterns, subtrees))
    _CACHE[key] = profiles
    return profiles


@dataclass
class GroupedTimes:
    """Per-group, per-algorithm run times."""

    group_label: str
    times: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, algorithm: str, seconds: float) -> None:
        self.times.setdefault(algorithm, []).append(seconds)


def pick_query_by_subtrees(
    indexes: PathIndexes,
    queries: List[Tuple[str, ...]],
    low: int,
    high: Optional[int] = None,
) -> Optional[Tuple[str, ...]]:
    """First query whose total subtree count falls in [low, high).

    Falls back to any answerable query when nothing lands in the band
    (small seeds can miss a decade); returns None only if every query is
    empty.
    """
    from repro.search.linear_enum import count_answers

    fallback = None
    for query in queries:
        _patterns, subtrees = count_answers(indexes, query)
        if subtrees >= low and (high is None or subtrees < high):
            return query
        if subtrees >= 1 and fallback is None:
            fallback = query
    return fallback


def heavy_queries(
    indexes: PathIndexes,
    queries: List[Tuple[str, ...]],
    count: int = 3,
    minimum_subtrees: int = 1,
    minimum_ratio: float = 0.0,
) -> List[QueryProfile]:
    """The ``count`` queries with the most valid subtrees (Exp-V/VI use
    the three heaviest queries of the workload).

    ``minimum_ratio`` filters on subtrees-per-pattern.  Root sampling only
    pays off when a pattern's mass spreads over many subtrees/roots — the
    paper's Exp-V queries average ~8 subtrees per pattern — so the sampling
    experiments exclude near-singleton-pattern queries, for which sampling
    is the wrong tool (and which Λ exists to protect, per Section 4.2.2).
    """
    profiles = [
        profile
        for profile in profile_workload(indexes, queries)
        if profile.num_subtrees >= minimum_subtrees
        and profile.num_subtrees
        >= minimum_ratio * max(profile.num_patterns, 1)
    ]
    profiles.sort(key=lambda profile: -profile.num_subtrees)
    return profiles[:count]
