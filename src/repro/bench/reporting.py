"""Result tables for the experiment harness.

Each experiment produces an :class:`ExperimentResult` — an id tying it to
the paper's figure/table, column headers, data rows, and free-form notes —
renderable as fixed-width text (console) or markdown (EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class ExperimentResult:
    """One reproduced figure/table."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        self.rows.append([_fmt(cell) for cell in cells])

    def note(self, text: str) -> None:
        self.notes.append(text)

    def format(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

        out = [f"== {self.experiment_id}: {self.title} =="]
        out.append(line(self.headers))
        out.append(line(["-" * w for w in widths]))
        out.extend(line(row) for row in self.rows)
        for note in self.notes:
            out.append(f"   note: {note}")
        return "\n".join(out)

    def to_markdown(self) -> str:
        out = [f"### {self.experiment_id}: {self.title}", ""]
        out.append("| " + " | ".join(self.headers) + " |")
        out.append("| " + " | ".join("---" for _ in self.headers) + " |")
        for row in self.rows:
            out.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            out.append(f"\n*{note}*")
        return "\n".join(out)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the paper reports min / geo-average / max times)."""
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def summarize_ms(seconds: Sequence[float]) -> str:
    """'min/geo/max' milliseconds string for a group of query times."""
    if not seconds:
        return "-"
    ms = [s * 1000 for s in seconds]
    return f"{min(ms):.1f}/{geometric_mean(ms):.1f}/{max(ms):.1f}"


def decade_group(count: int) -> int:
    """The paper's grouping: "group 10^k contains queries with 10^(k-1) to
    10^k - 1 answers"; counts of 0 map to group 1."""
    if count <= 0:
        return 1
    group = 10
    while count >= group:
        group *= 10
    return group
