"""Run every experiment and render the results.

Usage::

    python -m repro.bench.run_all                # all experiments, stdout
    python -m repro.bench.run_all fig6 fig13     # a subset
    python -m repro.bench.run_all --markdown out.md

The markdown output is the measured half of EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.experiments import ALL_EXPERIMENTS, run_experiments


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's experiments at laptop scale."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"subset to run (default: all of {sorted(ALL_EXPERIMENTS)})",
    )
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        help="also write results as markdown to PATH",
    )
    args = parser.parse_args(argv)

    names = args.experiments or None
    results = run_experiments(names)
    for result in results:
        print(result.format())
        print()
    if args.markdown:
        with open(args.markdown, "w") as handle:
            for result in results:
                handle.write(result.to_markdown())
                handle.write("\n\n")
        print(f"markdown written to {args.markdown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
