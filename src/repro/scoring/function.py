"""The paper's class of scoring functions (Section 2.2.3).

A subtree's relevance is a weighted product of components::

    score(T, q) = score1(T, q)^z1 * score2(T, q)^z2 * score3(T, q)^z3

with the paper's defaults z1 = -1 (prefer small trees), z2 = 1 (prefer
important nodes), z3 = 1 (prefer close text matches).  A pattern's score
aggregates its subtrees' scores (sum by default, Equation 2).

The class is open: Section 2.2.3 notes the components "can also be replaced
by other functions and more can be inserted" — :class:`ScoringFunction`
accepts arbitrary extra component values via ``extra_weights``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.core.errors import ScoringError
from repro.scoring.aggregate import (
    COUNT,
    SUM,
    RunningAggregate,
    aggregate,
    estimate_from_sample,
    validate_aggregator,
)
from repro.scoring.components import PathComponents, SubtreeComponents


@dataclass(frozen=True)
class ScoringFunction:
    """Weights and aggregation defining one member of the scoring class.

    Parameters mirror the paper: ``z1``/``z2``/``z3`` are the exponents of
    the size/PageRank/similarity components; ``aggregator`` is how subtree
    scores combine into a pattern score.
    """

    z1: float = -1.0
    z2: float = 1.0
    z3: float = 1.0
    aggregator: str = SUM
    extra_weights: Tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        validate_aggregator(self.aggregator)

    def subtree_score(
        self,
        components: SubtreeComponents,
        extras: Sequence[float] = (),
    ) -> float:
        """score(T, q) for one valid subtree (Equation 3).

        Every component must be positive — sizes are >= 1 by construction,
        PageRank is strictly positive, and a matched keyword always has
        sim > 0 — so the power never divides by zero; a non-positive
        component signals an upstream bug and raises.
        """
        if len(extras) != len(self.extra_weights):
            raise ScoringError(
                f"expected {len(self.extra_weights)} extra components, "
                f"got {len(extras)}"
            )
        score = self._base_subtree_score(
            components.size, components.pr, components.sim
        )
        for value, weight in zip(extras, self.extra_weights):
            if weight == 0.0:
                continue
            if value <= 0.0:
                raise ScoringError(f"non-positive extra component {value!r}")
            score *= math.pow(value, weight)
        return score

    def _base_subtree_score(self, size: int, pr: float, sim: float) -> float:
        """Equation 3's power product over the three base components.

        The single source of the subtree-score arithmetic — both
        :meth:`subtree_score` (entry-based pipeline) and
        :meth:`subtree_score_terms` (id-based hot loop) delegate here, so
        the two pipelines' scores are bit-identical by construction.
        """
        score = 1.0
        for value, weight in (
            (size, self.z1),
            (pr, self.z2),
            (sim, self.z3),
        ):
            if weight == 0.0:
                continue
            if value <= 0.0:
                raise ScoringError(
                    f"non-positive score component {value!r}; components "
                    "must be positive (is a keyword unmatched?)"
                )
            score *= math.pow(value, weight)
        return score

    def subtree_score_terms(
        self, size: int, pr: float, sim: float
    ) -> float:
        """Hot-path :meth:`subtree_score` taking the component scalars.

        Skips the :class:`SubtreeComponents` allocation for the id-based
        enumeration loops.  Extra components are not supported here —
        configurations with ``extra_weights`` must go through
        :meth:`subtree_score`.
        """
        if self.extra_weights:
            raise ScoringError(
                f"expected {len(self.extra_weights)} extra components, "
                "got 0"
            )
        return self._base_subtree_score(size, pr, sim)

    def subtree_score_from_paths(
        self, parts: Sequence[PathComponents]
    ) -> float:
        """Subtree score straight from per-path components.

        This is the hot-path form used by the search algorithms: index
        entries carry :class:`PathComponents`, which are summed and scored
        without materializing the subtree.
        """
        size = 0
        pr = 0.0
        sim = 0.0
        for part in parts:
            size += part.size
            pr += part.pr
            sim += part.sim
        return self.subtree_score(SubtreeComponents(size, pr, sim))

    def pattern_score(self, tree_scores: Sequence[float]) -> float:
        """score(P, q): aggregate the pattern's subtree scores (Equation 2)."""
        return aggregate(self.aggregator, tree_scores)

    def pattern_estimate(
        self, sampled_tree_scores: Sequence[float], rate: float
    ) -> float:
        """s_hat(P, q): estimate from a rho-sampled subset of subtrees."""
        return estimate_from_sample(
            self.aggregator, sampled_tree_scores, rate
        )

    def running(self) -> RunningAggregate:
        """A streaming aggregator matching this function's aggregation."""
        return RunningAggregate(self.aggregator)


#: The configuration used throughout the paper's examples and experiments.
PAPER_DEFAULT = ScoringFunction()

#: Pattern relevance = number of supporting rows; useful for debugging and
#: for the "prefers patterns with more valid subtrees" discussions.
COUNT_TREES = ScoringFunction(z1=0.0, z2=0.0, z3=0.0, aggregator=COUNT)
