"""Per-path score components (Equations 4-6 of the paper).

For each keyword path ``T(w)`` three quantities feed the subtree score:

* ``size``  — |T(w)|, the number of nodes on the path (Equation 4);
* ``pr``    — PageRank of the matched node, or of the source node of a
  matched edge (Equation 5);
* ``sim``   — Jaccard similarity between the keyword and the text it
  matched (Equation 6).

These are precomputed at index-construction time and stored with every path
entry ("the terms ... can be precomputed and stored in the path index as
well, so that the overall score can be computed efficiently online" — §3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.subtree import MatchPath

#: Match kinds: where the keyword occurred.
NODE_TEXT = "node_text"
NODE_TYPE = "node_type"
EDGE_TYPE = "edge_type"


@dataclass(frozen=True)
class PathComponents:
    """The precomputed (size, pr, sim) triple of one keyword path."""

    size: int
    pr: float
    sim: float


def components_for_path(
    path: MatchPath,
    pagerank_scores: Sequence[float],
    sim: float,
) -> PathComponents:
    """Assemble components for a path whose match similarity is known."""
    return PathComponents(
        size=path.num_nodes,
        pr=pagerank_scores[path.match_node],
        sim=sim,
    )


def sum_components(parts: Sequence[PathComponents]) -> "SubtreeComponents":
    """Sum per-path components into per-subtree component totals.

    The paper's score1/2/3 are each sums over the query's keywords
    (Equations 4-6), so a subtree's raw components are the per-path sums.
    """
    size = 0
    pr = 0.0
    sim = 0.0
    for part in parts:
        size += part.size
        pr += part.pr
        sim += part.sim
    return SubtreeComponents(size=size, pr=pr, sim=sim)


@dataclass(frozen=True)
class SubtreeComponents:
    """Summed components of a whole valid subtree.

    ``size``  = score1(T, q) = sum_w |T(w)|
    ``pr``    = score2(T, q) = sum_w PR(f(w))
    ``sim``   = score3(T, q) = sum_w sim(w, f(w))
    """

    size: int
    pr: float
    sim: float

    def as_list(self) -> List[float]:
        return [float(self.size), self.pr, self.sim]
