"""Relevance scoring of subtrees and tree patterns (Section 2.2.3)."""

from repro.scoring.aggregate import (
    AGGREGATORS,
    AVG,
    COUNT,
    MAX,
    SUM,
    RunningAggregate,
    aggregate,
    estimate_from_sample,
)
from repro.scoring.components import (
    EDGE_TYPE,
    NODE_TEXT,
    NODE_TYPE,
    PathComponents,
    SubtreeComponents,
    components_for_path,
    sum_components,
)
from repro.scoring.function import COUNT_TREES, PAPER_DEFAULT, ScoringFunction

__all__ = [
    "AGGREGATORS",
    "AVG",
    "COUNT",
    "COUNT_TREES",
    "EDGE_TYPE",
    "MAX",
    "NODE_TEXT",
    "NODE_TYPE",
    "PAPER_DEFAULT",
    "PathComponents",
    "RunningAggregate",
    "ScoringFunction",
    "SubtreeComponents",
    "SUM",
    "aggregate",
    "components_for_path",
    "estimate_from_sample",
    "sum_components",
]
