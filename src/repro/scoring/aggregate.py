"""Aggregation of subtree scores into pattern scores (Equation 2).

The paper defines the relevance of a tree pattern as an aggregation of the
relevance scores of its valid subtrees — "sum, average, and max of scores,
or count of trees" — defaulting to sum.  All four are implemented, plus
unbiased sample-based estimation for the sampling algorithm (Section 4.2.2,
where only a rho-fraction of candidate roots is expanded).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.errors import ScoringError

SUM = "sum"
AVG = "avg"
MAX = "max"
COUNT = "count"

AGGREGATORS = (SUM, AVG, MAX, COUNT)


def validate_aggregator(name: str) -> str:
    if name not in AGGREGATORS:
        raise ScoringError(
            f"unknown aggregator {name!r}; expected one of {AGGREGATORS}"
        )
    return name


def aggregate(name: str, tree_scores: Iterable[float]) -> float:
    """Aggregate exact subtree scores into a pattern score.

    An empty score list is an error: empty tree patterns are never answers.
    """
    scores: List[float] = list(tree_scores)
    if not scores:
        raise ScoringError("cannot aggregate an empty set of subtree scores")
    if name == SUM:
        return sum(scores)
    if name == AVG:
        return sum(scores) / len(scores)
    if name == MAX:
        return max(scores)
    if name == COUNT:
        return float(len(scores))
    raise ScoringError(f"unknown aggregator {name!r}")


def estimate_from_sample(
    name: str, sample_scores: Iterable[float], rate: float
) -> float:
    """Estimate the pattern score from a rho-sample of subtree scores.

    For ``sum`` and ``count`` the Horvitz-Thompson estimator (sample value
    divided by the inclusion probability ``rate``) is unbiased — this is the
    ``s_hat`` of Theorem 5.  For ``avg`` the plain sample mean is used; for
    ``max`` the sample max (a lower bound).
    """
    if not 0.0 < rate <= 1.0:
        raise ScoringError(f"sampling rate must be in (0, 1], got {rate}")
    scores = list(sample_scores)
    if not scores:
        return 0.0
    if name == SUM:
        return sum(scores) / rate
    if name == COUNT:
        return len(scores) / rate
    if name == AVG:
        return sum(scores) / len(scores)
    if name == MAX:
        return max(scores)
    raise ScoringError(f"unknown aggregator {name!r}")


class RunningAggregate:
    """Streaming aggregator used while subtrees are enumerated.

    Avoids materializing per-pattern score lists when only the aggregate is
    needed (the dictionaries in Algorithms 3-4 can hold millions of trees).
    """

    __slots__ = ("name", "total", "count", "best")

    def __init__(self, name: str) -> None:
        self.name = validate_aggregator(name)
        self.total = 0.0
        self.count = 0
        self.best = float("-inf")

    def add(self, score: float) -> None:
        self.total += score
        self.count += 1
        if score > self.best:
            self.best = score

    def merge(self, other: "RunningAggregate") -> None:
        if other.name != self.name:
            raise ScoringError(
                f"cannot merge {other.name!r} into {self.name!r} aggregate"
            )
        self.total += other.total
        self.count += other.count
        if other.best > self.best:
            self.best = other.best

    def value(self) -> float:
        if self.count == 0:
            raise ScoringError("no scores were added")
        if self.name == SUM:
            return self.total
        if self.name == AVG:
            return self.total / self.count
        if self.name == MAX:
            return self.best
        return float(self.count)

    def estimate(self, rate: float) -> float:
        """Sample-scaled value (see :func:`estimate_from_sample`)."""
        if self.count == 0:
            return 0.0
        if self.name == SUM:
            return self.total / rate
        if self.name == COUNT:
            return self.count / rate
        if self.name == AVG:
            return self.total / self.count
        return self.best
