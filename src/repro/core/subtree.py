"""Valid subtrees and their construction from per-keyword paths (§2.2.1).

A valid subtree ``(T, f)`` for query ``q`` is a rooted subtree of the
knowledge graph together with a mapping from each keyword to the node or
edge where it occurs, such that the tree is minimal (every leaf carries a
keyword).  In the index-based algorithms a valid subtree is assembled from
one :class:`MatchPath` per keyword, all sharing the same root; this module
also performs the tree-validity check that the paper leaves implicit (two
paths must not give one node two different parent edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.core.errors import GraphError
from repro.core.pattern import PathPattern, TreePattern
from repro.core.types import AttrId, NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.kg.graph import KnowledgeGraph


@dataclass(frozen=True)
class MatchPath:
    """One root-to-keyword path of a valid subtree.

    ``nodes`` lists the node ids from the root down; ``attrs`` lists the
    attribute ids of the connecting edges (``len(attrs) == len(nodes) - 1``).

    For **edge matches** (keyword occurs in an attribute type), the matched
    edge is ``attrs[-1]`` and ``nodes[-1]`` is its target — which belongs to
    the subtree, consistent with Example 2.4 counting it in |T(w)|.  For
    **node matches**, the keyword occurs in the text or type of
    ``nodes[-1]``.
    """

    nodes: Tuple[NodeId, ...]
    attrs: Tuple[AttrId, ...]
    matched_on_edge: bool

    def __post_init__(self) -> None:
        if not self.nodes:
            raise GraphError("a match path needs at least one node")
        if len(self.attrs) != len(self.nodes) - 1:
            raise GraphError(
                f"path with {len(self.nodes)} nodes needs "
                f"{len(self.nodes) - 1} edges, got {len(self.attrs)}"
            )
        if self.matched_on_edge and len(self.nodes) < 2:
            raise GraphError("an edge-matched path needs at least one edge")

    @property
    def root(self) -> NodeId:
        return self.nodes[0]

    @property
    def num_nodes(self) -> int:
        """|T(w)|: number of nodes on the path (edge target included)."""
        return len(self.nodes)

    @property
    def match_node(self) -> NodeId:
        """The node whose PageRank scores this keyword (Equation 5).

        For node matches, the matched node itself; for edge matches, the
        node carrying the out-going matched edge.
        """
        if self.matched_on_edge:
            return self.nodes[-2]
        return self.nodes[-1]

    @property
    def end_node(self) -> NodeId:
        """Deepest node on the path (the leaf this path contributes)."""
        return self.nodes[-1]

    def edge_triples(self) -> Iterable[Tuple[NodeId, AttrId, NodeId]]:
        """Yield ``(parent, attr, child)`` for every edge on the path."""
        for i, attr in enumerate(self.attrs):
            yield self.nodes[i], attr, self.nodes[i + 1]

    def pattern(self, graph: "KnowledgeGraph") -> PathPattern:
        """Derive this path's :class:`PathPattern` from node/edge types."""
        labels = []
        if self.matched_on_edge:
            for i, attr in enumerate(self.attrs):
                labels.append(graph.node_type(self.nodes[i]))
                labels.append(attr)
        else:
            for i, attr in enumerate(self.attrs):
                labels.append(graph.node_type(self.nodes[i]))
                labels.append(attr)
            labels.append(graph.node_type(self.nodes[-1]))
        return PathPattern(tuple(labels), ends_at_edge=self.matched_on_edge)


@dataclass(frozen=True)
class ValidSubtree:
    """A valid subtree: one :class:`MatchPath` per query keyword.

    Two valid subtrees with the same node/edge set but different keyword
    mappings are distinct answers — the paper's ``(T, f)`` pairs — and both
    are enumerated by the algorithms (they may even belong to different
    tree patterns).
    """

    paths: Tuple[MatchPath, ...]

    def __post_init__(self) -> None:
        if not self.paths:
            raise GraphError("a valid subtree needs at least one path")
        root = self.paths[0].root
        for path in self.paths[1:]:
            if path.root != root:
                raise GraphError(
                    f"paths do not share a root ({root} vs {path.root})"
                )

    @property
    def root(self) -> NodeId:
        return self.paths[0].root

    @property
    def num_keywords(self) -> int:
        return len(self.paths)

    def node_set(self) -> FrozenSet[NodeId]:
        """All distinct nodes of the subtree."""
        nodes: Set[NodeId] = set()
        for path in self.paths:
            nodes.update(path.nodes)
        return frozenset(nodes)

    def edge_set(self) -> FrozenSet[Tuple[NodeId, AttrId, NodeId]]:
        """All distinct ``(parent, attr, child)`` edges of the subtree."""
        edges: Set[Tuple[NodeId, AttrId, NodeId]] = set()
        for path in self.paths:
            edges.update(path.edge_triples())
        return frozenset(edges)

    def pattern(self, graph: "KnowledgeGraph") -> TreePattern:
        """The tree pattern of this subtree (linear in tree size)."""
        return TreePattern(tuple(path.pattern(graph) for path in self.paths))

    def height(self) -> int:
        """Max path size in nodes; equals the pattern's height."""
        return max(path.num_nodes for path in self.paths)

    def is_minimal(self) -> bool:
        """Check condition iii): every leaf hosts a keyword.

        True by construction for path unions (every leaf is the endpoint of
        some maximal keyword path); exposed for tests and for subtrees built
        by other means.
        """
        children: Dict[NodeId, Set[NodeId]] = {}
        for parent, _attr, child in self.edge_set():
            children.setdefault(parent, set()).add(child)
        leaf_hosts = set()
        for path in self.paths:
            leaf_hosts.add(path.end_node)
        for node in self.node_set():
            if not children.get(node) and node not in leaf_hosts:
                return False
        return True


def combine_paths(paths: Iterable[MatchPath]) -> Optional[ValidSubtree]:
    """Join per-keyword paths at their shared root into a valid subtree.

    Returns ``None`` when the union of the paths is not a tree: some node
    would be reached through two different parent edges (the paper's
    Algorithms 2 and 3 implicitly assume this never happens; on cyclic or
    diamond-shaped graphs it can).  Also returns ``None`` when roots differ,
    so callers can pass path combinations straight from index lookups.
    """
    paths = tuple(paths)
    if not paths:
        return None
    root = paths[0].nodes[0]
    parent: Dict[NodeId, Tuple[NodeId, AttrId]] = {}
    for path in paths:
        if path.nodes[0] != root:
            return None
        for u, attr, v in path.edge_triples():
            if v == root:
                return None  # edge back into the root: not a tree
            existing = parent.get(v)
            if existing is None:
                parent[v] = (u, attr)
            elif existing != (u, attr):
                return None  # two distinct parent edges for one node
    return ValidSubtree(paths)
