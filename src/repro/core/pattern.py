"""Path patterns and tree patterns (Section 2.2.2 of the paper).

A **path pattern** is the concatenation of node/edge types along a
root-to-keyword path.  When the keyword matched a node, the pattern ends at
that node's type; when it matched an edge (attribute), the pattern ends at
the attribute type::

    pattern(T(w)) = tau(v1) alpha(e1) tau(v2) ... tau(vl)        (node match)
    pattern(T(w)) = tau(v1) alpha(e1) tau(v2) ... alpha(el)      (edge match)

A **tree pattern** for an m-keyword query is the vector of the m path
patterns.  Tree patterns are the *answers* of the d-height tree pattern
problem: each aggregates all valid subtrees sharing structure, types, and
keyword positions, and is rendered as one table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

from repro.core.errors import GraphError
from repro.core.types import AttrId, TypeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.kg.graph import KnowledgeGraph


@dataclass(frozen=True)
class PathPattern:
    """The typed shape of one root-to-keyword path.

    ``labels`` alternates entity-type ids and attribute-type ids starting
    with the root's type: ``(C1, A1, C2, A2, ..., Cl)`` for node matches
    (odd length) and ``(C1, A1, ..., Cl, Al)`` for edge matches (even
    length, ends with the matched attribute).

    ``length`` follows the paper's definition |pattern(T(w))| = number of
    nodes on the path T(w); Example 2.4 counts the matched edge's target
    node, so an edge-matched pattern of l explicit node labels has length
    l + 1.
    """

    labels: Tuple[int, ...]
    ends_at_edge: bool

    def __post_init__(self) -> None:
        if not self.labels:
            raise GraphError("a path pattern needs at least the root type")
        expected_parity = 0 if self.ends_at_edge else 1
        if len(self.labels) % 2 != expected_parity:
            kind = "edge" if self.ends_at_edge else "node"
            raise GraphError(
                f"{kind}-matched pattern must have "
                f"{'even' if self.ends_at_edge else 'odd'} label count, "
                f"got {len(self.labels)}"
            )

    @property
    def root_type(self) -> TypeId:
        return self.labels[0]

    @property
    def length(self) -> int:
        """Number of nodes on the underlying path (paper's |pattern|)."""
        if self.ends_at_edge:
            return len(self.labels) // 2 + 1
        return (len(self.labels) + 1) // 2

    @property
    def num_hops(self) -> int:
        """Number of edges on the path (including a matched terminal edge)."""
        return len(self.labels) // 2

    def node_types(self) -> Tuple[TypeId, ...]:
        """Types of the explicitly labeled nodes, root first."""
        return self.labels[0::2]

    def attr_types(self) -> Tuple[AttrId, ...]:
        """Attribute types of the edges, root-side first."""
        return self.labels[1::2]

    @property
    def matched_attr(self) -> AttrId:
        """The attribute the keyword matched (edge matches only)."""
        if not self.ends_at_edge:
            raise GraphError("pattern ends at a node, not an edge")
        return self.labels[-1]

    def format(self, graph: "KnowledgeGraph") -> str:
        """Render like the paper: ``(Software) (Developer) (Company)``."""
        parts = []
        for i, label in enumerate(self.labels):
            if i % 2 == 0:
                parts.append(f"({graph.type_name(label)})")
            else:
                parts.append(f"({graph.attr_name(label)})")
        return " ".join(parts)


@dataclass(frozen=True)
class TreePattern:
    """An answer to a keyword query: one path pattern per keyword.

    All path patterns must share the same root type (they are root-to-leaf
    paths of a single rooted subtree shape).
    """

    paths: Tuple[PathPattern, ...]

    def __post_init__(self) -> None:
        if not self.paths:
            raise GraphError("a tree pattern needs at least one path pattern")
        root = self.paths[0].root_type
        for path in self.paths[1:]:
            if path.root_type != root:
                raise GraphError(
                    "all path patterns of a tree pattern must share a root "
                    f"type (got {root} and {path.root_type})"
                )

    @property
    def root_type(self) -> TypeId:
        return self.paths[0].root_type

    @property
    def num_keywords(self) -> int:
        return len(self.paths)

    @property
    def height(self) -> int:
        """H(pattern) = max path-pattern length (Section 2.2.2)."""
        return max(path.length for path in self.paths)

    def format(self, graph: "KnowledgeGraph", query: Tuple[str, ...] = ()) -> str:
        """Multi-line rendering, one path pattern per keyword."""
        lines = []
        for i, path in enumerate(self.paths):
            prefix = f"{query[i]!r}: " if i < len(query) else f"w{i + 1}: "
            lines.append(prefix + path.format(graph))
        return "\n".join(lines)
