"""Rendering a tree pattern and its subtrees as a table answer (§2.2.2).

Each valid subtree becomes a row.  For each keyword path
``v1 e1 v2 ... vl`` the paper creates ``l`` columns named ``tau(v1)``,
``tau(v1) alpha(e1) tau(v2)``, ..., deduplicating columns when an edge
appears in more than one root-to-leaf path.  We key columns by their
*pattern prefix* — the typed path from the root down to the column's node —
which realizes that dedup rule uniformly across rows.

Corner case the paper glosses over: two keyword paths can share a pattern
prefix while binding different nodes in some row (the pattern cannot see
where paths diverge).  Such cells hold multiple values; we render them
joined with `` | `` and flag the column as ``multivalued``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.core.pattern import TreePattern
from repro.core.subtree import ValidSubtree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.kg.graph import KnowledgeGraph


@dataclass
class TableColumn:
    """One column of a table answer.

    ``header`` is the short display name (the attribute name for non-root
    columns, mirroring Figure 3's "Genre"/"Revenue" headers).
    ``qualified_name`` is the paper's unambiguous
    ``tau(v_{i-1}) alpha(e_i) tau(v_i)`` naming.  ``prefix`` is the interned
    pattern-prefix key (tuple of alternating type/attr ids).
    """

    header: str
    qualified_name: str
    prefix: Tuple[int, ...]
    depth: int
    multivalued: bool = False


@dataclass
class TableAnswer:
    """A tree pattern rendered as a table: columns plus one row per subtree."""

    pattern: TreePattern
    columns: List[TableColumn]
    rows: List[List[str]] = field(default_factory=list)
    score: float = 0.0

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def headers(self) -> List[str]:
        return [column.header for column in self.columns]

    def to_dicts(self) -> List[Dict[str, str]]:
        """Rows as header -> value dicts (headers deduplicated upstream)."""
        return [dict(zip(self.headers(), row)) for row in self.rows]

    def to_ascii(self, max_rows: int = 20) -> str:
        """Fixed-width text rendering (used by examples and the harness)."""
        headers = self.headers()
        shown = self.rows[:max_rows]
        widths = [len(h) for h in headers]
        for row in shown:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))
        lines = [fmt(headers), "-+-".join("-" * w for w in widths)]
        lines.extend(fmt(row) for row in shown)
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """RFC-4180 CSV with a header row (for spreadsheet export)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.headers())
        writer.writerows(self.rows)
        return buffer.getvalue()

    def to_json_records(self) -> str:
        """JSON array of header->value objects."""
        import json

        return json.dumps(self.to_dicts(), indent=2)

    def to_markdown(self, max_rows: int = 20) -> str:
        """GitHub-flavored markdown rendering."""
        headers = self.headers()
        lines = [
            "| " + " | ".join(headers) + " |",
            "| " + " | ".join("---" for _ in headers) + " |",
        ]
        for row in self.rows[:max_rows]:
            lines.append("| " + " | ".join(row) + " |")
        if len(self.rows) > max_rows:
            lines.append(f"| ... {len(self.rows) - max_rows} more rows | "
                         + " | ".join("" for _ in headers[1:]) + " |")
        return "\n".join(lines)


def _column_plan(
    pattern: TreePattern, graph: "KnowledgeGraph"
) -> List[TableColumn]:
    """Derive the deduplicated column list for a tree pattern.

    Walks every path pattern depth by depth; a column is created the first
    time a pattern prefix is seen.  Edge-matched terminals contribute a
    column for the matched edge's target value.
    """
    columns: List[TableColumn] = []
    seen: Dict[Tuple[int, ...], int] = {}
    for path in pattern.paths:
        labels = path.labels
        # Node positions: prefix lengths 1, 3, 5, ... in labels; for
        # edge-matched paths the terminal target is prefix length
        # len(labels) + 1 conceptually -- we key it by the full labels
        # tuple which uniquely identifies that edge column.
        node_prefix_lengths = list(range(1, len(labels) + 1, 2))
        for depth, plen in enumerate(node_prefix_lengths):
            prefix = labels[:plen]
            if prefix in seen:
                continue
            seen[prefix] = len(columns)
            type_name = graph.type_name(labels[plen - 1])
            if depth == 0:
                header = type_name
                qualified = type_name
            else:
                attr_name = graph.attr_name(labels[plen - 2])
                prev_type = graph.type_name(labels[plen - 3])
                header = type_name if type_name else attr_name
                qualified = f"{prev_type}.{attr_name}.{type_name}"
            columns.append(
                TableColumn(
                    header=header,
                    qualified_name=qualified,
                    prefix=prefix,
                    depth=depth,
                )
            )
        if path.ends_at_edge:
            prefix = labels  # full labels end with the matched attr
            if prefix not in seen:
                seen[prefix] = len(columns)
                attr_name = graph.attr_name(labels[-1])
                prev_type = graph.type_name(labels[-2])
                columns.append(
                    TableColumn(
                        header=attr_name,
                        qualified_name=f"{prev_type}.{attr_name}",
                        prefix=prefix,
                        depth=len(labels) // 2,
                    )
                )
    # Disambiguate duplicate headers ("Company" appearing twice) by falling
    # back to qualified names for the duplicates.
    counts: Dict[str, int] = {}
    for column in columns:
        counts[column.header] = counts.get(column.header, 0) + 1
    for column in columns:
        if counts[column.header] > 1:
            column.header = column.qualified_name
    return columns


def compose_table(
    pattern: TreePattern,
    subtrees: Sequence[ValidSubtree],
    graph: "KnowledgeGraph",
    score: float = 0.0,
) -> TableAnswer:
    """Build the :class:`TableAnswer` for ``pattern`` from its subtrees.

    Every subtree must have pattern equal to ``pattern`` (callers obtain
    them grouped from the search algorithms); rows appear in input order.
    """
    columns = _column_plan(pattern, graph)
    index_of_prefix = {column.prefix: i for i, column in enumerate(columns)}
    answer = TableAnswer(pattern=pattern, columns=columns, score=score)
    for subtree in subtrees:
        cells: List[List[str]] = [[] for _ in columns]
        for path, path_pattern in zip(subtree.paths, pattern.paths):
            labels = path_pattern.labels
            for depth, node in enumerate(path.nodes):
                if path.matched_on_edge and depth == len(path.nodes) - 1:
                    prefix = labels  # terminal value column of an edge match
                else:
                    prefix = labels[: 2 * depth + 1]
                column_index = index_of_prefix[prefix]
                value = graph.node_text(node)
                if value not in cells[column_index]:
                    cells[column_index].append(value)
        row = []
        for i, values in enumerate(cells):
            if len(values) > 1:
                columns[i].multivalued = True
            row.append(" | ".join(values))
        answer.rows.append(row)
    return answer
