"""Core definitions: path/tree patterns, valid subtrees, tables, top-k."""

from repro.core.errors import (
    GraphError,
    KnowledgeBaseError,
    LoaderError,
    PathIndexError,
    QueryError,
    ReproError,
    ScoringError,
    SearchError,
)
from repro.core.pattern import PathPattern, TreePattern
from repro.core.subtree import MatchPath, ValidSubtree, combine_paths
from repro.core.table import TableAnswer, TableColumn, compose_table
from repro.core.topk import TopKQueue

__all__ = [
    "GraphError",
    "KnowledgeBaseError",
    "LoaderError",
    "MatchPath",
    "PathIndexError",
    "PathPattern",
    "QueryError",
    "ReproError",
    "ScoringError",
    "SearchError",
    "TableAnswer",
    "TableColumn",
    "TopKQueue",
    "TreePattern",
    "ValidSubtree",
    "combine_paths",
    "compose_table",
]
