"""Bounded top-k priority queue.

All three search algorithms "only need to maintain k tree patterns in Q"
(Algorithm 2, line 8).  This queue keeps the k highest-scoring items using
a min-heap of size k; pushes below the current k-th score are O(1)
rejections.

Ties are broken deterministically.  By default, earlier insertions win.
Callers may instead pass an explicit ``tie_key`` (any totally ordered
value): among equal scores the *smallest* tie key is retained — the search
engines pass canonical pattern keys so that all algorithms retain the
same answer set at tied k-boundaries, regardless of enumeration order.
"""

from __future__ import annotations

import heapq
from typing import Generic, List, Optional, Tuple, TypeVar

from repro.core.errors import SearchError

T = TypeVar("T")


class _InvertedKey:
    """Wrapper inverting comparison order.

    The retention heap is a *min*-heap that evicts its smallest element;
    to keep the canonically-smallest tie key we must make larger keys
    compare smaller (evicted first).
    """

    __slots__ = ("key",)

    def __init__(self, key) -> None:
        self.key = key

    def __lt__(self, other: "_InvertedKey") -> bool:
        return self.key > other.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _InvertedKey) and self.key == other.key


class TopKQueue(Generic[T]):
    """Keep the ``k`` highest-scoring items seen so far.

    >>> queue = TopKQueue(2)
    >>> for score, name in [(1.0, "a"), (3.0, "b"), (2.0, "c")]:
    ...     _ = queue.push(score, name)
    >>> [(s, v) for s, v in queue.ranked()]
    [(3.0, 'b'), (2.0, 'c')]
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        self.k = k
        # Heap entries: (score, tie_token, -sequence, payload).  With a
        # min-heap the smallest score is evicted first; among equal scores
        # the tie token decides (see push), and the unique -sequence both
        # breaks remaining ties and shields payloads from comparison.
        self._heap: List[Tuple] = []
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        return len(self._heap) >= self.k

    def threshold(self) -> float:
        """Current k-th best score; -inf while the queue is not full."""
        if len(self._heap) < self.k:
            return float("-inf")
        return self._heap[0][0]

    def would_accept(self, score: float) -> bool:
        """Whether ``push(score, ...)`` *might* change the queue's contents.

        Scores equal to the threshold may still be retained when tie keys
        are in play, so equality is accepted (callers use this only to
        skip hopeless work).
        """
        return len(self._heap) < self.k or score >= self._heap[0][0]

    def push(self, score: float, item: T, tie_key=None) -> bool:
        """Offer an item; returns True when it was retained.

        ``tie_key``: totally ordered value deciding equal-score conflicts
        (smallest retained, and ranked first).  Omitted: insertion order
        decides (earlier wins).  Do not mix both styles in one queue —
        tie tokens must be mutually comparable.
        """
        if tie_key is None:
            token = ()  # compares equal between entries; -seq decides
        else:
            token = (_InvertedKey(tie_key),)
        entry = (score, token, -self._sequence, item)
        self._sequence += 1
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
            return True
        if not self._heap[0][:3] < entry[:3]:
            return False
        heapq.heapreplace(self._heap, entry)
        return True

    def ranked(self) -> List[Tuple[float, T]]:
        """Items best-first; ties per the queue's tie policy."""
        def sort_key(entry):
            score, token, neg_seq, _item = entry
            # Ascending tie key = descending inverted token; then
            # insertion order (ascending sequence = descending -seq).
            return (-score, tuple(t.key for t in token), -neg_seq)

        ordered = sorted(self._heap, key=sort_key)
        return [(entry[0], entry[3]) for entry in ordered]

    def items(self) -> List[T]:
        """Payloads best-first."""
        return [item for _score, item in self.ranked()]

    def min_score(self) -> float:
        """Lowest retained score; raises if empty."""
        if not self._heap:
            raise SearchError("queue is empty")
        return self._heap[0][0]


class TopKThreshold:
    """Bound-admission gate over a :class:`TopKQueue`, with trajectory.

    The bound-driven search loops ask one question per candidate unit of
    work: *given an admissible upper bound on everything this unit could
    contribute, can it still change the queue?*  :meth:`admits` answers
    it — always ``True`` while the queue is not full (any score can still
    enter), and ``upper_bound >= k-th score`` afterwards.  Equality is
    admitted because a score tying the k-th may still be retained under
    the queue's tie keys, so skipping requires the bound *strictly*
    below the threshold; pruned and unpruned runs then keep identical
    answers (see ``docs/pruning.md``).

    The gate also records the k-th-score trajectory — the threshold the
    first time the queue was observed full, and the final one — which
    ``SearchStats`` and ``repro search --explain`` surface so the
    "threshold tightens fast" claim is inspectable per query.

    >>> queue = TopKQueue(1)
    >>> gate = TopKThreshold(queue)
    >>> gate.admits(0.1)  # queue not full: everything admitted
    True
    >>> _ = queue.push(2.0, "a")
    >>> gate.admits(1.5), gate.admits(2.0)
    (False, True)
    """

    __slots__ = ("queue", "first_threshold", "last_threshold")

    def __init__(self, queue: TopKQueue) -> None:
        self.queue = queue
        self.first_threshold: Optional[float] = None
        self.last_threshold: Optional[float] = None

    @property
    def is_active(self) -> bool:
        """Whether the queue is full (only then can anything be pruned)."""
        return self.queue.is_full

    def observe(self) -> Optional[float]:
        """Record the current k-th score into the trajectory."""
        if not self.queue.is_full:
            return None
        kth = self.queue.threshold()
        if self.first_threshold is None:
            self.first_threshold = kth
        self.last_threshold = kth
        return kth

    def admits(self, upper_bound: float) -> bool:
        """Whether work bounded by ``upper_bound`` could change the queue."""
        kth = self.observe()
        if kth is None:
            return True
        return upper_bound >= kth

    def write_stats(self, stats) -> None:
        """Snapshot the final threshold trajectory into ``SearchStats``."""
        self.observe()
        stats.threshold_first = self.first_threshold
        stats.threshold_last = self.last_threshold
