"""Bounded top-k priority queue.

All three search algorithms "only need to maintain k tree patterns in Q"
(Algorithm 2, line 8).  This queue keeps the k highest-scoring items using
a min-heap of size k; pushes below the current k-th score are O(1)
rejections.

Ties are broken deterministically.  By default, earlier insertions win.
Callers may instead pass an explicit ``tie_key`` (any totally ordered
value): among equal scores the *smallest* tie key is retained — the search
engines pass canonical pattern keys so that all algorithms retain the
same answer set at tied k-boundaries, regardless of enumeration order.
"""

from __future__ import annotations

import heapq
from typing import Generic, List, Optional, Tuple, TypeVar

from repro.core.errors import SearchError

T = TypeVar("T")


class _InvertedKey:
    """Wrapper inverting comparison order.

    The retention heap is a *min*-heap that evicts its smallest element;
    to keep the canonically-smallest tie key we must make larger keys
    compare smaller (evicted first).
    """

    __slots__ = ("key",)

    def __init__(self, key) -> None:
        self.key = key

    def __lt__(self, other: "_InvertedKey") -> bool:
        return self.key > other.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _InvertedKey) and self.key == other.key


class TopKQueue(Generic[T]):
    """Keep the ``k`` highest-scoring items seen so far.

    >>> queue = TopKQueue(2)
    >>> for score, name in [(1.0, "a"), (3.0, "b"), (2.0, "c")]:
    ...     _ = queue.push(score, name)
    >>> [(s, v) for s, v in queue.ranked()]
    [(3.0, 'b'), (2.0, 'c')]
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        self.k = k
        # Heap entries: (score, tie_token, -sequence, payload).  With a
        # min-heap the smallest score is evicted first; among equal scores
        # the tie token decides (see push), and the unique -sequence both
        # breaks remaining ties and shields payloads from comparison.
        self._heap: List[Tuple] = []
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        return len(self._heap) >= self.k

    def threshold(self) -> float:
        """Current k-th best score; -inf while the queue is not full."""
        if len(self._heap) < self.k:
            return float("-inf")
        return self._heap[0][0]

    def would_accept(self, score: float) -> bool:
        """Whether ``push(score, ...)`` *might* change the queue's contents.

        Scores equal to the threshold may still be retained when tie keys
        are in play, so equality is accepted (callers use this only to
        skip hopeless work).
        """
        return len(self._heap) < self.k or score >= self._heap[0][0]

    def push(self, score: float, item: T, tie_key=None) -> bool:
        """Offer an item; returns True when it was retained.

        ``tie_key``: totally ordered value deciding equal-score conflicts
        (smallest retained, and ranked first).  Omitted: insertion order
        decides (earlier wins).  Do not mix both styles in one queue —
        tie tokens must be mutually comparable.
        """
        if tie_key is None:
            token = ()  # compares equal between entries; -seq decides
        else:
            token = (_InvertedKey(tie_key),)
        entry = (score, token, -self._sequence, item)
        self._sequence += 1
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
            return True
        if not self._heap[0][:3] < entry[:3]:
            return False
        heapq.heapreplace(self._heap, entry)
        return True

    def ranked(self) -> List[Tuple[float, T]]:
        """Items best-first; ties per the queue's tie policy."""
        def sort_key(entry):
            score, token, neg_seq, _item = entry
            # Ascending tie key = descending inverted token; then
            # insertion order (ascending sequence = descending -seq).
            return (-score, tuple(t.key for t in token), -neg_seq)

        ordered = sorted(self._heap, key=sort_key)
        return [(entry[0], entry[3]) for entry in ordered]

    def items(self) -> List[T]:
        """Payloads best-first."""
        return [item for _score, item in self.ranked()]

    def min_score(self) -> float:
        """Lowest retained score; raises if empty."""
        if not self._heap:
            raise SearchError("queue is empty")
        return self._heap[0][0]
