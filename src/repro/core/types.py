"""Shared primitive type aliases used across the library.

The knowledge graph interns every entity, entity type, and attribute type to
a dense integer id.  All hot-path code (index construction, search) works on
these integers; human-readable names live in the side tables kept by
:class:`repro.kg.graph.KnowledgeGraph`.
"""

from __future__ import annotations

from typing import Tuple

#: Dense id of a node (entity or dummy text node) in the knowledge graph.
NodeId = int

#: Dense id of an entity type (``C`` in the paper, the set ``\mathcal{C}``).
TypeId = int

#: Dense id of an attribute/edge type (``A`` in the paper).
AttrId = int

#: A root-to-leaf path, stored as the tuple of node ids from the root
#: down to the deepest node on the path (edge ids are recoverable from the
#: graph; the index stores them alongside, see ``repro.index.entry``).
NodePath = Tuple[NodeId, ...]

#: Interned id of a path pattern inside an index.
PatternId = int

#: A keyword after normalization (lower-cased, stemmed).
Keyword = str
