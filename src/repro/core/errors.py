"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class KnowledgeBaseError(ReproError):
    """Raised for malformed knowledge-base input (unknown types, bad refs)."""


class GraphError(ReproError):
    """Raised for structural problems in a knowledge graph."""


class LoaderError(ReproError):
    """Raised when a knowledge-base file cannot be parsed."""


class IndexError_(ReproError):
    """Raised for path-index construction or access failures.

    Named with a trailing underscore to avoid shadowing the builtin
    ``IndexError``; exported as ``PathIndexError`` from the package root.
    """


PathIndexError = IndexError_


class QueryError(ReproError):
    """Raised for invalid keyword queries (empty, non-string words, ...)."""


class ScoringError(ReproError):
    """Raised when a scoring function is configured inconsistently."""


class SearchError(ReproError):
    """Raised when a search algorithm is invoked with invalid arguments."""


class StalePlanError(SearchError):
    """Raised when a plan's store version no longer matches the index.

    A concurrent writer moved the store between planning and execution;
    the plan's keyword resolution may be stale.  Re-plan against the
    current snapshot and retry — the serving tier does this
    automatically.
    """
