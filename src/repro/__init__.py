"""repro — keyword search over knowledge bases composing table answers.

A faithful reproduction of *"Finding Patterns in a Knowledge Base using
Keywords to Compose Table Answers"* (Yang, Ding, Chaudhuri, Chakrabarti;
PVLDB 7(14), 2014).

Quickstart::

    from repro import KnowledgeBase, TableAnswerEngine, EntityRef

    kb = KnowledgeBase()
    kb.add_entity("SQL Server", "Software")
    kb.add_entity("Microsoft", "Company")
    kb.set_attribute("SQL Server", "Developer", EntityRef("Microsoft"))
    kb.set_attribute("Microsoft", "Revenue", "US$ 77 billion")

    engine = TableAnswerEngine.from_knowledge_base(kb, d=3)
    for table in engine.tables("software company revenue", k=3):
        print(table.to_ascii())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

from repro.core import (
    MatchPath,
    PathPattern,
    QueryError,
    ReproError,
    TableAnswer,
    TopKQueue,
    TreePattern,
    ValidSubtree,
    combine_paths,
    compose_table,
)
from repro.index import (
    PathIndexes,
    build_indexes,
    index_statistics,
    load_indexes,
    save_indexes,
)
from repro.kg import (
    EntityRef,
    KnowledgeBase,
    KnowledgeGraph,
    SynonymTable,
    TextNormalizer,
    TextValue,
    build_graph,
    pagerank,
)
from repro.scoring import PAPER_DEFAULT, ScoringFunction
from repro.search import (
    SearchResult,
    TableAnswerEngine,
    baseline_search,
    coverage_metrics,
    individual_topk,
    linear_enum_search,
    linear_topk_search,
    pattern_enum_search,
)

__version__ = "1.0.0"

__all__ = [
    "EntityRef",
    "KnowledgeBase",
    "KnowledgeGraph",
    "MatchPath",
    "PAPER_DEFAULT",
    "PathIndexes",
    "PathPattern",
    "QueryError",
    "ReproError",
    "ScoringFunction",
    "SearchResult",
    "SynonymTable",
    "TableAnswer",
    "TableAnswerEngine",
    "TextNormalizer",
    "TextValue",
    "TopKQueue",
    "TreePattern",
    "ValidSubtree",
    "baseline_search",
    "build_graph",
    "build_indexes",
    "combine_paths",
    "compose_table",
    "coverage_metrics",
    "index_statistics",
    "individual_topk",
    "linear_enum_search",
    "linear_topk_search",
    "load_indexes",
    "pagerank",
    "pattern_enum_search",
    "save_indexes",
    "__version__",
]
