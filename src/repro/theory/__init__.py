"""Executable theory: Theorem 1's reduction and Theorem 5's bound."""

from repro.theory.hoeffding import (
    bound_vs_simulation,
    minimum_rate_for_error,
    pairwise_error_bound,
    simulate_error_rate,
)
from repro.theory.reduction import (
    build_reduction_instance,
    count_st_paths,
    count_tree_patterns,
    verify_reduction,
)

__all__ = [
    "bound_vs_simulation",
    "build_reduction_instance",
    "count_st_paths",
    "count_tree_patterns",
    "count_st_paths",
    "minimum_rate_for_error",
    "pairwise_error_bound",
    "simulate_error_rate",
    "verify_reduction",
]
