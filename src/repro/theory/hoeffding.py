"""Theorem 5: the Hoeffding bound on sampling-induced ranking errors.

When LINEARENUM-TOPK samples candidate roots at rate rho, two patterns
with exact scores s1 > s2 can be mis-ordered by their estimates with
probability at most::

    Pr[error] <= exp(-2 * ((s1 - s2) / (s1 + s2))^2 * rho^2)

This module provides the bound, its inversions (minimum rate / minimum
separation for a target error), and a Monte-Carlo simulator of the exact
sampling process used by the empirical-verification tests and the ablation
bench.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence, Tuple


def pairwise_error_bound(s1: float, s2: float, rho: float) -> float:
    """Theorem 5's bound on Pr[s_hat(P1) < s_hat(P2)] given s1 > s2."""
    if s1 <= s2:
        raise ValueError(f"requires s1 > s2, got s1={s1}, s2={s2}")
    if not 0.0 < rho <= 1.0:
        raise ValueError(f"rho must be in (0, 1], got {rho}")
    gap = (s1 - s2) / (s1 + s2)
    return math.exp(-2.0 * gap * gap * rho * rho)


def minimum_rate_for_error(
    s1: float, s2: float, max_error: float
) -> Optional[float]:
    """Smallest rho whose bound meets ``max_error``; None if unattainable.

    Solving exp(-2 g^2 rho^2) <= e for rho gives
    rho >= sqrt(ln(1/e) / (2 g^2)); values above 1 are unattainable (the
    bound never reaches the target even without sampling error — a loose-
    bound regime, not an actual impossibility).
    """
    if not 0.0 < max_error < 1.0:
        raise ValueError(f"max_error must be in (0, 1), got {max_error}")
    gap = (s1 - s2) / (s1 + s2)
    if gap <= 0:
        raise ValueError("requires s1 > s2")
    rho = math.sqrt(math.log(1.0 / max_error) / (2.0 * gap * gap))
    return rho if rho <= 1.0 else None


def simulate_error_rate(
    s1_per_root: Sequence[float],
    s2_per_root: Sequence[float],
    rho: float,
    trials: int = 2000,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of the mis-ranking probability.

    ``s1_per_root[i]`` / ``s2_per_root[i]`` are the per-candidate-root
    score decompositions s_i(r) of Theorem 5's proof (Equation 8); each
    trial samples every root with probability ``rho`` — both patterns see
    the *same* sampled root set, exactly like Algorithm 4 — and checks
    whether the scaled estimates invert the true order.
    """
    if len(s1_per_root) != len(s2_per_root):
        raise ValueError("score decompositions must cover the same roots")
    total1 = sum(s1_per_root)
    total2 = sum(s2_per_root)
    if total1 <= total2:
        raise ValueError("requires sum(s1) > sum(s2)")
    rng = random.Random(seed)
    errors = 0
    n = len(s1_per_root)
    for _ in range(trials):
        estimate1 = 0.0
        estimate2 = 0.0
        for i in range(n):
            if rng.random() < rho:
                estimate1 += s1_per_root[i]
                estimate2 += s2_per_root[i]
        if estimate1 < estimate2:
            errors += 1
    return errors / trials


def bound_vs_simulation(
    s1_per_root: Sequence[float],
    s2_per_root: Sequence[float],
    rho: float,
    trials: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """(theoretical bound, simulated rate) for one configuration."""
    bound = pairwise_error_bound(
        sum(s1_per_root), sum(s2_per_root), rho
    )
    simulated = simulate_error_rate(
        s1_per_root, s2_per_root, rho, trials, seed
    )
    return bound, simulated
