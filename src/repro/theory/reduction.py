"""The #P-hardness reduction of Theorem 1 (Appendix A), made executable.

COUNTPAT — counting the d-height tree patterns for a query — is
#P-complete by reduction from s-t PATHS (Valiant 1979): given a directed
graph G with nodes s, t, build a knowledge graph G2 from **two disjoint
copies** of G plus a fresh root r with edges to both copies of s, giving
every node/edge a unique type and unique text.  Query the texts of the two
copies of t with d = |V| + 1.  Each tree pattern is then a pair of
(uniquely-typed, hence pattern-distinct) s-t paths, one per copy, so

    #tree patterns in G2  =  (#s-t simple paths in G)^2.

This module builds the reduction instance and provides a brute-force s-t
path counter so tests can verify the squared correspondence end to end —
the strongest executable check of the theorem's construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.errors import GraphError
from repro.kg.graph import KnowledgeGraph

#: A directed graph for the source problem: adjacency over hashable nodes.
Digraph = Dict[object, Sequence[object]]

KEYWORD_COPY1 = "targetalpha"
KEYWORD_COPY2 = "targetbeta"


def count_st_paths(graph: Digraph, s: object, t: object) -> int:
    """Count simple s-t paths by exhaustive DFS (#P problem — small inputs).

    >>> count_st_paths({1: [2, 3], 2: [3], 3: []}, 1, 3)
    2
    """
    if s == t:
        return 1
    count = 0
    on_path = {s}
    stack: List[Tuple[object, int]] = [(s, 0)]
    # Iterative DFS with explicit child indices so deep graphs cannot hit
    # the recursion limit.
    children: List[Iterable] = [list(graph.get(s, ()))]
    indices = [0]
    path = [s]
    while path:
        node_children = children[-1]
        index = indices[-1]
        if index >= len(node_children):
            on_path.discard(path.pop())
            children.pop()
            indices.pop()
            continue
        indices[-1] += 1
        child = node_children[index]
        if child in on_path:
            continue
        if child == t:
            count += 1
            continue
        path.append(child)
        on_path.add(child)
        children.append(list(graph.get(child, ())))
        indices.append(0)
    del stack  # kept for clarity of intent; the explicit lists do the work
    return count


def build_reduction_instance(
    graph: Digraph, s: object, t: object
) -> Tuple[KnowledgeGraph, str, int]:
    """Build (knowledge graph G2, keyword query, height threshold d).

    Types, attribute types, and texts are all unique per node/edge as the
    proof requires, so distinct simple paths always have distinct path
    patterns and no keyword matches anywhere except the two target nodes.
    """
    nodes = list(graph.keys())
    node_set = set(nodes)
    for source, targets in graph.items():
        for target in targets:
            if target not in node_set:
                nodes.append(target)
                node_set.add(target)
    if s not in node_set or t not in node_set:
        raise GraphError("s and t must be nodes of the input graph")

    kg = KnowledgeGraph()
    ids: Dict[Tuple[int, object], int] = {}
    for copy in (1, 2):
        for i, node in enumerate(nodes):
            if node == t:
                text = KEYWORD_COPY1 if copy == 1 else KEYWORD_COPY2
            else:
                text = f"node{copy}x{i}"
            ids[(copy, node)] = kg.add_node(f"T{copy}x{i}", text)
    edge_counter = 0
    for copy in (1, 2):
        for source, targets in graph.items():
            for target in targets:
                kg.add_edge(
                    ids[(copy, source)],
                    f"A{edge_counter}",
                    ids[(copy, target)],
                )
                edge_counter += 1
    root = kg.add_node("TRoot", "rootnode")
    kg.add_edge(root, "AtoS1", ids[(1, s)])
    kg.add_edge(root, "AtoS2", ids[(2, s)])

    d = len(nodes) + 1
    return kg, f"{KEYWORD_COPY1} {KEYWORD_COPY2}", d


def count_tree_patterns(
    kg: KnowledgeGraph, query: str, d: int
) -> int:
    """COUNTPAT by full enumeration (builds a throwaway index)."""
    from repro.index.builder import build_indexes
    from repro.kg.pagerank import uniform_scores
    from repro.search.linear_enum import linear_enum

    indexes = build_indexes(
        kg, d=d, pagerank_scores=uniform_scores(kg)
    )
    enumeration = linear_enum(indexes, query, keep_subtrees=False)
    return enumeration.num_patterns


def verify_reduction(graph: Digraph, s: object, t: object) -> Tuple[int, int]:
    """Return (N, COUNTPAT) for an instance; Theorem 1 says COUNTPAT == N^2."""
    n_paths = count_st_paths(graph, s, t)
    kg, query, d = build_reduction_instance(graph, s, t)
    return n_paths, count_tree_patterns(kg, query, d)
