"""Adversarial graphs from the paper's complexity discussions.

* :func:`pattern_enum_adversarial_graph` — the Section 4.1 worst case for
  PATTERNENUM: two roots of the same type fan out to disjoint keyword sets,
  so all p^2 (p^m in general) combined tree patterns are empty.  PETopK
  burns Theta(p^m) set intersections; LETopK sees zero candidate roots and
  finishes immediately.  Used by tests and the ablation bench.

* :func:`star_graph` — a root with f children sharing one keyword; gives a
  controllable number of valid subtrees (f per extra keyword occurrence)
  for sampling experiments.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.errors import GraphError
from repro.kg.graph import KnowledgeGraph

WORD_LEFT = "leftword"
WORD_RIGHT = "rightword"


def pattern_enum_adversarial_graph(p: int) -> Tuple[KnowledgeGraph, str]:
    """The Section 4.1 graph: returns (graph, two-keyword query).

    Structure: roots ``r1``, ``r2`` share type ``C``.  ``r1`` points to
    ``p`` children of *distinct* types C1..Cp through distinct attributes
    A1..Ap, each child's text containing ``leftword``; ``r2`` points to
    another ``p`` children of types C(p+1)..C(2p) through attributes
    A(p+1)..A(2p), each containing ``rightword``.  Every combination
    (C Ai Ci, C Aj Cj) is a syntactically plausible tree pattern, and every
    single one is empty.
    """
    if p < 1:
        raise GraphError(f"p must be >= 1, got {p}")
    graph = KnowledgeGraph()
    r1 = graph.add_node("C", "rootone")
    r2 = graph.add_node("C", "roottwo")
    for i in range(p):
        child = graph.add_node(f"C{i + 1}", f"{WORD_LEFT} item{i + 1}")
        graph.add_edge(r1, f"A{i + 1}", child)
    for i in range(p, 2 * p):
        child = graph.add_node(f"C{i + 1}", f"{WORD_RIGHT} item{i + 1}")
        graph.add_edge(r2, f"A{i + 1}", child)
    return graph, f"{WORD_LEFT} {WORD_RIGHT}"


def star_graph(
    fanout: int, shared_word: str = "leaf", root_word: str = "hub"
) -> Tuple[KnowledgeGraph, str]:
    """A hub with ``fanout`` same-typed children all containing one word.

    The query ``"hub leaf"`` has exactly one tree pattern with ``fanout``
    valid subtrees — a controllable subtree count for sampling tests.
    """
    if fanout < 1:
        raise GraphError(f"fanout must be >= 1, got {fanout}")
    graph = KnowledgeGraph()
    root = graph.add_node("Hub", root_word)
    for i in range(fanout):
        child = graph.add_node("Leaf", f"{shared_word} number{i + 1}")
        graph.add_edge(root, "Link", child)
    return graph, f"{root_word} {shared_word}"


def diamond_graph() -> Tuple[KnowledgeGraph, str]:
    """Two same-typed paths converging on one node (tree-check exercise).

    Both query words match only the shared leaf, and the root reaches that
    leaf through two same-typed intermediates.  A combination assigning the
    two keywords paths through *different* intermediates gives the leaf two
    parents — not a tree — and must be rejected, while the combinations
    through a single intermediate are valid subtrees.
    """
    graph = KnowledgeGraph()
    root = graph.add_node("Root", "origin")
    mid_a = graph.add_node("Mid", "alpha")
    mid_b = graph.add_node("Mid", "beta")
    leaf = graph.add_node("Leaf", "prize trophy")
    graph.add_edge(root, "Via", mid_a)
    graph.add_edge(root, "Via", mid_b)
    graph.add_edge(mid_a, "Holds", leaf)
    graph.add_edge(mid_b, "Holds", leaf)
    return graph, "prize trophy"
