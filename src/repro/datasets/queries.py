"""Query workload generation (Section 5 "Queries").

The paper evaluates 500 queries per dataset — 50 for each keyword count
from 1 to 10 — sampled from Bing's log (Wiki) or constructed from the
dataset's vocabulary (IMDB).  We mirror the IMDB recipe for both datasets,
mixing two kinds of queries:

* **answerable** queries: keywords sampled from the words reachable from a
  single root within ``d`` hops, guaranteeing at least one valid subtree
  (real query logs are answer-biased in the same way);
* **random** queries: frequency-weighted draws from the whole vocabulary
  (some come back empty, as in any log).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.errors import QueryError
from repro.index.builder import PathIndexes

Query = Tuple[str, ...]


@dataclass
class WorkloadConfig:
    """Knobs for :func:`generate_workload`."""

    queries_per_size: int = 10
    min_keywords: int = 1
    max_keywords: int = 10
    answerable_fraction: float = 0.8
    seed: int = 0


def words_reachable_from(
    indexes: PathIndexes, root: int
) -> List[str]:
    """All keywords some path from ``root`` reaches within the index's d.

    Read straight off the root-first index: ``w`` is reachable from ``r``
    iff ``r`` is in ``Roots(w)``.  (A linear scan over words; workload
    generation is offline.)
    """
    found = []
    for word in indexes.root_first.words():
        if indexes.root_first.path_count(word, root) > 0:
            found.append(word)
    return sorted(found)


def query_has_answer(indexes: PathIndexes, words: Query) -> bool:
    """Whether at least one *valid subtree* exists for ``words``.

    Keywords all being reachable from one root is necessary but not
    sufficient: every path combination at every shared root can still fail
    the tree-validity check (conflicting parents).  This verifier expands
    candidate roots with an early exit on the first valid combination.
    """
    from itertools import product

    from repro.index.entry import entries_form_tree

    root_first = indexes.root_first
    root_maps = [root_first.roots(word) for word in words]
    if any(not root_map for root_map in root_maps):
        return False
    smallest = min(root_maps, key=len)
    for root in smallest:
        if not all(root in root_map for root_map in root_maps):
            continue
        entry_lists = [
            [
                entry
                for entries in root_first.pattern_map(word, root).values()
                for entry in entries
            ]
            for word in words
        ]
        for combo in product(*entry_lists):
            if entries_form_tree(combo):
                return True
    return False


def sample_answerable_query(
    indexes: PathIndexes,
    num_keywords: int,
    rng: random.Random,
    max_attempts: int = 200,
) -> Optional[Query]:
    """A query with >= 1 valid subtree: all keywords reachable from one
    root, then verified by :func:`query_has_answer`."""
    num_nodes = indexes.graph.num_nodes
    if num_nodes == 0:
        return None
    for _ in range(max_attempts):
        root = rng.randrange(num_nodes)
        pool = words_reachable_from(indexes, root)
        if len(pool) < num_keywords:
            continue
        query = tuple(rng.sample(pool, num_keywords))
        if query_has_answer(indexes, indexes.resolve_query(query)):
            return query
    return None


def sample_random_query(
    indexes: PathIndexes,
    num_keywords: int,
    rng: random.Random,
) -> Optional[Query]:
    """Frequency-weighted draw of distinct words from the vocabulary."""
    weighted: List[str] = []
    for word in indexes.root_first.words():
        weighted.append(word)
    if len(weighted) < num_keywords:
        return None
    weights = [
        indexes.root_first.num_entries(word) for word in weighted
    ]
    chosen: Set[str] = set()
    attempts = 0
    while len(chosen) < num_keywords and attempts < 50 * num_keywords:
        chosen.add(rng.choices(weighted, weights=weights, k=1)[0])
        attempts += 1
    if len(chosen) < num_keywords:
        return None
    return tuple(sorted(chosen))


def generate_workload(
    indexes: PathIndexes,
    config: WorkloadConfig = WorkloadConfig(),
) -> List[Query]:
    """The experiment workload: queries_per_size for each keyword count."""
    if config.min_keywords < 1 or config.max_keywords < config.min_keywords:
        raise QueryError(
            f"bad keyword range [{config.min_keywords}, {config.max_keywords}]"
        )
    rng = random.Random(config.seed)
    queries: List[Query] = []
    for size in range(config.min_keywords, config.max_keywords + 1):
        produced = 0
        attempts = 0
        while produced < config.queries_per_size and attempts < 50 * (
            config.queries_per_size + 1
        ):
            attempts += 1
            if rng.random() < config.answerable_fraction:
                query = sample_answerable_query(indexes, size, rng)
            else:
                query = sample_random_query(indexes, size, rng)
            if query is None:
                continue
            queries.append(query)
            produced += 1
    return queries


def zipfian_requests(
    queries: Sequence[Query],
    num_requests: int,
    alpha: float = 0.9,
    seed: int = 0,
) -> List[Query]:
    """An open-loop request stream with Zipfian query popularity.

    Real search traffic repeats a few hot queries constantly and the
    long tail rarely; serving benchmarks that replay each distinct query
    once overstate cold-path cost and understate cache value.  Draws
    ``num_requests`` from ``queries`` with popularity ``1/(rank+1)^alpha``
    (rank = position in ``queries``), seeded for reproducibility.
    """
    from repro.datasets.synthetic import zipf_index

    if not queries:
        raise QueryError("zipfian_requests needs a non-empty query pool")
    rng = random.Random(seed)
    return [
        queries[zipf_index(rng, len(queries), alpha)]
        for _ in range(num_requests)
    ]


def filter_answerable(
    indexes: PathIndexes, queries: Sequence[Query]
) -> List[Query]:
    """Queries whose candidate-root intersection is non-empty.

    Cheap screen (root-set intersection only) used by experiments that need
    non-trivial work per query without a full enumeration.
    """
    kept = []
    for query in queries:
        words = indexes.resolve_query(query)
        roots = None
        for word in words:
            word_roots = set(indexes.root_first.roots(word))
            roots = word_roots if roots is None else roots & word_roots
            if not roots:
                break
        if roots:
            kept.append(query)
    return kept
