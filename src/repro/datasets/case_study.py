"""The Section 5.3 case study: the query "XBox Game" (Figures 14-15).

A hand-crafted slice mirroring the paper's qualitative comparison:

* the **Xbox** console entity with a high PageRank (many referrers) and a
  "Top game" attribute — the paper's top-1 *individual* subtree;
* a **DVD** storage-medium entity, also popular, reaching "video game"
  through Sony — the paper's top-2 individual subtree;
* **Xbox Live Arcade**, a singular entity whose name and type match both
  keywords — the paper's top-3;
* a population of **video games** with a ``Platform`` edge to Xbox — the
  rows of the paper's top-1 *tree pattern* (the "list of XBox games").
"""

from __future__ import annotations

from typing import Tuple

from repro.kg.graph import KnowledgeGraph

#: Games listed in Figure 15 (plus padding to give the pattern weight).
XBOX_GAMES = (
    "Halo 2",
    "GTA: San Andreas",
    "Painkiller",
    "Fable",
    "Forza Motorsport",
    "Jade Empire",
)

CASE_STUDY_QUERY = "xbox game"


def xbox_case_study_graph() -> Tuple[KnowledgeGraph, str]:
    """Build the case-study graph; returns (graph, query)."""
    graph = KnowledgeGraph()

    xbox = graph.add_node("Information Appliance", "Xbox")
    halo = graph.add_node("Video Game", XBOX_GAMES[0])
    graph.add_edge(xbox, "Top game", halo)

    for title in XBOX_GAMES[1:]:
        game = graph.add_node("Video Game", title)
        graph.add_edge(game, "Platform", xbox)
    graph.add_edge(halo, "Platform", xbox)

    dvd = graph.add_node("Storage Medium", "DVD")
    sony = graph.add_node("Company", "Sony")
    video_game_text = graph.add_text_node("video game")
    graph.add_edge(dvd, "Usage", xbox)
    graph.add_edge(dvd, "Owners", sony)
    graph.add_edge(sony, "Products", video_game_text)
    # Short game-reaching branch so the DVD subtree exists at d = 2 (the
    # paper's DVD answer goes through Sony at depth 4; see module note).
    graph.add_edge(dvd, "Contains", graph.add_text_node("video game"))

    graph.add_node("Video Game Online Service", "Xbox Live Arcade")

    # Popularity: many outside referrers raise Xbox's and DVD's PageRank,
    # which is what pushes their subtrees to the top of the individual
    # ranking in the paper's Figure 14.  The case study runs at d = 2, so
    # these referrers reach only one keyword and never become answer roots.
    for i in range(18):
        fan = graph.add_node("Website", f"review site {i}")
        graph.add_edge(fan, "Covers", xbox)
        if i % 2 == 0:
            graph.add_edge(fan, "Mentions", dvd)
    return graph, CASE_STUDY_QUERY


#: Height threshold for the case study: at d = 2 the shape of Figure 14/15
#: is reproduced (popular singular subtrees vs the games table); larger d
#: additionally surfaces the referrer sites as roots, drowning the
#: comparison in noise the paper's full Wiki graph dilutes naturally.
CASE_STUDY_D = 2
