"""Shared utilities for the synthetic knowledge-base generators.

The paper evaluates on Wiki (1.89M entities extracted from infoboxes) and
IMDB (6.58M entities).  Those dumps are not available offline — and a
pure-Python index over 35M edges would not fit this environment — so the
generators in :mod:`repro.datasets.wiki` and :mod:`repro.datasets.imdb`
synthesize scale-models preserving the properties the algorithms are
sensitive to: heterogeneous schemas, zipf-like popularity, and vocabulary
shared across entities, types, and attributes (so keyword queries aggregate
many subtrees into patterns).  This module holds their shared primitives:
seeded name/vocabulary generation and zipf sampling.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")

_CONSONANTS = "bcdfglmnprstvz"
_VOWELS = "aeiou"


def random_word(rng: random.Random, syllables: int = 2) -> str:
    """A pronounceable synthetic word ("belora"-style)."""
    parts = []
    for _ in range(syllables):
        parts.append(rng.choice(_CONSONANTS))
        parts.append(rng.choice(_VOWELS))
    return "".join(parts)


def make_vocabulary(
    rng: random.Random, size: int, syllables: int = 3
) -> List[str]:
    """``size`` distinct synthetic words.

    Three syllables give ~9k combinations; collisions are retried, and the
    syllable count grows automatically if a size beyond the combinatorial
    space is requested.
    """
    words: List[str] = []
    seen = set()
    attempts = 0
    while len(words) < size:
        word = random_word(rng, syllables)
        if word not in seen:
            seen.add(word)
            words.append(word)
        attempts += 1
        if attempts > 50 * size and len(words) < size:
            syllables += 1
            attempts = 0
    return words


def zipf_index(rng: random.Random, n: int, alpha: float = 1.0) -> int:
    """Sample an index in [0, n) with probability proportional to 1/(i+1)^alpha.

    Uses inverse-CDF over the precomputable harmonic weights for small
    ``n``; for the generator workloads n is at most tens of thousands so a
    linear scan of cumulative weights is fine and dependency-free.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    # Cache the cumulative weights per (n, alpha) to keep repeated sampling
    # linear only once.
    key = (n, alpha)
    cumulative = _ZIPF_CACHE.get(key)
    if cumulative is None:
        total = 0.0
        cumulative = []
        for i in range(n):
            total += 1.0 / ((i + 1) ** alpha)
            cumulative.append(total)
        _ZIPF_CACHE[key] = cumulative
    target = rng.random() * cumulative[-1]
    low, high = 0, n - 1
    while low < high:
        mid = (low + high) // 2
        if cumulative[mid] < target:
            low = mid + 1
        else:
            high = mid
    return low


_ZIPF_CACHE: dict = {}


def zipf_choice(
    rng: random.Random, items: Sequence[T], alpha: float = 1.0
) -> T:
    """Zipf-weighted choice: earlier items are exponentially more popular."""
    return items[zipf_index(rng, len(items), alpha)]


def sample_phrase(
    rng: random.Random,
    vocabulary: Sequence[str],
    min_words: int = 1,
    max_words: int = 3,
    alpha: float = 1.0,
) -> str:
    """A short text description drawn from a shared zipf vocabulary.

    Repeated draws share head words heavily — the property that makes
    keyword queries match many entities, as real infobox text does.
    """
    count = rng.randint(min_words, max_words)
    words = []
    seen = set()
    while len(words) < count:
        word = zipf_choice(rng, vocabulary, alpha)
        if word not in seen:
            seen.add(word)
            words.append(word)
    return " ".join(words)
