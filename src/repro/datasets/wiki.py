"""Wiki-like synthetic knowledge graph (the paper's Wiki dataset, scaled).

The paper's Wiki dataset has 1.89M entities over 3,424 infobox types with
34.99M edges.  This generator reproduces, at laptop scale, the features
that drive the algorithms' behaviour on it:

* **many entity types** with zipf-distributed populations (a few huge
  types, a long tail), each with its own small attribute schema;
* **shared attribute vocabulary** across types (many infobox types have
  "name", "country", "genre", ...), which multiplies the number of
  distinct path patterns per keyword;
* **zipf in-degree** (popular entities like countries are referenced by
  many others) giving PageRank skew;
* **free-text attribute values** materialized as dummy text nodes;
* **vocabulary shared** between entity names, type names, and attribute
  names so that single keywords hit all three match kinds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.kg.graph import KnowledgeGraph
from repro.datasets.synthetic import (
    make_vocabulary,
    sample_phrase,
    zipf_choice,
)


@dataclass
class WikiConfig:
    """Knobs for :func:`generate_wiki_graph` (defaults are test-friendly)."""

    num_entities: int = 2000
    num_types: int = 40
    num_attrs: int = 60
    vocabulary_size: int = 400
    #: (min, max) outgoing relation slots per type's schema.
    slots_per_type: Tuple[int, int] = (2, 5)
    #: Probability an entity fills each relation slot of its schema.
    fill_probability: float = 0.8
    #: Probability an entity gets each text-attribute slot of its schema.
    text_probability: float = 0.5
    #: Zipf exponents: type popularity, target-entity popularity, words.
    type_alpha: float = 1.0
    target_alpha: float = 0.8
    word_alpha: float = 0.9
    seed: int = 0
    extra_text_slots: Tuple[int, int] = (1, 2)

    def scaled(self, fraction: float) -> "WikiConfig":
        """A config with ``fraction`` of the entities (Figure 10 sweeps)."""
        from dataclasses import replace

        return replace(
            self, num_entities=max(1, int(self.num_entities * fraction))
        )


@dataclass
class WikiSchema:
    """The generated schema: per-type relation and text slots."""

    type_names: List[str] = field(default_factory=list)
    #: per type: list of (attr_name, target_type_index)
    relation_slots: List[List[Tuple[str, int]]] = field(default_factory=list)
    #: per type: list of text attr names
    text_slots: List[List[str]] = field(default_factory=list)


def generate_wiki_graph(config: WikiConfig = WikiConfig()) -> KnowledgeGraph:
    """Generate a seeded wiki-like knowledge graph."""
    rng = random.Random(config.seed)
    vocabulary = make_vocabulary(rng, config.vocabulary_size)

    # Type and attribute names reuse the shared vocabulary so that a
    # keyword can match entity text, a type, and an attribute at once —
    # exactly what produces multiple match kinds per word on Wiki.
    type_names = []
    seen = set()
    while len(type_names) < config.num_types:
        name = zipf_choice(rng, vocabulary, config.word_alpha).capitalize()
        if name not in seen:
            seen.add(name)
            type_names.append(name)
    attr_names = []
    seen = set()
    while len(attr_names) < config.num_attrs:
        name = zipf_choice(rng, vocabulary, config.word_alpha).capitalize()
        if name in seen:
            name = f"{name} {zipf_choice(rng, vocabulary, config.word_alpha)}"
        if name not in seen:
            seen.add(name)
            attr_names.append(name)

    schema = WikiSchema(type_names=type_names)
    for _tid in range(config.num_types):
        slot_count = rng.randint(*config.slots_per_type)
        slots = []
        for _ in range(slot_count):
            attr = rng.choice(attr_names)
            target_type = rng.randrange(config.num_types)
            slots.append((attr, target_type))
        schema.relation_slots.append(slots)
        text_count = rng.randint(*config.extra_text_slots)
        schema.text_slots.append(rng.sample(attr_names, text_count))

    graph = KnowledgeGraph()
    for name in type_names:
        graph.intern_type(name)
    for name in attr_names:
        graph.intern_attr(name)

    # Entities: zipf type popularity, zipf-shared name vocabulary.
    entities_by_type: List[List[int]] = [[] for _ in range(config.num_types)]
    entity_types: List[int] = []
    for _ in range(config.num_entities):
        tid = _zipf_type(rng, config)
        text = sample_phrase(
            rng, vocabulary, min_words=1, max_words=3, alpha=config.word_alpha
        )
        node = graph.add_node_typed(tid, text, is_entity=True)
        entities_by_type[tid].append(node)
        entity_types.append(tid)

    # Relations: each entity fills its type's slots with zipf-popular
    # targets of the slot's target type; text slots become dummy nodes.
    for node, tid in enumerate(entity_types):
        for attr_name, target_type in schema.relation_slots[tid]:
            if rng.random() >= config.fill_probability:
                continue
            targets = entities_by_type[target_type]
            if not targets:
                continue
            target = zipf_choice(rng, targets, config.target_alpha)
            if target == node or graph.has_edge(
                node, graph.attr_id(attr_name), target
            ):
                continue
            graph.add_edge(node, attr_name, target)
        for attr_name in schema.text_slots[tid]:
            if rng.random() >= config.text_probability:
                continue
            text = sample_phrase(
                rng,
                vocabulary,
                min_words=1,
                max_words=4,
                alpha=config.word_alpha,
            )
            text_node = graph.add_text_node(text)
            graph.add_edge(node, attr_name, text_node)
    return graph


def _zipf_type(rng: random.Random, config: WikiConfig) -> int:
    from repro.datasets.synthetic import zipf_index

    return zipf_index(rng, config.num_types, config.type_alpha)


def scaled_wiki_config(num_entities: int, seed: int = 97) -> WikiConfig:
    """A :class:`WikiConfig` for large-scale runs (50k–500k entities).

    The paper's Wiki ratios, scaled down proportionally: entities per
    infobox type (~550:1), per attribute name, and per vocabulary word
    all grow with the entity count so the index's shape — patterns per
    keyword, postings per pattern — stays wiki-like instead of
    degenerating into a few giant types.  Fill probabilities are lowered
    to keep edges-per-entity near the real dataset's ~18 in+out.
    """
    return WikiConfig(
        num_entities=num_entities,
        num_types=max(16, min(400, num_entities // 125)),
        num_attrs=max(24, min(600, num_entities // 80)),
        vocabulary_size=max(160, min(4000, num_entities // 12)),
        slots_per_type=(2, 3),
        fill_probability=0.6,
        text_probability=0.3,
        seed=seed,
    )


def wiki_entity_fraction_graph(
    config: WikiConfig, fraction: float
) -> KnowledgeGraph:
    """Induced subgraph on a random ``fraction`` of nodes (Figure 10).

    Matches the paper's Exp-III: "randomly select a subset of entities ...
    and construct the induced subgraph".  Sampling is seeded by the
    config's seed so sweeps are reproducible.
    """
    graph = generate_wiki_graph(config)
    if fraction >= 1.0:
        return graph
    rng = random.Random(config.seed + 104729)  # stream distinct from generation
    keep = [v for v in graph.nodes() if rng.random() < fraction]
    return graph.induced_subgraph(keep)
