"""Dataset substrates: the paper's example, synthetic Wiki/IMDB, workloads."""

from repro.datasets.example import (
    BOOK_TITLE,
    EXAMPLE_NORMALIZER,
    EXAMPLE_QUERY,
    example_graph,
    example_graph_with_nodes,
    example_kb,
)
from repro.datasets.imdb import IMDB_TYPES, ImdbConfig, generate_imdb_graph
from repro.datasets.queries import (
    WorkloadConfig,
    filter_answerable,
    generate_workload,
    sample_answerable_query,
    sample_random_query,
    words_reachable_from,
)
from repro.datasets.synthetic import (
    make_vocabulary,
    random_word,
    sample_phrase,
    zipf_choice,
    zipf_index,
)
from repro.datasets.wiki import (
    WikiConfig,
    generate_wiki_graph,
    wiki_entity_fraction_graph,
)
from repro.datasets.worstcase import (
    diamond_graph,
    pattern_enum_adversarial_graph,
    star_graph,
)

__all__ = [
    "BOOK_TITLE",
    "EXAMPLE_NORMALIZER",
    "EXAMPLE_QUERY",
    "IMDB_TYPES",
    "ImdbConfig",
    "WikiConfig",
    "WorkloadConfig",
    "diamond_graph",
    "example_graph",
    "example_graph_with_nodes",
    "example_kb",
    "filter_answerable",
    "generate_imdb_graph",
    "generate_wiki_graph",
    "generate_workload",
    "make_vocabulary",
    "pattern_enum_adversarial_graph",
    "random_word",
    "sample_answerable_query",
    "sample_phrase",
    "sample_random_query",
    "star_graph",
    "wiki_entity_fraction_graph",
    "words_reachable_from",
    "zipf_choice",
    "zipf_index",
]
