"""The paper's running example (Figure 1) as a loadable knowledge base.

Entities, attributes, and the derived knowledge graph match Figure 1(a)-(d)
closely enough to replay every worked example: the query *"database
software company revenue"*, subtrees T1-T3, tree patterns P1-P2
(Figure 2), the table answer of Figure 3, and the scores of Example 2.4.

Example 2.4's numbers assume no stopword removal (the book title's six
tokens include "of" and "and") and uniform node importance 1; use
:data:`EXAMPLE_NORMALIZER` and ``uniform_scores`` to reproduce them
exactly, as the tests in ``tests/integration/test_paper_examples.py`` do.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.types import NodeId
from repro.kg.builder import build_graph
from repro.kg.entity import EntityRef, TextValue
from repro.kg.graph import KnowledgeGraph
from repro.kg.knowledge_base import KnowledgeBase
from repro.kg.text import TextNormalizer

#: Paper-exact text handling: stemming on (so "Softwares" matches
#: "software"), stopwords kept (so the book title has six tokens).
EXAMPLE_NORMALIZER = TextNormalizer(use_stemming=True, stopwords=())

#: The six-token book title behind Example 2.4's 1/6 similarities.
BOOK_TITLE = "Handbook of Database Systems and Softwares"


def example_kb() -> KnowledgeBase:
    """Build the Figure 1 knowledge base."""
    kb = KnowledgeBase()

    kb.add_entity("SQL Server", "Software")
    kb.add_entity("Oracle DB", "Software")
    kb.add_entity("Microsoft", "Company")
    kb.add_entity("Oracle Corp", "Company")
    kb.add_entity("Springer", "Company")
    kb.add_entity("Relational database", "Model")
    kb.add_entity("O-R database", "Model")
    kb.add_entity("C++", "Programming Language")
    kb.add_entity("Bill Gates", "Person")
    kb.add_entity(BOOK_TITLE, "Book")

    kb.set_attribute("SQL Server", "Developer", EntityRef("Microsoft"))
    kb.set_attribute("SQL Server", "Genre", EntityRef("Relational database"))
    kb.set_attribute("SQL Server", "Written in", EntityRef("C++"))
    kb.set_attribute("SQL Server", "Reference", EntityRef(BOOK_TITLE))

    kb.set_attribute("Oracle DB", "Developer", EntityRef("Oracle Corp"))
    kb.set_attribute("Oracle DB", "Genre", EntityRef("O-R database"))
    kb.set_attribute("Oracle DB", "Written in", EntityRef("C++"))

    kb.set_attribute("Microsoft", "Founder", EntityRef("Bill Gates"))
    kb.set_attribute("Microsoft", "Revenue", TextValue("US$ 77 billion"))

    kb.set_attribute("Oracle Corp", "Revenue", TextValue("US$ 37 billion"))

    kb.set_attribute(BOOK_TITLE, "Publisher", EntityRef("Springer"))
    kb.set_attribute("Springer", "Revenue", TextValue("US$ 1 billion"))

    return kb


def example_graph() -> KnowledgeGraph:
    """The Figure 1(d) knowledge graph."""
    graph, _nodes = build_graph(example_kb())
    return graph


def example_graph_with_nodes() -> Tuple[KnowledgeGraph, Dict[str, NodeId]]:
    """Graph plus the entity-name -> node-id mapping (used by tests)."""
    return build_graph(example_kb())


#: The paper's running query (w1..w4 of Example 2.2).
EXAMPLE_QUERY = "database software company revenue"
