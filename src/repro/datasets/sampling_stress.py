"""Dataset for the sampling experiments (Exp-V / Exp-VI, Figures 11-12).

Root sampling (Algorithm 4) pays off in a specific regime — the one the
paper's heaviest Wiki queries occupy: *many* tree patterns of comparable
weight, each supported by *many* valid subtrees spread over *many* distinct
candidate roots.  At laptop scale, generic synthetic graphs miss that
regime in one of two ways: heterogeneous schemas yield near-singleton
patterns (skipping one root kills a pattern), while tiny homogeneous
schemas yield few fat patterns (exact re-scoring costs as much as full
enumeration).

This generator hits the regime directly with an article→topic bipartite
shape:

* every **article** contains the common keyword (all articles are
  candidate roots);
* each article links to ``fanout`` **topics** through attributes drawn
  from a pool of ``num_attrs`` relation types — each relation type is one
  path pattern, so the query has ~``num_attrs`` tree patterns;
* a fraction of topics contain the second keyword, so each pattern's rows
  spread over hundreds of roots.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.kg.graph import KnowledgeGraph

COMMON_WORD = "alpha"
TOPIC_WORD = "zeta"
RARE_WORD = "gamma"


@dataclass
class SamplingStressConfig:
    """Knobs for :func:`sampling_stress_graph`."""

    num_articles: int = 12000
    num_topics: int = 500
    num_attrs: int = 48
    fanout: int = 5
    #: One in ``topic_selectivity`` topics contains :data:`TOPIC_WORD`.
    topic_selectivity: int = 4
    #: One in ``rare_selectivity`` topics contains :data:`RARE_WORD`.
    rare_selectivity: int = 25
    seed: int = 7


def sampling_stress_graph(
    config: SamplingStressConfig = SamplingStressConfig(),
) -> Tuple[KnowledgeGraph, List[str]]:
    """Build the graph; returns (graph, benchmark queries).

    The returned queries, in decreasing answer mass:

    1. ``"alpha zeta"``  — every article root, dense topic keyword;
    2. ``"alpha gamma"`` — every article root, sparse topic keyword;
    3. ``"zeta gamma"``  — only articles reaching both topic kinds.
    """
    rng = random.Random(config.seed)
    graph = KnowledgeGraph()

    topics = []
    for i in range(config.num_topics):
        words = [f"topic{i}"]
        if i % config.topic_selectivity == 0:
            words.append(TOPIC_WORD)
        if i % config.rare_selectivity == 0:
            words.append(RARE_WORD)
        # Vary text length so keyword similarities (1/|tokens|) differ
        # across topics and pattern scores are not artificially tied.
        for j in range(i % 3):
            words.append(f"pad{i % 11}x{j}")
        topics.append(graph.add_node("Topic", " ".join(words)))

    attrs = [f"Rel{i}" for i in range(config.num_attrs)]
    for attr in attrs:
        graph.intern_attr(attr)

    for i in range(config.num_articles):
        article = graph.add_node("Article", f"{COMMON_WORD} doc{i}")
        for attr in rng.sample(attrs, config.fanout):
            graph.add_edge(article, attr, rng.choice(topics))

    queries = [
        f"{COMMON_WORD} {TOPIC_WORD}",
        f"{COMMON_WORD} {RARE_WORD}",
        f"{TOPIC_WORD} {RARE_WORD}",
    ]
    return graph, queries
