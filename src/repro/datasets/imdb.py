"""IMDB-like synthetic knowledge graph (the paper's IMDB dataset, scaled).

The paper's IMDB dataset has exactly 7 entity types over 6.58M entities,
and — the property its Section 5 leans on — "the knowledge graph contains
only paths of length at most three", so a d = 3 index is exact and results
are identical for any d > 3.

This generator emits the same shape: a three-level DAG

    Movie -> Character -> Person        (longest chain: 3 nodes)
    Movie -> {Person, Company, Genre, Country, Year}

with multi-valued casts, zipf-popular people/companies, and free-text
rating attributes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.synthetic import make_vocabulary, sample_phrase, zipf_choice
from repro.kg.graph import KnowledgeGraph

IMDB_TYPES = (
    "Movie",
    "Person",
    "Character",
    "Company",
    "Genre",
    "Country",
    "Year",
)

GENRES = (
    "action", "comedy", "drama", "thriller", "romance",
    "horror", "documentary", "western", "animation", "crime",
)


@dataclass
class ImdbConfig:
    """Knobs for :func:`generate_imdb_graph`."""

    num_movies: int = 600
    num_people: int = 800
    num_companies: int = 60
    num_countries: int = 25
    num_years: int = 40
    vocabulary_size: int = 300
    actors_per_movie: int = 3
    characters_per_movie: int = 2
    word_alpha: float = 0.9
    people_alpha: float = 0.9
    seed: int = 0


def generate_imdb_graph(config: ImdbConfig = ImdbConfig()) -> KnowledgeGraph:
    """Generate a seeded IMDB-like knowledge graph (7 types, DAG depth 3)."""
    rng = random.Random(config.seed)
    vocabulary = make_vocabulary(rng, config.vocabulary_size)
    graph = KnowledgeGraph()
    for type_name in IMDB_TYPES:
        graph.intern_type(type_name)

    people = [
        graph.add_node(
            "Person",
            sample_phrase(rng, vocabulary, 2, 2, config.word_alpha).title(),
        )
        for _ in range(config.num_people)
    ]
    companies = [
        graph.add_node(
            "Company",
            sample_phrase(rng, vocabulary, 1, 2, config.word_alpha).title()
            + " Pictures",
        )
        for _ in range(config.num_companies)
    ]
    genres = [graph.add_node("Genre", name.title()) for name in GENRES]
    countries = [
        graph.add_node(
            "Country",
            sample_phrase(rng, vocabulary, 1, 1, config.word_alpha).title(),
        )
        for _ in range(config.num_countries)
    ]
    years = [
        graph.add_node("Year", str(1970 + i)) for i in range(config.num_years)
    ]

    for _ in range(config.num_movies):
        title = sample_phrase(rng, vocabulary, 1, 4, config.word_alpha).title()
        movie = graph.add_node("Movie", title)

        cast = set()
        for _ in range(rng.randint(1, config.actors_per_movie)):
            actor = zipf_choice(rng, people, config.people_alpha)
            if actor not in cast:
                cast.add(actor)
                graph.add_edge(movie, "Actor", actor)
        director = zipf_choice(rng, people, config.people_alpha)
        graph.add_edge(movie, "Director", director)

        for _ in range(rng.randint(0, config.characters_per_movie)):
            name = sample_phrase(rng, vocabulary, 1, 2, config.word_alpha)
            character = graph.add_node("Character", name.title())
            graph.add_edge(movie, "Character", character)
            player = zipf_choice(rng, people, config.people_alpha)
            graph.add_edge(character, "Played by", player)

        graph.add_edge(movie, "Produced by", rng.choice(companies))
        graph.add_edge(movie, "Genre", zipf_choice(rng, genres, 0.8))
        graph.add_edge(movie, "Country", zipf_choice(rng, countries, 0.8))
        graph.add_edge(movie, "Year", rng.choice(years))

        rating = graph.add_text_node(f"{rng.randint(10, 99) / 10:.1f} rating")
        graph.add_edge(movie, "Rating", rating)
    return graph
