"""Knowledge-base loaders: JSON infobox documents, CSV relations, N-Triples."""

from repro.kg.loaders.csvkb import load_csv_kb, load_csv_relations
from repro.kg.loaders.jsonkb import dump_json_kb, load_json_kb, save_json_kb
from repro.kg.loaders.ntriples import (
    iri_local_name,
    load_ntriples,
    parse_ntriples,
)

__all__ = [
    "dump_json_kb",
    "iri_local_name",
    "load_csv_kb",
    "load_csv_relations",
    "load_json_kb",
    "load_ntriples",
    "parse_ntriples",
    "save_json_kb",
]
