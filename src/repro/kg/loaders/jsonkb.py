"""JSON infobox-style knowledge-base loader.

Mirrors the paper's Wikipedia-infobox framing (Figure 1(a)-(c)): each entity
is a JSON object with a type and a mapping of attributes to values.  Values
may be strings (plain text), ``{"ref": "Entity Name"}`` objects (entity
references), or lists mixing both (multi-valued attributes).

Document format::

    {
      "types": {"Software": "Software", "Company": "Company"},
      "attribute_types": {"Developer": "Developer"},
      "entities": [
        {
          "name": "SQL Server",
          "type": "Software",
          "text": "SQL Server",            // optional, defaults to name
          "attributes": {
            "Developer": {"ref": "Microsoft"},
            "Written in": "C++"
          }
        },
        ...
      ]
    }

``types``/``attribute_types`` are optional and only needed to attach custom
text descriptions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.core.errors import LoaderError
from repro.kg.entity import EntityRef, TextValue
from repro.kg.knowledge_base import KnowledgeBase


def load_json_kb(source: Union[str, Path, Dict[str, Any]]) -> KnowledgeBase:
    """Load a knowledge base from a JSON file path, JSON string, or dict."""
    document = _coerce_document(source)
    if not isinstance(document, dict):
        raise LoaderError("JSON KB document must be an object at top level")

    kb = KnowledgeBase()
    for name, text in _mapping(document.get("types", {}), "types").items():
        kb.declare_entity_type(name, text)
    attr_types = _mapping(document.get("attribute_types", {}), "attribute_types")
    for name, text in attr_types.items():
        kb.declare_attribute_type(name, text)

    entities = document.get("entities")
    if not isinstance(entities, list):
        raise LoaderError('JSON KB document must have an "entities" list')

    # First pass declares entities so forward references resolve.
    for i, record in enumerate(entities):
        if not isinstance(record, dict):
            raise LoaderError(f"entity #{i} is not an object: {record!r}")
        name = record.get("name")
        type_name = record.get("type")
        if not isinstance(name, str) or not isinstance(type_name, str):
            raise LoaderError(
                f'entity #{i} must have string "name" and "type": {record!r}'
            )
        kb.add_entity(name, type_name, record.get("text", ""))

    for record in entities:
        attributes = record.get("attributes", {})
        if not isinstance(attributes, dict):
            raise LoaderError(
                f"entity {record['name']!r} attributes must be an object"
            )
        for attr_name, raw in attributes.items():
            for value in _coerce_values(record["name"], attr_name, raw):
                kb.set_attribute(record["name"], attr_name, value)
    return kb


def dump_json_kb(kb: KnowledgeBase) -> Dict[str, Any]:
    """Serialize a knowledge base back to the loader's document format."""
    document: Dict[str, Any] = {
        "types": {t.name: t.text for t in kb.entity_types()},
        "attribute_types": {a.name: a.text for a in kb.attribute_types()},
        "entities": [],
    }
    for entity in kb.entities():
        attributes: Dict[str, Any] = {}
        for attr_name, values in entity.attributes.items():
            encoded: List[Any] = []
            for value in values:
                if isinstance(value, EntityRef):
                    encoded.append({"ref": value.name})
                else:
                    encoded.append(value.text)
            attributes[attr_name] = encoded if len(encoded) > 1 else encoded[0]
        document["entities"].append(
            {
                "name": entity.name,
                "type": entity.type_name,
                "text": entity.text,
                "attributes": attributes,
            }
        )
    return document


def save_json_kb(kb: KnowledgeBase, path: Union[str, Path]) -> None:
    """Write ``kb`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(dump_json_kb(kb), indent=2))


def _coerce_document(source: Union[str, Path, Dict[str, Any]]) -> Any:
    if isinstance(source, dict):
        return source
    if isinstance(source, Path):
        return json.loads(source.read_text())
    if isinstance(source, str):
        stripped = source.lstrip()
        if stripped.startswith("{"):
            try:
                return json.loads(source)
            except json.JSONDecodeError as exc:
                raise LoaderError(f"invalid JSON document: {exc}") from exc
        path = Path(source)
        if not path.exists():
            raise LoaderError(f"no such file: {source!r}")
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise LoaderError(f"invalid JSON in {source!r}: {exc}") from exc
    raise LoaderError(f"unsupported JSON KB source: {type(source).__name__}")


def _mapping(raw: Any, field: str) -> Dict[str, str]:
    if not isinstance(raw, dict):
        raise LoaderError(f'"{field}" must be an object of name -> text')
    out = {}
    for key, value in raw.items():
        if not isinstance(key, str) or not isinstance(value, str):
            raise LoaderError(f'"{field}" entries must be strings')
        out[key] = value
    return out


def _coerce_values(entity: str, attr: str, raw: Any) -> List[Any]:
    values = raw if isinstance(raw, list) else [raw]
    out = []
    for value in values:
        if isinstance(value, str):
            out.append(TextValue(value))
        elif isinstance(value, dict) and set(value) == {"ref"}:
            if not isinstance(value["ref"], str):
                raise LoaderError(
                    f"{entity!r}.{attr!r}: ref must be a string, "
                    f"got {value['ref']!r}"
                )
            out.append(EntityRef(value["ref"]))
        elif isinstance(value, (int, float)):
            out.append(TextValue(str(value)))
        else:
            raise LoaderError(
                f"{entity!r}.{attr!r}: unsupported value {value!r}"
            )
    return out
