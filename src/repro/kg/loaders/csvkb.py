"""CSV relation loader.

Specialized knowledge bases like IMDB and DBLP ship as relational tables.
This loader ingests two kinds of CSV files:

* an **entity file** with columns ``name,type[,text]``;
* a **relation file** with columns ``source,attribute,target[,kind]`` where
  ``kind`` is ``ref`` (default) for entity references or ``text`` for plain
  text values.

Both accept file paths or already-open iterables of rows.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.core.errors import LoaderError
from repro.kg.entity import EntityRef, TextValue
from repro.kg.knowledge_base import KnowledgeBase

Source = Union[str, Path, Iterable[Sequence[str]]]


def _rows(source: Source, what: str) -> List[Sequence[str]]:
    if isinstance(source, (str, Path)):
        path = Path(source)
        if not path.exists():
            raise LoaderError(f"no such {what} file: {str(source)!r}")
        with open(path, newline="") as handle:
            return [row for row in csv.reader(handle) if row]
    if isinstance(source, io.TextIOBase):
        return [row for row in csv.reader(source) if row]
    return [list(row) for row in source if row]


def _skip_header(rows: List[Sequence[str]], header: Sequence[str]) -> List[Sequence[str]]:
    if rows and [cell.strip().lower() for cell in rows[0][: len(header)]] == list(header):
        return rows[1:]
    return rows


def load_csv_kb(
    entities: Source,
    relations: Optional[Source] = None,
    kb: Optional[KnowledgeBase] = None,
) -> KnowledgeBase:
    """Load entities (and optionally relations) into a knowledge base.

    Pass an existing ``kb`` to merge several files.
    """
    kb = kb if kb is not None else KnowledgeBase()
    rows = _skip_header(_rows(entities, "entity"), ("name", "type"))
    for i, row in enumerate(rows):
        if len(row) < 2:
            raise LoaderError(f"entity row #{i} needs name,type: {row!r}")
        name, type_name = row[0].strip(), row[1].strip()
        text = row[2].strip() if len(row) > 2 else ""
        if not name or not type_name:
            raise LoaderError(f"entity row #{i} has empty name or type: {row!r}")
        kb.add_entity(name, type_name, text)
    if relations is not None:
        load_csv_relations(relations, kb)
    return kb


def load_csv_relations(relations: Source, kb: KnowledgeBase) -> int:
    """Add relation rows to an existing knowledge base; returns the count."""
    rows = _skip_header(
        _rows(relations, "relation"), ("source", "attribute", "target")
    )
    count = 0
    for i, row in enumerate(rows):
        if len(row) < 3:
            raise LoaderError(
                f"relation row #{i} needs source,attribute,target: {row!r}"
            )
        source, attribute, target = (cell.strip() for cell in row[:3])
        kind = row[3].strip().lower() if len(row) > 3 and row[3].strip() else "ref"
        if kind == "ref":
            value: Union[EntityRef, TextValue] = EntityRef(target)
        elif kind == "text":
            value = TextValue(target)
        else:
            raise LoaderError(
                f"relation row #{i}: kind must be 'ref' or 'text', got {kind!r}"
            )
        kb.set_attribute(source, attribute, value)
        count += 1
    return count
