"""Minimal N-Triples loader.

Public knowledge bases (DBPedia, Yago, Freebase dumps) ship as RDF
N-Triples.  This loader parses the common subset — IRIs and plain/typed
literals — and maps triples onto the paper's entity/attribute model:

* ``<s> <rdf:type> <o>``        sets the entity type of ``s``.
* ``<s> <rdfs:label> "text"``   sets the text description of ``s``.
* ``<s> <p> <o>``               becomes attribute ``p`` referring to ``o``.
* ``<s> <p> "literal"``         becomes attribute ``p`` with plain text.

Entity and attribute names are derived from the IRI fragment or last path
segment, with underscores turned into spaces (DBPedia convention, e.g.
``.../resource/Bill_Gates`` -> "Bill Gates").

This is intentionally not a full RDF stack (no prefixes/blank-node graphs —
N-Triples has neither; no datatype semantics); it exists so the library can
ingest real public dumps without rdflib.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Optional, Tuple, Union

from repro.core.errors import LoaderError
from repro.kg.entity import EntityRef, TextValue
from repro.kg.knowledge_base import KnowledgeBase

RDF_TYPE = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
RDFS_LABEL = "http://www.w3.org/2000/01/rdf-schema#label"

DEFAULT_TYPE_NAME = "Thing"

_IRI = r"<([^<>\s]*)>"
_LITERAL = r'"((?:[^"\\]|\\.)*)"(?:\^\^<[^<>\s]*>|@[A-Za-z][A-Za-z0-9-]*)?'
_BNODE = r"(_:[A-Za-z0-9]+)"
_TRIPLE_RE = re.compile(
    rf"^\s*{_IRI}\s+{_IRI}\s+(?:{_IRI}|{_LITERAL}|{_BNODE})\s*\.\s*$"
)

_ESCAPES = {
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
    '\\"': '"',
    "\\\\": "\\",
}


def iri_local_name(iri: str) -> str:
    """Human-readable name of an IRI: fragment or last path segment.

    >>> iri_local_name("http://dbpedia.org/resource/Bill_Gates")
    'Bill Gates'
    """
    if "#" in iri:
        local = iri.rsplit("#", 1)[1]
    else:
        local = iri.rstrip("/").rsplit("/", 1)[-1]
    return local.replace("_", " ") or iri


def _unescape(literal: str) -> str:
    out = literal
    for escaped, plain in _ESCAPES.items():
        out = out.replace(escaped, plain)
    return out


def parse_ntriples(
    lines: Iterable[str],
) -> Iterable[Tuple[str, str, str, bool]]:
    """Yield ``(subject, predicate, object, object_is_iri)`` tuples.

    Blank lines and ``#`` comments are skipped.  Malformed lines raise
    :class:`LoaderError` with the line number.  Triples with blank-node
    subjects are not supported (knowledge bases name their entities); blank
    objects are skipped since they carry no text to match.
    """
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        match = _TRIPLE_RE.match(stripped)
        if match is None:
            raise LoaderError(f"line {lineno}: not a valid N-Triple: {line!r}")
        subject, predicate, obj_iri, obj_literal, obj_bnode = match.groups()
        if obj_bnode is not None:
            continue
        if obj_iri is not None:
            yield subject, predicate, obj_iri, True
        else:
            yield subject, predicate, _unescape(obj_literal), False


def load_ntriples(
    source: Union[str, Path, Iterable[str]],
    default_type: str = DEFAULT_TYPE_NAME,
    max_triples: Optional[int] = None,
) -> KnowledgeBase:
    """Load a knowledge base from N-Triples.

    ``source`` may be a file path or an iterable of lines.  ``max_triples``
    truncates large dumps (useful for laptop-scale experimentation).
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        if not path.exists():
            raise LoaderError(f"no such file: {str(source)!r}")
        lines: Iterable[str] = path.read_text().splitlines()
    else:
        lines = source

    kb = KnowledgeBase()
    kb.declare_entity_type(default_type)
    pending = []  # (subject_iri, attr_name, object_iri_or_TextValue)
    types = {}  # subject iri -> type name
    labels = {}  # subject iri -> label text
    iris = []  # insertion-ordered iris needing entities (subjects first)
    seen_iris = set()

    def note_iri(iri: str) -> None:
        if iri not in seen_iris:
            seen_iris.add(iri)
            iris.append(iri)

    count = 0
    for subject, predicate, obj, obj_is_iri in parse_ntriples(lines):
        count += 1
        if max_triples is not None and count > max_triples:
            break
        note_iri(subject)
        if predicate == RDF_TYPE and obj_is_iri:
            types[subject] = iri_local_name(obj)
        elif predicate == RDFS_LABEL and not obj_is_iri:
            labels[subject] = obj
        elif obj_is_iri:
            note_iri(obj)
            pending.append((subject, iri_local_name(predicate), obj))
        else:
            pending.append((subject, iri_local_name(predicate), TextValue(obj)))

    # One entity per IRI; distinct IRIs with colliding local names get a
    # numeric suffix so both survive.
    name_of_iri = {}
    taken = set()
    for iri in iris:
        name = iri_local_name(iri)
        candidate = name
        suffix = 2
        while candidate in taken:
            candidate = f"{name} ({suffix})"
            suffix += 1
        taken.add(candidate)
        name_of_iri[iri] = candidate
        kb.add_entity(
            candidate, types.get(iri, default_type), labels.get(iri, candidate)
        )

    for subject, attr_name, value in pending:
        if not isinstance(value, TextValue):
            value = EntityRef(name_of_iri[value])
        kb.set_attribute(name_of_iri[subject], attr_name, value)
    return kb
