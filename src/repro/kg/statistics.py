"""Descriptive statistics of a knowledge graph.

Used by the benchmark harness to report dataset shapes alongside results
(the paper reports entity/type/edge counts for Wiki and IMDB in Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.kg.graph import KnowledgeGraph


@dataclass
class GraphStatistics:
    """Summary counts and degree statistics for a knowledge graph."""

    num_nodes: int
    num_entity_nodes: int
    num_text_nodes: int
    num_edges: int
    num_types: int
    num_attrs: int
    max_out_degree: int
    mean_out_degree: float
    max_in_degree: int
    longest_path_bound: int
    type_histogram: Dict[str, int] = field(default_factory=dict)

    def format(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"nodes:        {self.num_nodes} "
            f"({self.num_entity_nodes} entities, {self.num_text_nodes} text)",
            f"edges:        {self.num_edges}",
            f"types:        {self.num_types}",
            f"attributes:   {self.num_attrs}",
            f"out-degree:   max {self.max_out_degree}, "
            f"mean {self.mean_out_degree:.2f}",
            f"in-degree:    max {self.max_in_degree}",
            f"path bound:   {self.longest_path_bound}",
        ]
        top = sorted(self.type_histogram.items(), key=lambda kv: -kv[1])[:8]
        if top:
            lines.append(
                "top types:    "
                + ", ".join(f"{name}={count}" for name, count in top)
            )
        return "\n".join(lines)


def compute_statistics(graph: KnowledgeGraph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``graph``.

    ``longest_path_bound`` is the length (in nodes) of the longest directed
    path when the graph is a DAG, or ``num_nodes`` when it has a cycle; the
    paper uses this to argue d = 3 suffices for IMDB ("the knowledge graph
    contains only paths of length at most three").
    """
    n = graph.num_nodes
    out_degrees = [graph.out_degree(v) for v in graph.nodes()]
    in_degrees = [graph.in_degree(v) for v in graph.nodes()]
    histogram: Dict[str, int] = {}
    text_nodes = 0
    for v in graph.nodes():
        name = graph.node_type_name(v)
        histogram[name] = histogram.get(name, 0) + 1
        if not graph.node_is_entity(v):
            text_nodes += 1
    return GraphStatistics(
        num_nodes=n,
        num_entity_nodes=n - text_nodes,
        num_text_nodes=text_nodes,
        num_edges=graph.num_edges,
        num_types=graph.num_types,
        num_attrs=graph.num_attrs,
        max_out_degree=max(out_degrees, default=0),
        mean_out_degree=(sum(out_degrees) / n) if n else 0.0,
        max_in_degree=max(in_degrees, default=0),
        longest_path_bound=longest_path_length(graph),
        type_histogram=histogram,
    )


def longest_path_length(graph: KnowledgeGraph) -> int:
    """Longest directed path (node count) if a DAG, else ``num_nodes``.

    Computed by DP over a topological order; cycle detection falls back to
    the trivial bound.
    """
    n = graph.num_nodes
    if n == 0:
        return 0
    in_degree = [graph.in_degree(v) for v in graph.nodes()]
    queue: List[int] = [v for v in graph.nodes() if in_degree[v] == 0]
    longest = [1] * n
    visited = 0
    head = 0
    while head < len(queue):
        v = queue[head]
        head += 1
        visited += 1
        for _attr, target in graph.out_edges(v):
            if longest[v] + 1 > longest[target]:
                longest[target] = longest[v] + 1
            in_degree[target] -= 1
            if in_degree[target] == 0:
                queue.append(target)
    if visited < n:
        return n  # contains a cycle
    return max(longest)
