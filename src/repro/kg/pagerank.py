"""PageRank over the knowledge graph (scoring component 2, Section 2.2.3).

The paper specifies the classic iterative update with damping a = 0.85::

    PR(v) <- (1 - a) / |V| + a * sum_{(u,v) in E} PR(u) / OutDegree(u)

initialized at 1/|V| and iterated until every node changes by less than
1e-8.  Note this variant (as written in the paper) lets the rank mass of
dangling nodes leak rather than redistributing it; we follow the paper and
offer redistribution as an option.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.errors import GraphError
from repro.kg.graph import KnowledgeGraph

DEFAULT_DAMPING = 0.85
DEFAULT_TOLERANCE = 1e-8
DEFAULT_MAX_ITERATIONS = 500


def pagerank(
    graph: KnowledgeGraph,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    redistribute_dangling: bool = False,
) -> List[float]:
    """Compute PageRank scores for every node of ``graph``.

    Parameters
    ----------
    graph:
        The knowledge graph; edge direction is followed (a link from u to v
        transfers rank from u to v).
    damping:
        The damping factor ``a`` (paper: 0.85).  Must lie in (0, 1).
    tolerance:
        Convergence threshold on the maximum per-node change (paper: 1e-8).
    max_iterations:
        Safety cap; :class:`GraphError` is raised if not converged, because
        un-converged scores would silently skew every experiment downstream.
    redistribute_dangling:
        When True, rank of zero-out-degree nodes is spread uniformly (the
        textbook fix).  Default False follows the paper's formula verbatim.

    Returns
    -------
    A list of floats indexed by node id.
    """
    if not 0.0 < damping < 1.0:
        raise GraphError(f"damping must be in (0, 1), got {damping}")
    n = graph.num_nodes
    if n == 0:
        return []

    sources = np.empty(graph.num_edges, dtype=np.int64)
    targets = np.empty(graph.num_edges, dtype=np.int64)
    i = 0
    for node in graph.nodes():
        for _attr, target in graph.out_edges(node):
            sources[i] = node
            targets[i] = target
            i += 1
    out_degree = np.zeros(n, dtype=np.float64)
    np.add.at(out_degree, sources, 1.0)
    dangling_mask = out_degree == 0.0
    safe_out = np.where(dangling_mask, 1.0, out_degree)

    rank = np.full(n, 1.0 / n, dtype=np.float64)
    base = (1.0 - damping) / n
    for _ in range(max_iterations):
        contribution = damping * rank / safe_out
        new_rank = np.full(n, base, dtype=np.float64)
        if len(sources):
            np.add.at(new_rank, targets, contribution[sources])
        if redistribute_dangling:
            leaked = damping * rank[dangling_mask].sum()
            new_rank += leaked / n
        delta = np.abs(new_rank - rank).max()
        rank = new_rank
        if delta < tolerance:
            return rank.tolist()
    raise GraphError(
        f"PageRank did not converge within {max_iterations} iterations "
        f"(last delta {delta:.3e}, tolerance {tolerance:.3e})"
    )


def uniform_scores(graph: KnowledgeGraph, value: float = 1.0) -> List[float]:
    """Constant importance scores.

    Example 2.4 of the paper walks through scoring "assuming every node has
    the same PageRank score 1"; tests reproducing that example use this.
    """
    return [value] * graph.num_nodes


def normalized_pagerank(
    graph: KnowledgeGraph,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> List[float]:
    """PageRank rescaled so the *mean* score is 1.0.

    Raw PageRank values are O(1/|V|); rescaling keeps the magnitude of the
    score2 component comparable across graph sizes, which stabilizes the
    scalability experiments (Figure 10) where the same queries run against
    graphs of different sizes.
    """
    scores = pagerank(graph, damping, tolerance, max_iterations)
    if not scores:
        return scores
    mean = sum(scores) / len(scores)
    if mean <= 0.0:  # pragma: no cover - mean is positive by construction
        return scores
    return [s / mean for s in scores]


def top_ranked_nodes(
    graph: KnowledgeGraph, scores: Optional[List[float]] = None, k: int = 10
) -> List[int]:
    """The ``k`` highest-PageRank node ids (ties broken by node id)."""
    if scores is None:
        scores = pagerank(graph)
    order = sorted(graph.nodes(), key=lambda v: (-scores[v], v))
    return order[:k]
