"""The knowledge graph ``G = (V, E, tau, alpha)`` (Section 2.1).

Nodes are entities (plus dummy nodes materialized from plain-text attribute
values), labeled with an entity type; directed edges are attributes, labeled
with an attribute type.  Every node, entity type, and attribute type carries
a text description used for keyword matching.

All identifiers are interned to dense integers; the hot paths (path
enumeration, index construction, search) never touch strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import GraphError
from repro.core.types import AttrId, NodeId, TypeId

#: Reserved type name for dummy nodes created from plain-text attribute
#: values.  Its text description is empty so no keyword ever matches the
#: *type* of a text node (the node's own text is still matchable).
TEXT_TYPE_NAME = "Text"


@dataclass(frozen=True)
class Edge:
    """A directed, attribute-labeled edge ``source --attr--> target``."""

    source: NodeId
    attr: AttrId
    target: NodeId


class KnowledgeGraph:
    """Mutable directed graph with typed nodes and attribute-typed edges.

    Construction is append-only: nodes and edges may be added but not
    removed (removal is never needed by the algorithms; scalability
    experiments use :meth:`induced_subgraph` instead).

    Parallel edges with distinct attribute types are allowed (an entity can
    both "direct" and "produce" a movie).  Exact duplicate edges (same
    source, attribute, and target) are rejected: they would duplicate rows
    in every table answer.
    """

    def __init__(self) -> None:
        self._type_names: List[str] = []
        self._type_texts: List[str] = []
        self._type_ids: Dict[str, TypeId] = {}

        self._attr_names: List[str] = []
        self._attr_texts: List[str] = []
        self._attr_ids: Dict[str, AttrId] = {}

        self._node_types: List[TypeId] = []
        self._node_texts: List[str] = []
        self._node_is_entity: List[bool] = []

        self._out: List[List[Tuple[AttrId, NodeId]]] = []
        self._in: List[List[Tuple[AttrId, NodeId]]] = []
        self._edge_set: set = set()
        self._num_edges = 0

        self._nodes_by_type: Dict[TypeId, List[NodeId]] = {}
        self._edges_by_attr: Optional[Dict[AttrId, List[Tuple[NodeId, NodeId]]]] = None

    # ------------------------------------------------------------ type layer

    def intern_type(self, name: str, text: Optional[str] = None) -> TypeId:
        """Return the id of entity type ``name``, creating it if needed."""
        tid = self._type_ids.get(name)
        if tid is not None:
            return tid
        tid = len(self._type_names)
        self._type_ids[name] = tid
        self._type_names.append(name)
        self._type_texts.append(name if text is None else text)
        return tid

    def intern_attr(self, name: str, text: Optional[str] = None) -> AttrId:
        """Return the id of attribute type ``name``, creating it if needed."""
        aid = self._attr_ids.get(name)
        if aid is not None:
            return aid
        aid = len(self._attr_names)
        self._attr_ids[name] = aid
        self._attr_names.append(name)
        self._attr_texts.append(name if text is None else text)
        return aid

    def type_id(self, name: str) -> TypeId:
        try:
            return self._type_ids[name]
        except KeyError:
            raise GraphError(f"unknown entity type {name!r}") from None

    def attr_id(self, name: str) -> AttrId:
        try:
            return self._attr_ids[name]
        except KeyError:
            raise GraphError(f"unknown attribute type {name!r}") from None

    def type_name(self, tid: TypeId) -> str:
        return self._type_names[tid]

    def type_text(self, tid: TypeId) -> str:
        return self._type_texts[tid]

    def attr_name(self, aid: AttrId) -> str:
        return self._attr_names[aid]

    def attr_text(self, aid: AttrId) -> str:
        return self._attr_texts[aid]

    @property
    def num_types(self) -> int:
        return len(self._type_names)

    @property
    def num_attrs(self) -> int:
        return len(self._attr_names)

    def type_ids(self) -> range:
        return range(len(self._type_names))

    def attr_ids(self) -> range:
        return range(len(self._attr_names))

    # ------------------------------------------------------------ node layer

    def add_node(
        self, type_name: str, text: str, is_entity: bool = True
    ) -> NodeId:
        """Add a node of type ``type_name`` with text description ``text``."""
        tid = self.intern_type(type_name)
        return self.add_node_typed(tid, text, is_entity)

    def add_node_typed(
        self, tid: TypeId, text: str, is_entity: bool = True
    ) -> NodeId:
        """Add a node whose type is already interned (hot-path variant)."""
        if not 0 <= tid < len(self._type_names):
            raise GraphError(f"type id {tid} out of range")
        node = len(self._node_types)
        self._node_types.append(tid)
        self._node_texts.append(text)
        self._node_is_entity.append(is_entity)
        self._out.append([])
        self._in.append([])
        self._nodes_by_type.setdefault(tid, []).append(node)
        return node

    def add_text_node(self, text: str) -> NodeId:
        """Add a dummy node for a plain-text attribute value."""
        tid = self.intern_type(TEXT_TYPE_NAME, text="")
        return self.add_node_typed(tid, text, is_entity=False)

    @property
    def num_nodes(self) -> int:
        return len(self._node_types)

    def nodes(self) -> range:
        return range(len(self._node_types))

    def node_type(self, node: NodeId) -> TypeId:
        return self._node_types[node]

    def node_text(self, node: NodeId) -> str:
        return self._node_texts[node]

    def node_is_entity(self, node: NodeId) -> bool:
        return self._node_is_entity[node]

    def node_type_name(self, node: NodeId) -> str:
        return self._type_names[self._node_types[node]]

    def nodes_of_type(self, tid: TypeId) -> Sequence[NodeId]:
        return self._nodes_by_type.get(tid, ())

    # ------------------------------------------------------------ edge layer

    def add_edge(self, source: NodeId, attr_name: str, target: NodeId) -> None:
        """Add edge ``source --attr_name--> target``."""
        self.add_edge_typed(source, self.intern_attr(attr_name), target)

    def add_edge_typed(
        self, source: NodeId, attr: AttrId, target: NodeId
    ) -> None:
        """Add an edge whose attribute type is already interned."""
        n = len(self._node_types)
        if not (0 <= source < n and 0 <= target < n):
            raise GraphError(
                f"edge ({source}, {target}) references unknown node; "
                f"graph has {n} nodes"
            )
        if not 0 <= attr < len(self._attr_names):
            raise GraphError(f"attribute id {attr} out of range")
        key = (source, attr, target)
        if key in self._edge_set:
            raise GraphError(
                f"duplicate edge {self._attr_names[attr]!r} "
                f"from node {source} to node {target}"
            )
        self._edge_set.add(key)
        self._out[source].append((attr, target))
        self._in[target].append((attr, source))
        self._num_edges += 1
        self._edges_by_attr = None  # invalidate the lazy per-attribute cache

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def out_edges(self, node: NodeId) -> Sequence[Tuple[AttrId, NodeId]]:
        """Outgoing ``(attr_id, target)`` pairs of ``node``."""
        return self._out[node]

    def in_edges(self, node: NodeId) -> Sequence[Tuple[AttrId, NodeId]]:
        """Incoming ``(attr_id, source)`` pairs of ``node``."""
        return self._in[node]

    def out_degree(self, node: NodeId) -> int:
        return len(self._out[node])

    def in_degree(self, node: NodeId) -> int:
        return len(self._in[node])

    def has_edge(self, source: NodeId, attr: AttrId, target: NodeId) -> bool:
        return (source, attr, target) in self._edge_set

    def edges_with_attr(self, attr: AttrId) -> Sequence[Tuple[NodeId, NodeId]]:
        """All ``(source, target)`` pairs carrying attribute ``attr``.

        Built lazily and cached; used by the baseline's backward search to
        seed reverse walks from keyword-matched attribute types.
        """
        if self._edges_by_attr is None:
            by_attr: Dict[AttrId, List[Tuple[NodeId, NodeId]]] = {}
            for source, adjacency in enumerate(self._out):
                for edge_attr, target in adjacency:
                    by_attr.setdefault(edge_attr, []).append((source, target))
            self._edges_by_attr = by_attr
        return self._edges_by_attr.get(attr, ())

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges (in insertion order per source node)."""
        for source, adjacency in enumerate(self._out):
            for attr, target in adjacency:
                yield Edge(source, attr, target)

    # -------------------------------------------------------------- utilities

    def induced_subgraph(self, keep_nodes: Iterable[NodeId]) -> "KnowledgeGraph":
        """Subgraph induced by ``keep_nodes`` (used by Exp-III / Figure 10).

        Type and attribute tables are copied wholesale so type ids remain
        comparable across the original and the subgraph; node ids are
        re-interned densely.
        """
        keep = sorted(set(keep_nodes))
        sub = KnowledgeGraph()
        sub._type_names = list(self._type_names)
        sub._type_texts = list(self._type_texts)
        sub._type_ids = dict(self._type_ids)
        sub._attr_names = list(self._attr_names)
        sub._attr_texts = list(self._attr_texts)
        sub._attr_ids = dict(self._attr_ids)
        remap: Dict[NodeId, NodeId] = {}
        for old in keep:
            if not 0 <= old < self.num_nodes:
                raise GraphError(f"node {old} not in graph")
            remap[old] = sub.add_node_typed(
                self._node_types[old],
                self._node_texts[old],
                self._node_is_entity[old],
            )
        for old in keep:
            for attr, target in self._out[old]:
                new_target = remap.get(target)
                if new_target is not None:
                    sub.add_edge_typed(remap[old], attr, new_target)
        return sub

    def __repr__(self) -> str:
        return (
            f"KnowledgeGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"types={self.num_types}, attrs={self.num_attrs})"
        )
