"""The :class:`KnowledgeBase` container.

A knowledge base is the user-facing input format: named entities with typed
attributes whose values are entity references or plain text (Figure 1(a)-(c)
in the paper).  It validates referential integrity and is converted to a
:class:`repro.kg.graph.KnowledgeGraph` by :mod:`repro.kg.builder`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.core.errors import KnowledgeBaseError
from repro.kg.entity import (
    AttributeType,
    AttributeValue,
    Entity,
    EntityRef,
    EntityType,
    TextValue,
)


class KnowledgeBase:
    """A collection of entities, entity types, and attribute types.

    Entities and types are keyed by name.  Types may be declared explicitly
    (to attach a custom ``text`` description) or implicitly the first time
    an entity or attribute uses them.

    Example
    -------
    >>> kb = KnowledgeBase()
    >>> kb.add_entity("SQL Server", "Software")
    Entity(name='SQL Server', ...)
    >>> kb.add_entity("Microsoft", "Company")
    Entity(name='Microsoft', ...)
    >>> kb.set_attribute("SQL Server", "Developer", EntityRef("Microsoft"))
    >>> kb.set_attribute("Microsoft", "Revenue", TextValue("US$ 77 billion"))
    """

    def __init__(self) -> None:
        self._entities: Dict[str, Entity] = {}
        self._entity_types: Dict[str, EntityType] = {}
        self._attribute_types: Dict[str, AttributeType] = {}

    # ------------------------------------------------------------------ types

    def declare_entity_type(self, name: str, text: str = "") -> EntityType:
        """Register an entity type, or return the existing one.

        Redeclaring with a different explicit ``text`` is an error: the
        text feeds keyword matching, so silent changes would corrupt
        indexes.  An empty ``text`` (the default, used by implicit
        declarations from :meth:`add_entity`) never conflicts.
        """
        existing = self._entity_types.get(name)
        if existing is not None:
            if text and existing.text != text:
                raise KnowledgeBaseError(
                    f"entity type {name!r} redeclared with different text "
                    f"({existing.text!r} vs {text!r})"
                )
            return existing
        declared = EntityType(name, text)
        self._entity_types[name] = declared
        return declared

    def declare_attribute_type(self, name: str, text: str = "") -> AttributeType:
        """Register an attribute type, or return the existing one."""
        existing = self._attribute_types.get(name)
        if existing is not None:
            if text and existing.text != text:
                raise KnowledgeBaseError(
                    f"attribute type {name!r} redeclared with different text "
                    f"({existing.text!r} vs {text!r})"
                )
            return existing
        declared = AttributeType(name, text)
        self._attribute_types[name] = declared
        return declared

    # --------------------------------------------------------------- entities

    def add_entity(
        self, name: str, type_name: str, text: str = ""
    ) -> Entity:
        """Add a new entity; its type is declared implicitly if unknown."""
        if name in self._entities:
            raise KnowledgeBaseError(f"duplicate entity name {name!r}")
        self.declare_entity_type(type_name)
        entity = Entity(name=name, type_name=type_name, text=text)
        self._entities[name] = entity
        return entity

    def set_attribute(
        self, entity_name: str, attr_name: str, value: AttributeValue
    ) -> None:
        """Append an attribute value to an existing entity.

        Accepts :class:`EntityRef` and :class:`TextValue`; a bare string is
        treated as a :class:`TextValue` for convenience.
        """
        entity = self._entities.get(entity_name)
        if entity is None:
            raise KnowledgeBaseError(f"unknown entity {entity_name!r}")
        if isinstance(value, str):
            value = TextValue(value)
        if not isinstance(value, (EntityRef, TextValue)):
            raise KnowledgeBaseError(
                f"attribute value must be EntityRef or TextValue, got {value!r}"
            )
        self.declare_attribute_type(attr_name)
        entity.add_attribute(attr_name, value)

    # ----------------------------------------------------------------- access

    def entity(self, name: str) -> Entity:
        try:
            return self._entities[name]
        except KeyError:
            raise KnowledgeBaseError(f"unknown entity {name!r}") from None

    def has_entity(self, name: str) -> bool:
        return name in self._entities

    def entities(self) -> Iterator[Entity]:
        return iter(self._entities.values())

    def entity_type(self, name: str) -> EntityType:
        try:
            return self._entity_types[name]
        except KeyError:
            raise KnowledgeBaseError(f"unknown entity type {name!r}") from None

    def attribute_type(self, name: str) -> AttributeType:
        try:
            return self._attribute_types[name]
        except KeyError:
            raise KnowledgeBaseError(
                f"unknown attribute type {name!r}"
            ) from None

    def entity_types(self) -> List[EntityType]:
        return list(self._entity_types.values())

    def attribute_types(self) -> List[AttributeType]:
        return list(self._attribute_types.values())

    def __len__(self) -> int:
        return len(self._entities)

    def __contains__(self, name: object) -> bool:
        return name in self._entities

    # ------------------------------------------------------------- validation

    def dangling_references(self) -> List[str]:
        """Names referenced by some attribute but not present as entities."""
        missing = []
        seen = set()
        for entity in self._entities.values():
            for values in entity.attributes.values():
                for value in values:
                    if isinstance(value, EntityRef):
                        if value.name not in self._entities and value.name not in seen:
                            seen.add(value.name)
                            missing.append(value.name)
        return missing

    def validate(self) -> None:
        """Raise :class:`KnowledgeBaseError` if any entity ref is dangling."""
        missing = self.dangling_references()
        if missing:
            preview = ", ".join(repr(m) for m in missing[:5])
            raise KnowledgeBaseError(
                f"{len(missing)} dangling entity reference(s): {preview}"
            )

    # ------------------------------------------------------------ bulk import

    def add_entities(
        self, rows: Iterable, default_type: Optional[str] = None
    ) -> int:
        """Bulk-add entities from ``(name, type_name)`` or ``(name,)`` rows.

        Returns the number of entities added.  Rows with one element use
        ``default_type``.
        """
        count = 0
        for row in rows:
            if isinstance(row, str):
                row = (row,)
            if len(row) == 1:
                if default_type is None:
                    raise KnowledgeBaseError(
                        f"row {row!r} has no type and no default_type was given"
                    )
                self.add_entity(row[0], default_type)
            else:
                self.add_entity(row[0], row[1])
            count += 1
        return count
