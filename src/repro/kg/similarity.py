"""Keyword/text similarity measures.

The paper's third scoring component (Equation 6) is the Jaccard similarity
between a query word and the text description of the node (type) or
attribute type it matched.  Example 2.4: "database" against the entity text
"Relational database" scores 1/2.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Set, Union

TokenSet = Union[Set[str], FrozenSet[str]]


def jaccard(a: TokenSet, b: TokenSet) -> float:
    """Jaccard similarity |a ∩ b| / |a ∪ b| of two token sets.

    Returns 0.0 when both sets are empty (the conventional choice; an empty
    text can never have matched a keyword anyway).

    >>> jaccard({"database"}, {"relational", "database"})
    0.5
    """
    if not a and not b:
        return 0.0
    union = len(a | b)
    if union == 0:
        return 0.0
    return len(a & b) / union


def keyword_similarity(word: str, text_tokens: TokenSet) -> float:
    """Similarity of a single keyword against a text's token set.

    This is ``jaccard({word}, text_tokens)`` which simplifies to
    ``1 / |text_tokens|`` when the word occurs in the text and 0 otherwise —
    matching the paper's worked example (1/6 for a word inside a six-token
    book title).
    """
    if word in text_tokens:
        return 1.0 / len(text_tokens)
    return 0.0


def dice(a: TokenSet, b: TokenSet) -> float:
    """Dice coefficient 2|a ∩ b| / (|a| + |b|); alternative to Jaccard.

    Provided because Section 2.2.3 notes the component functions "can be
    replaced by other functions"; the scoring layer accepts any callable.
    """
    total = len(a) + len(b)
    if total == 0:
        return 0.0
    return 2.0 * len(a & b) / total


def overlap_coefficient(a: TokenSet, b: TokenSet) -> float:
    """Overlap coefficient |a ∩ b| / min(|a|, |b|)."""
    if not a or not b:
        return 0.0
    return len(a & b) / min(len(a), len(b))


def containment(query_tokens: Iterable[str], text_tokens: TokenSet) -> float:
    """Fraction of ``query_tokens`` contained in ``text_tokens``."""
    query = set(query_tokens)
    if not query:
        return 0.0
    return len(query & set(text_tokens)) / len(query)
