"""Tokenization and keyword normalization.

The knowledge graph stores free text on entities, entity types, and
attribute types (``v.text``, ``C.text``, ``A.text`` in the paper).  Both the
index builder and query parsing normalize text through this module so that
a query word matches the same vocabulary the index was built on.

Pipeline: lower-case -> split on non-alphanumeric -> drop stopwords ->
(optionally) Porter-stem.  Stemming is on by default, matching Section 3 of
the paper ("every word has its stemmed version ... in our index").
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from repro.core.errors import QueryError
from repro.kg.stemmer import stem

#: Tokens are alphanumeric runs; intra-word hyphens join a compound into a
#: single token ("O-R database" has two tokens, matching the paper's
#: Example 2.4 similarity arithmetic).
_TOKEN_RE = re.compile(r"[a-z0-9]+(?:-[a-z0-9]+)*")

#: A deliberately small stopword list: the paper's queries are short
#: entity-ish keyword sets, so we only drop glue words that would otherwise
#: pollute the index with huge posting lists.
DEFAULT_STOPWORDS: FrozenSet[str] = frozenset(
    {
        "a", "an", "and", "are", "as", "at", "be", "by", "for", "from",
        "in", "into", "is", "it", "of", "on", "or", "the", "to", "with",
    }
)


def tokenize(text: str) -> List[str]:
    """Split ``text`` into lower-case alphanumeric tokens.

    >>> tokenize("US$ 77 billion")
    ['us', '77', 'billion']
    """
    return _TOKEN_RE.findall(text.lower())


class TextNormalizer:
    """Shared normalizer used by index construction and query parsing.

    Parameters
    ----------
    use_stemming:
        When True (default), tokens are Porter-stemmed.
    stopwords:
        Tokens dropped from both documents and queries.  Pass an empty set
        to keep everything.
    """

    def __init__(
        self,
        use_stemming: bool = True,
        stopwords: Iterable[str] = DEFAULT_STOPWORDS,
    ) -> None:
        self.use_stemming = use_stemming
        self.stopwords = frozenset(w.lower() for w in stopwords)

    def normalize_token(self, token: str) -> str:
        """Normalize one already-tokenized word."""
        token = token.lower()
        if self.use_stemming:
            return stem(token)
        return token

    def tokens(self, text: str) -> List[str]:
        """Tokenize + normalize a text description, dropping stopwords.

        Duplicates are preserved (callers that need sets build them).
        """
        out = []
        for token in tokenize(text):
            if token in self.stopwords:
                continue
            out.append(self.normalize_token(token))
        return out

    def token_set(self, text: str) -> FrozenSet[str]:
        """Normalized token set of a text description."""
        return frozenset(self.tokens(text))

    def parse_query(self, query) -> Tuple[str, ...]:
        """Normalize a keyword query into a tuple of keywords.

        ``query`` may be a whitespace-separated string or a sequence of
        words.  Keywords are normalized exactly like document tokens so that
        lookups hit the index vocabulary.  Duplicate keywords are collapsed
        (asking twice for the same word adds no constraint) while first-seen
        order is preserved.

        Raises
        ------
        QueryError
            If the query is empty after normalization, or contains
            non-string items.
        """
        if isinstance(query, str):
            raw: Sequence[str] = query.split()
        else:
            raw = list(query)
        words = []
        seen = set()
        for item in raw:
            if not isinstance(item, str):
                raise QueryError(f"query words must be strings, got {item!r}")
            for token in tokenize(item):
                if token in self.stopwords:
                    continue
                normalized = self.normalize_token(token)
                if normalized not in seen:
                    seen.add(normalized)
                    words.append(normalized)
        if not words:
            raise QueryError(f"query {query!r} is empty after normalization")
        return tuple(words)


#: Module-level default normalizer (stemming on, default stopwords).
DEFAULT_NORMALIZER = TextNormalizer()
