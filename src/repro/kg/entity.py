"""Knowledge-base value objects: entity types, attribute types, entities.

This is the *pre-graph* layer (Section 2.1 of the paper): a knowledge base
is a collection of entities ``V`` and attributes ``A``; each entity has a
type and a set of attribute values, where a value is either a reference to
another entity or plain text.  :mod:`repro.kg.builder` converts a
:class:`repro.kg.knowledge_base.KnowledgeBase` of these objects into the
directed :class:`repro.kg.graph.KnowledgeGraph` the algorithms run on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union


@dataclass(frozen=True)
class EntityType:
    """An entity type ``C`` with its text description ``C.text``.

    ``name`` is the unique key; ``text`` defaults to the name and is what
    keywords are matched against (e.g. type "Software" matches the keyword
    "software").
    """

    name: str
    text: str = ""

    def __post_init__(self) -> None:
        if not self.text:
            object.__setattr__(self, "text", self.name)


@dataclass(frozen=True)
class AttributeType:
    """An attribute (edge) type ``A`` with its text description ``A.text``."""

    name: str
    text: str = ""

    def __post_init__(self) -> None:
        if not self.text:
            object.__setattr__(self, "text", self.name)


@dataclass(frozen=True)
class EntityRef:
    """An attribute value referring to another entity by name."""

    name: str


@dataclass(frozen=True)
class TextValue:
    """An attribute value that is plain text.

    The graph builder materializes each text value as a dummy node whose
    text description equals the plain text (Section 2.1: "if v.A is plain
    text, we can create a dummy entity with text description exactly the
    same as the plain text").
    """

    text: str


AttributeValue = Union[EntityRef, TextValue]


@dataclass
class Entity:
    """An entity ``v`` with type ``tau(v)``, text ``v.text``, and attributes.

    ``attributes`` maps an attribute-type name to the list of values; a list
    because one attribute may refer to several entities (e.g. "Products" of
    "Microsoft" pointing to both "Windows" and "Bing" — Example 2.1).
    """

    name: str
    type_name: str
    text: str = ""
    attributes: Dict[str, List[AttributeValue]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.text:
            self.text = self.name

    def add_attribute(self, attr_name: str, value: AttributeValue) -> None:
        """Append one value to attribute ``attr_name``."""
        self.attributes.setdefault(attr_name, []).append(value)

    def attribute_names(self) -> List[str]:
        """The subset of attributes this entity has values for (A(v))."""
        return list(self.attributes)
