"""Knowledge-base and knowledge-graph substrate (Section 2.1 of the paper)."""

from repro.kg.builder import build_graph
from repro.kg.entity import (
    AttributeType,
    Entity,
    EntityRef,
    EntityType,
    TextValue,
)
from repro.kg.graph import TEXT_TYPE_NAME, Edge, KnowledgeGraph
from repro.kg.knowledge_base import KnowledgeBase
from repro.kg.pagerank import normalized_pagerank, pagerank, uniform_scores
from repro.kg.similarity import jaccard, keyword_similarity
from repro.kg.statistics import GraphStatistics, compute_statistics
from repro.kg.stemmer import stem, stem_all
from repro.kg.synonyms import SynonymTable
from repro.kg.text import DEFAULT_NORMALIZER, TextNormalizer, tokenize

__all__ = [
    "AttributeType",
    "DEFAULT_NORMALIZER",
    "Edge",
    "Entity",
    "EntityRef",
    "EntityType",
    "GraphStatistics",
    "KnowledgeBase",
    "KnowledgeGraph",
    "SynonymTable",
    "TEXT_TYPE_NAME",
    "TextNormalizer",
    "TextValue",
    "build_graph",
    "compute_statistics",
    "jaccard",
    "keyword_similarity",
    "normalized_pagerank",
    "pagerank",
    "stem",
    "stem_all",
    "tokenize",
    "uniform_scores",
]
