"""Conversion of a :class:`KnowledgeBase` into a :class:`KnowledgeGraph`.

Follows Section 2.1: one node per entity labeled with its type; one directed
edge per attribute value; plain-text values become dummy nodes whose text
description equals the plain text.  Identical text values of the *same
entity and attribute* each get their own dummy node (they are distinct
facts); text values are not shared across entities, mirroring how infobox
extraction produces one literal per statement.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.errors import KnowledgeBaseError
from repro.core.types import NodeId
from repro.kg.entity import EntityRef, TextValue
from repro.kg.graph import KnowledgeGraph
from repro.kg.knowledge_base import KnowledgeBase


def build_graph(
    kb: KnowledgeBase,
    share_text_nodes: bool = False,
    validate: bool = True,
) -> Tuple[KnowledgeGraph, Dict[str, NodeId]]:
    """Build the knowledge graph for ``kb``.

    Parameters
    ----------
    kb:
        The source knowledge base.
    share_text_nodes:
        When True, identical plain-text values anywhere in the KB map to a
        single dummy node.  This creates join points through literals (two
        companies with revenue "US$ 1 billion" become connected), which is
        usually undesirable; the default keeps one dummy node per
        (entity, attribute, occurrence).
    validate:
        When True (default), raise on dangling entity references instead of
        silently dropping the edges.

    Returns
    -------
    (graph, node_of_entity):
        The graph plus a mapping from entity name to its node id.
    """
    if validate:
        kb.validate()

    graph = KnowledgeGraph()
    # Intern declared types up front so their custom texts are preserved
    # even for types only used by dangling data.
    for entity_type in kb.entity_types():
        graph.intern_type(entity_type.name, entity_type.text)
    for attr_type in kb.attribute_types():
        graph.intern_attr(attr_type.name, attr_type.text)

    node_of_entity: Dict[str, NodeId] = {}
    for entity in kb.entities():
        tid = graph.intern_type(entity.type_name)
        node_of_entity[entity.name] = graph.add_node_typed(
            tid, entity.text, is_entity=True
        )

    shared_text: Dict[str, NodeId] = {}
    for entity in kb.entities():
        source = node_of_entity[entity.name]
        for attr_name, values in entity.attributes.items():
            attr = graph.intern_attr(attr_name)
            for value in values:
                if isinstance(value, EntityRef):
                    target = node_of_entity.get(value.name)
                    if target is None:
                        raise KnowledgeBaseError(
                            f"entity {entity.name!r} attribute {attr_name!r} "
                            f"references unknown entity {value.name!r}"
                        )
                elif isinstance(value, TextValue):
                    if share_text_nodes:
                        target = shared_text.get(value.text)
                        if target is None:
                            target = graph.add_text_node(value.text)
                            shared_text[value.text] = target
                    else:
                        target = graph.add_text_node(value.text)
                else:  # pragma: no cover - guarded by KnowledgeBase.set_attribute
                    raise KnowledgeBaseError(f"bad attribute value {value!r}")
                graph.add_edge_typed(source, attr, target)
    return graph, node_of_entity
