"""Synonym handling for the path index.

Section 3 of the paper: "to handle synonyms, every word has its stemmed
version and synonyms in our index pointing to the same path-pattern entry."

A :class:`SynonymTable` maps surface words to a canonical word.  The index
builder expands each indexed token to its canonical form plus itself, and
query parsing canonicalizes query words, so "film" can retrieve entries
indexed under "movie" without duplicating postings.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Set

from repro.kg.stemmer import stem


class SynonymTable:
    """Bidirectional word -> canonical-word mapping.

    Synonym groups are registered as iterables of words; the first word of a
    group is its canonical representative.  All words are stored stemmed so
    the table composes with the normalizer.

    >>> table = SynonymTable([["movie", "film", "picture"]])
    >>> table.canonical("films")
    'movi'
    """

    def __init__(self, groups: Iterable[Iterable[str]] = ()) -> None:
        self._canonical: Dict[str, str] = {}
        self._groups: Dict[str, Set[str]] = {}
        for group in groups:
            self.add_group(group)

    def add_group(self, words: Iterable[str]) -> None:
        """Register a synonym group; the first word becomes canonical.

        Groups sharing a word are merged into the earlier group's canonical.
        """
        stemmed = [stem(w) for w in words]
        if not stemmed:
            return
        # If any member is already known, reuse its canonical form so that
        # transitively-registered groups stay consistent.
        canonical = None
        for word in stemmed:
            if word in self._canonical:
                canonical = self._canonical[word]
                break
        if canonical is None:
            canonical = stemmed[0]
        members = self._groups.setdefault(canonical, {canonical})
        for word in stemmed:
            self._canonical[word] = canonical
            members.add(word)

    def _find_canonical(self, word: str) -> str:
        """Lookup that never re-stems an already-stemmed token.

        Registered keys are stored stemmed.  The word is tried as given
        first — index tokens arrive pre-stemmed, and Porter is not
        idempotent ("databas" would wrongly re-stem to "databa") — and only
        on a miss is a stemmed retry attempted for raw surface forms.
        """
        canonical = self._canonical.get(word)
        if canonical is None:
            canonical = self._canonical.get(stem(word))
        return word if canonical is None else canonical

    def canonical(self, word: str) -> str:
        """Canonical form of ``word``; identity if unregistered."""
        return self._find_canonical(word)

    def expansions(self, word: str) -> List[str]:
        """All index keys a document token should be filed under.

        Returns the token itself plus its canonical form (deduplicated).
        Filing under the canonical form is what lets any synonym in a query
        reach the entry.
        """
        canonical = self._find_canonical(word)
        if canonical == word:
            return [word]
        return [word, canonical]

    def group_of(self, word: str) -> Set[str]:
        """The full synonym group containing ``word`` (singleton if none)."""
        canonical = self._find_canonical(word)
        return set(self._groups.get(canonical, {canonical}))

    def __len__(self) -> int:
        return len(self._canonical)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, str]) -> "SynonymTable":
        """Build from a word -> canonical mapping."""
        table = cls()
        for word, canonical in mapping.items():
            table.add_group([canonical, word])
        return table


#: Empty table used by default: synonym support is opt-in.
EMPTY_SYNONYMS = SynonymTable()
