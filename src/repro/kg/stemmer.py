"""Porter stemming algorithm, implemented from scratch.

The paper's index handles morphological variants by storing "every word
[with] its stemmed version ... pointing to the same path-pattern entry"
(Section 3).  We implement the classic Porter (1980) algorithm so the
library has no external NLP dependency.

Reference: M. F. Porter, "An algorithm for suffix stripping", Program 14(3),
1980.  The implementation follows the original five-step description,
including the m-measure and the *o (cvc) condition.
"""

from __future__ import annotations

from functools import lru_cache

_VOWELS = frozenset("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    """Return True when ``word[i]`` acts as a consonant in Porter's sense.

    A letter is a consonant if it is not a-e-i-o-u, and ``y`` is a consonant
    when preceded by a vowel-acting letter (i.e. ``y`` after a consonant is
    itself a vowel, as in "sky").
    """
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        if i == 0:
            return True
        return not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """Compute Porter's measure m: the number of VC sequences in the stem.

    A word has the form [C](VC)^m[V] where C and V are maximal consonant and
    vowel runs.
    """
    m = 0
    i = 0
    n = len(stem)
    # Skip the optional leading consonant run.
    while i < n and _is_consonant(stem, i):
        i += 1
    while i < n:
        # Vowel run.
        while i < n and not _is_consonant(stem, i):
            i += 1
        if i >= n:
            break
        # Consonant run closes one VC block.
        while i < n and _is_consonant(stem, i):
            i += 1
        m += 1
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    if len(word) < 2:
        return False
    return word[-1] == word[-2] and _is_consonant(word, len(word) - 1)


def _ends_cvc(word: str) -> bool:
    """*o condition: stem ends consonant-vowel-consonant, last not w/x/y."""
    if len(word) < 3:
        return False
    if not _is_consonant(word, len(word) - 3):
        return False
    if _is_consonant(word, len(word) - 2):
        return False
    if not _is_consonant(word, len(word) - 1):
        return False
    return word[-1] not in "wxy"


def _replace_suffix(word: str, suffix: str, replacement: str) -> str:
    return word[: len(word) - len(suffix)] + replacement


def _step_1a(word: str) -> str:
    if word.endswith("sses"):
        return _replace_suffix(word, "sses", "ss")
    if word.endswith("ies"):
        return _replace_suffix(word, "ies", "i")
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step_1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return word[:-1]
        return word
    flag = False
    if word.endswith("ed"):
        stem = word[:-2]
        if _contains_vowel(stem):
            word = stem
            flag = True
    elif word.endswith("ing"):
        stem = word[:-3]
        if _contains_vowel(stem):
            word = stem
            flag = True
    if flag:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and word[-1] not in "lsz":
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step_1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2_SUFFIXES = (
    ("ational", "ate"),
    ("tional", "tion"),
    ("enci", "ence"),
    ("anci", "ance"),
    ("izer", "ize"),
    ("abli", "able"),
    ("alli", "al"),
    ("entli", "ent"),
    ("eli", "e"),
    ("ousli", "ous"),
    ("ization", "ize"),
    ("ation", "ate"),
    ("ator", "ate"),
    ("alism", "al"),
    ("iveness", "ive"),
    ("fulness", "ful"),
    ("ousness", "ous"),
    ("aliti", "al"),
    ("iviti", "ive"),
    ("biliti", "ble"),
)

_STEP3_SUFFIXES = (
    ("icate", "ic"),
    ("ative", ""),
    ("alize", "al"),
    ("iciti", "ic"),
    ("ical", "ic"),
    ("ful", ""),
    ("ness", ""),
)

_STEP4_SUFFIXES = (
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
)


def _step_2(word: str) -> str:
    for suffix, replacement in _STEP2_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 0:
                return stem + replacement
            return word
    return word


def _step_3(word: str) -> str:
    for suffix, replacement in _STEP3_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 0:
                return stem + replacement
            return word
    return word


def _step_4(word: str) -> str:
    for suffix in _STEP4_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if suffix == "ion" and not stem.endswith(("s", "t")):
                continue
            if _measure(stem) > 1:
                return stem
            return word
    if word.endswith("ion"):
        stem = word[:-3]
        if stem.endswith(("s", "t")) and _measure(stem) > 1:
            return stem
    return word


def _step_5a(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1:
            return stem
        if m == 1 and not _ends_cvc(stem):
            return stem
    return word


def _step_5b(word: str) -> str:
    if word.endswith("ll") and _measure(word) > 1:
        return word[:-1]
    return word


@lru_cache(maxsize=65536)
def stem(word: str) -> str:
    """Return the Porter stem of ``word``.

    The input is lower-cased first.  Words of length <= 2 are returned
    unchanged (lower-cased), following Porter's original treatment.

    >>> stem("databases")
    'databas'
    >>> stem("relational")
    'relat'
    >>> stem("running")
    'run'
    """
    word = word.lower()
    if len(word) <= 2:
        return word
    word = _step_1a(word)
    word = _step_1b(word)
    word = _step_1c(word)
    word = _step_2(word)
    word = _step_3(word)
    word = _step_4(word)
    word = _step_5a(word)
    word = _step_5b(word)
    return word


def stem_all(words) -> list:
    """Stem every word in an iterable, preserving order.

    >>> stem_all(["Databases", "Companies"])
    ['databas', 'compani']
    """
    return [stem(w) for w in words]
