"""Command-line interface.

Subcommands mirror the production flow:

* ``build``  — parse a knowledge base (JSON or N-Triples), build the path
  indexes for a height threshold d, and persist them;
* ``search`` — load persisted indexes and answer one keyword query with
  any of the paper's algorithms, printing table answers;
* ``plan``   — print the :class:`~repro.search.plan.QueryPlan` a query
  would execute, without running it;
* ``serve``  — load once, then answer a query *stream*: interactively
  through a cached :class:`~repro.search.service.SearchService`, or —
  with ``--http HOST:PORT`` — over the asyncio HTTP front-end
  (:mod:`repro.serve.http`: deadlines, admission control, coalescing,
  ``/metrics``);
* ``batch``  — load once, answer a file of queries (optionally on a
  thread pool) through the same service; accepts both plain query-per-
  line files and the ``.jsonl`` workload format the HTTP load generator
  replays (:mod:`repro.serve.workload`);
* ``stats``  — inspect a persisted index bundle;
* ``compact`` — rewrite an index file as a flat next-generation v3 image
  (the offline twin of the service's online delta-overlay compaction;
  doubles as the v1/v2 -> v3 migration path).

``search`` loads the index per invocation (cold single-shot); ``serve``
and ``batch`` amortize one load across every query — see
``docs/serving.md``.

Examples::

    python -m repro.cli build kb.json --format json -d 3 -o kb.idx
    python -m repro.cli search kb.idx "database software company revenue"
    python -m repro.cli search kb.idx "movies gibson" --algorithm letopk \
        --sampling-rate 0.2 --sampling-threshold 1000
    python -m repro.cli plan kb.idx "database software company"
    echo "software company" | python -m repro.cli serve kb.idx
    python -m repro.cli serve kb.idx --http 127.0.0.1:8080 --max-queue 64
    python -m repro.cli batch kb.idx queries.txt --threads 4
    python -m repro.cli batch kb.idx workload.jsonl
    python -m repro.cli stats kb.idx
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.core.errors import ReproError, SearchError
from repro.index.builder import build_indexes
from repro.index.serialize import load_indexes, save_indexes
from repro.index.stats import index_statistics
from repro.kg.builder import build_graph
from repro.kg.loaders.jsonkb import load_json_kb
from repro.kg.loaders.ntriples import load_ntriples
from repro.kg.statistics import compute_statistics
from repro.search.service import SearchService


def _cmd_build(args: argparse.Namespace) -> int:
    if args.format == "json":
        kb = load_json_kb(args.input)
    else:
        kb = load_ntriples(args.input)
    graph, _nodes = build_graph(kb)
    print(compute_statistics(graph).format())
    indexes = build_indexes(graph, d=args.d)
    stats = index_statistics(indexes)
    print(stats.format())
    size = save_indexes(indexes, args.output)
    print(f"wrote {size / 1e6:.1f} MB to {args.output}")
    return 0


def _format_store_line(indexes) -> str:
    """One line on the columnar store: dedup ratio and byte footprint."""
    store = indexes.store
    return (
        f"store: {store.num_postings()} postings over "
        f"{store.num_paths} unique paths "
        f"({store.dedup_ratio():.2f}x dedup), "
        f"{store.nbytes() / 1e6:.1f} MB columnar"
    )


def _format_file_stats(path) -> str:
    """Multi-line summary of the index *file*: format version, total
    bytes, and per-store (base + shards) sizes for sharded bundles."""
    from repro.index.serialize import describe_index_file

    info = describe_index_file(path)
    lines = [
        f"file: {info['file_bytes'] / 1e6:.1f} MB, "
        f"format v{info['version']}, kind={info['kind']}"
        + (
            f" ({info['num_shards']} shards)"
            if info["kind"] == "sharded"
            else ""
        )
        + (
            f", generation {info['generation']}"
            if "generation" in info
            else ""
        )
    ]
    for entry in info["stores"]:
        lines.append(
            f"  {entry['name']}: {entry['num_postings']} postings over "
            f"{entry['num_paths']} paths, "
            f"{entry['store_bytes'] / 1e6:.1f} MB on disk"
        )
    return "\n".join(lines)


def _format_cold_start(service) -> str:
    """One line on how long the bundle took to come off disk."""
    return f"cold start: index loaded in {service.stats.load_seconds * 1000.0:.1f} ms"


def _format_backend(service, http_workers=None) -> str:
    """One line on which execution spine answers cache-miss queries."""
    stats = service.stats
    if stats.execution_backend != "inline":
        return (
            f"execution backend: {stats.execution_backend} "
            f"({stats.execution_workers} workers)"
        )
    if http_workers is not None:
        return (
            f"execution backend: threads ({http_workers} executor "
            "threads, GIL-bound)"
        )
    return "execution backend: inline (single process)"


#: Search algorithms whose hot loops take the ``prune`` switch (the
#: baseline and the full-enumeration ranker have nothing to prune: their
#: contract is the complete answer set).
_PRUNABLE_ALGORITHMS = (
    "pattern_enum", "petopk", "linear", "letopk", "linear_topk",
)

# One-shot commands pass mismatched flags through so plan-time
# validation rejects them loudly; only the ``serve`` REPL drops
# inapplicable flags — with a warning, via the same applicability check
# the HTTP parser uses (``repro.serve.params``) — so an ``:algorithm``
# switch mid-session is not poisoned by a once-given ``--sampling-rate``.


def _explain_pruning(stats) -> str:
    """The ``--explain`` lines: pruning counters + threshold trajectory."""
    lines = [
        "pruning: "
        f"roots_skipped={stats.roots_skipped} "
        f"prefixes_skipped={stats.prefixes_skipped} "
        f"pairs_skipped={stats.pairs_skipped}"
    ]
    if stats.shards_total:
        line = (
            "sharding: "
            f"dispatched={stats.shards_total - stats.shards_skipped}"
            f"/{stats.shards_total} shards "
            f"(skipped={stats.shards_skipped}, "
            f"order={list(stats.shard_dispatch_order)})"
        )
        if stats.shard_failovers:
            line += f" failovers={stats.shard_failovers}"
        lines.append(line)
    if stats.threshold_first is not None:
        lines.append(
            "k-th score trajectory: "
            f"{stats.threshold_first:.6g} -> {stats.threshold_last:.6g}"
        )
    else:
        lines.append(
            "k-th score trajectory: queue never filled (nothing pruned)"
        )
    return "\n".join(lines)


def _search_params(args: argparse.Namespace) -> dict:
    """Collect algorithm parameters from the shared search/serve flags.

    Sampling flags pass through for *any* algorithm: a mismatch (e.g.
    ``--sampling-rate`` with ``pattern_enum``) is a loud plan-time
    error, not a silently inert flag.  ``--no-prune`` keeps its
    pre-existing per-algorithm gating (prune simply has no meaning for
    the complete-answer-set algorithms).
    """
    params = {}
    if getattr(args, "sampling_rate", None) is not None:
        params["sampling_rate"] = args.sampling_rate
    if getattr(args, "sampling_threshold", None) is not None:
        params["sampling_threshold"] = args.sampling_threshold
    if args.algorithm in _PRUNABLE_ALGORITHMS:
        params["prune"] = not getattr(args, "no_prune", False)
    return params


def _print_result(service, result, max_rows: int, explain: bool) -> int:
    """Render one SearchResult (shared by search and serve)."""
    graph = service.snapshot().graph
    if not result.answers:
        print("no answers")
        if explain:
            print(result.stats.format())
            print(_explain_pruning(result.stats))
        return 1
    for rank, answer in enumerate(result.answers, start=1):
        print(
            f"--- #{rank}  score={answer.score:.4f} "
            f"rows={answer.num_subtrees} ---"
        )
        print(answer.pattern.format(graph, result.query))
        if answer.subtrees:
            print(answer.to_table(graph).to_ascii(max_rows))
        print()
    print(result.stats.format())
    if explain:
        print(_explain_pruning(result.stats))
    return 0


def _make_service(
    args: argparse.Namespace, pool_processes: Optional[int] = None
) -> SearchService:
    """The service a command serves through: a fork-pool service when
    ``serve --processes`` asks for it (optionally composed with
    ``--shards`` — each fork worker runs the sharded merge loop
    inline), sharded when ``--shards`` alone asks for it, the plain
    single-store service otherwise (a sharded index file still loads —
    its base bundle is a complete index)."""
    shards = getattr(args, "shards", None)
    if shards is not None and shards < 1:
        raise SearchError(f"--shards must be >= 1, got {shards}")
    if pool_processes is not None:
        from repro.serve.pool import PooledSearchService

        if pool_processes < 1:
            raise SearchError(
                f"--processes must be >= 1, got {pool_processes}"
            )
        return PooledSearchService.from_file(
            args.index, processes=pool_processes, num_shards=shards or 0
        )
    if shards is not None:
        from repro.search.sharding import ShardedSearchService

        return ShardedSearchService.from_file(args.index, num_shards=shards)
    return SearchService.from_file(args.index)


def _cmd_search(args: argparse.Namespace) -> int:
    # Single-shot serving: one service, one query — identical cold
    # behavior to the pre-service CLI, but through the same plan/execute
    # path `serve` and `batch` use.
    service = _make_service(args)
    try:
        plan = service.plan(
            args.query, k=args.k, algorithm=args.algorithm,
            **_search_params(args),
        )
        if args.explain:
            print(_format_cold_start(service))
            print(plan.describe(service.snapshot()))
        result = service.search(plan=plan)
        return _print_result(service, result, args.max_rows, args.explain)
    finally:
        service.close()


def _cmd_plan(args: argparse.Namespace) -> int:
    service = SearchService.from_file(args.index)
    plan = service.plan(
        args.query, k=args.k, algorithm=args.algorithm,
        **_search_params(args),
    )
    print(plan.describe(service.snapshot()))
    return 0


#: ``serve`` REPL meta-commands (anything else is a query).
_SERVE_HELP = """\
commands:
  :k N            set the answer count (current value shown in the prompt)
  :algorithm A    switch algorithm (pattern_enum, linear, letopk, ...)
  :explain        toggle plan + pruning diagnostics
  :stats          print service cache statistics
  :help           this text
  :quit           exit (EOF works too)
anything else is searched as a keyword query."""


def _cmd_serve(args: argparse.Namespace) -> int:
    service = _make_service(
        args, pool_processes=getattr(args, "processes", None)
    )
    try:
        if args.http is not None:
            return _serve_http(service, args)
        return _serve_loop(service, args)
    finally:
        service.close()


def _serve_http(service: SearchService, args: argparse.Namespace) -> int:
    """``serve --http``: the asyncio front-end instead of the REPL."""
    from repro.serve.http import run_server

    host, _, port_text = args.http.rpartition(":")
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        print(
            f"error: --http wants HOST:PORT, got {args.http!r}",
            file=sys.stderr,
        )
        return 2

    # Executor width defaults to the fork-pool size when one is
    # configured: each executor thread then drives exactly one worker
    # process, so the pool is saturated without queueing inside it.
    workers = args.workers
    if workers is None:
        workers = args.processes if args.processes else 4

    def ready(server) -> None:
        print(_format_cold_start(service))
        print(_format_backend(service, http_workers=workers))
        print(
            f"serving {args.index} on http://{server.address} "
            f"(workers={workers}, max_queue={args.max_queue}, "
            f"deadline_ms={args.deadline_ms}); endpoints: /search "
            f"/metrics /healthz /admin/invalidate",
            flush=True,
        )

    run_server(
        service,
        host=host,
        port=port,
        ready=ready,
        max_queue=args.max_queue,
        workers=workers,
        default_deadline_ms=args.deadline_ms,
    )
    print(service.stats.format())
    return 0


def _serve_loop(service: SearchService, args: argparse.Namespace) -> int:
    store = service.indexes.store
    print(
        f"serving {args.index}: {store.num_postings()} postings over "
        f"{store.num_paths} paths; type a query (:help for commands)"
    )
    print(_format_cold_start(service))
    print(_format_backend(service))
    k = args.k
    algorithm = args.algorithm
    explain = args.explain
    interactive = sys.stdin.isatty()

    def plan_params() -> dict:
        # Recomputed per query (:algorithm changes mid-session), and —
        # unlike the one-shot commands — inapplicable sampling flags are
        # dropped rather than rejected: a flag given for the starting
        # algorithm must not poison the session after a switch.  The
        # drop is *audible*: the same applicability check the HTTP
        # parameter parser rejects with is printed here as a warning.
        from repro.serve.params import (
            describe_inapplicable,
            split_applicable_params,
        )

        shadow = argparse.Namespace(**{**vars(args), "algorithm": algorithm})
        kept, dropped = split_applicable_params(
            algorithm, _search_params(shadow)
        )
        if dropped:
            print(
                "warning: ignoring "
                + describe_inapplicable(algorithm, dropped)
            )
        return kept
    while True:
        if interactive:
            print(f"[{algorithm} k={k}]> ", end="", flush=True)
        line = sys.stdin.readline()
        if not line:
            break
        line = line.strip()
        if not line:
            continue
        if line.startswith(":"):
            command, _, value = line.partition(" ")
            if command in (":quit", ":q", ":exit"):
                break
            elif command == ":help":
                print(_SERVE_HELP)
            elif command == ":stats":
                print(service.stats.format())
                print(f"cache sizes: {service.cache_sizes()}")
            elif command == ":explain":
                explain = not explain
                print(f"explain {'on' if explain else 'off'}")
            elif command == ":k":
                try:
                    k = int(value)
                except ValueError:
                    print(f"error: :k needs an integer, got {value!r}")
            elif command == ":algorithm":
                from repro.search.plan import canonical_algorithm

                try:
                    # Same validation (incl. case-insensitivity) as every
                    # other entry point; keep the user's alias spelling.
                    canonical_algorithm(value.strip())
                    algorithm = value.strip().lower()
                except ReproError as exc:
                    print(f"error: {exc}")
            else:
                print(f"error: unknown command {command!r} (:help)")
            continue
        try:
            plan = service.plan(
                line, k=k, algorithm=algorithm, **plan_params()
            )
            if explain:
                print(plan.describe(service.snapshot()))
            result = service.search(plan=plan)
            _print_result(service, result, args.max_rows, explain)
        except ReproError as exc:
            print(f"error: {exc}")
    print(service.stats.format())
    return 0


def _load_batch_requests(args: argparse.Namespace):
    """The batch input as workload requests.

    ``.jsonl`` files parse as the :mod:`repro.serve.workload` format (the
    stream the HTTP load generator replays, possibly carrying per-request
    k/algorithm/params overrides and ``invalidate`` writer ticks); any
    other file is the classic one-query-per-line format.  Returns
    ``(requests, None)`` or ``(None, exit_code)``.
    """
    from repro.serve.workload import (
        WorkloadError,
        load_workload,
        requests_from_queries,
    )

    try:
        if args.queries.endswith(".jsonl"):
            return load_workload(args.queries), None
        with open(args.queries) as handle:
            queries = [
                stripped
                for stripped in (line.strip() for line in handle)
                if stripped and not stripped.startswith("#")
            ]
    except OSError as exc:
        print(f"error: cannot read {args.queries!r}: {exc}", file=sys.stderr)
        return None, 2
    except WorkloadError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None, 2
    if not queries:
        print(f"error: no queries in {args.queries!r}", file=sys.stderr)
        return None, 2
    return requests_from_queries(queries), None


def _cmd_batch(args: argparse.Namespace) -> int:
    requests, exit_code = _load_batch_requests(args)
    if requests is None:
        return exit_code
    uniform = all(
        not request.is_mutation and not request.has_overrides()
        for request in requests
    )
    if not uniform and (args.threads or args.processes):
        print(
            "error: this workload carries per-request overrides or "
            "invalidation ticks, which replay in order on one thread; "
            "drop --threads/--processes (or use a uniform workload)",
            file=sys.stderr,
        )
        return 2
    if not uniform:
        return _batch_replay(args, requests)
    queries = [request.query for request in requests]
    if args.processes and getattr(args, "shards", None):
        print(
            "error: --processes and --shards are mutually exclusive: the "
            "shard worker pool is the sharded service's parallel path",
            file=sys.stderr,
        )
        return 2
    service = _make_service(args)
    params = _search_params(args)
    if args.no_subtrees:
        params["keep_subtrees"] = False
    started = time.perf_counter()
    try:
        results = service.search_many(
            queries,
            k=args.k,
            algorithm=args.algorithm,
            threads=args.threads,
            processes=args.processes,
            **params,
        )
    finally:
        service.close()
    elapsed = time.perf_counter() - started
    for query, result in zip(queries, results):
        top = f"{result.answers[0].score:.4f}" if result.answers else "-"
        cached = " (cached)" if result.stats.from_result_cache else ""
        print(
            f"{query!r}: {result.num_answers} answers, top={top}, "
            f"{result.stats.elapsed_seconds * 1000:.1f} ms{cached}"
        )
    qps = len(queries) / elapsed if elapsed > 0 else float("inf")
    print(
        f"batch: {len(queries)} queries in {elapsed:.3f} s "
        f"({qps:.1f} QPS, threads={args.threads}, "
        f"processes={args.processes})"
    )
    print(service.stats.format())
    return 0


def _batch_replay(args: argparse.Namespace, requests) -> int:
    """Non-uniform workload replay: in order, one thread, writer ticks
    included — the offline twin of what the HTTP load generator sends."""
    from repro.serve.params import split_applicable_params

    service = _make_service(args)
    base_params = _search_params(args)
    if args.no_subtrees:
        base_params["keep_subtrees"] = False
    searches = invalidations = 0
    started = time.perf_counter()
    try:
        for request in requests:
            if request.is_mutation:
                service.invalidate()
                invalidations += 1
                print(":invalidate: caches flushed")
                continue
            algorithm = request.algorithm or args.algorithm
            params, _dropped = split_applicable_params(
                algorithm, base_params
            )
            params.update(dict(request.params))
            result = service.search(
                request.query,
                k=request.k if request.k is not None else args.k,
                algorithm=algorithm,
                **params,
            )
            searches += 1
            top = f"{result.answers[0].score:.4f}" if result.answers else "-"
            cached = " (cached)" if result.stats.from_result_cache else ""
            print(
                f"{request.query!r}: {result.num_answers} answers, "
                f"top={top}, "
                f"{result.stats.elapsed_seconds * 1000:.1f} ms{cached}"
            )
    finally:
        service.close()
    elapsed = time.perf_counter() - started
    qps = searches / elapsed if elapsed > 0 else float("inf")
    print(
        f"batch: {searches} queries + {invalidations} invalidations in "
        f"{elapsed:.3f} s ({qps:.1f} QPS, sequential replay)"
    )
    print(service.stats.format())
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    """``repro compact``: rewrite an index file as a flat next-generation
    v3 image.

    For a mapped v3 bundle this is the offline twin of the service's
    online compaction (``SearchService.compact``): the content streams
    into a fresh file at generation+1, preserving a stored shard
    partition.  A v1/v2 bundle is rewritten into the mmap v3 layout —
    ``compact`` doubles as the format migration path.
    """
    from repro.core.errors import PathIndexError
    from repro.index.mmapstore import MappedPostingStore
    from repro.index.serialize import (
        compact_indexes,
        describe_index_file,
        load_sharded_indexes,
        save_indexes,
        save_sharded_indexes,
    )

    out = args.output or args.index
    try:
        sharded = load_sharded_indexes(args.index)
    except PathIndexError:
        sharded = None
    indexes = sharded.base if sharded is not None else load_indexes(args.index)
    store = indexes.store
    started = time.perf_counter()
    if isinstance(store, MappedPostingStore) and store._backed:
        outcome = compact_indexes(
            indexes,
            out,
            num_shards=sharded.num_shards if sharded is not None else 0,
        )
        size, generation = outcome["bytes"], outcome["generation"]
    else:
        # Heap-resident (v1/v2) bundle: a compacting rewrite into the
        # mmap v3 layout, keeping any stored partition.
        if sharded is not None:
            size = save_sharded_indexes(sharded, out)
        else:
            size = save_indexes(indexes, out)
        generation = describe_index_file(out).get("generation", 0)
    elapsed = time.perf_counter() - started
    print(
        f"wrote {size / 1e6:.1f} MB to {out} "
        f"(generation {generation}, {elapsed * 1000.0:.1f} ms)"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    print(_format_file_stats(args.index))
    indexes = load_indexes(args.index)
    print(f"load: {indexes.load_seconds * 1000.0:.1f} ms")
    print(compute_statistics(indexes.graph).format())
    print(index_statistics(indexes).format())
    print(_format_store_line(indexes))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Keyword search over knowledge bases, composing "
        "table answers (VLDB 2014 reproduction).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="build and persist indexes")
    build.add_argument("input", help="knowledge-base file")
    build.add_argument(
        "--format", choices=("json", "ntriples"), default="json"
    )
    build.add_argument("-d", type=int, default=3, help="height threshold")
    build.add_argument("-o", "--output", required=True, help="index file")
    build.set_defaults(handler=_cmd_build)

    def add_query_flags(sub, with_query: bool = True) -> None:
        """The flags search/plan/serve/batch share."""
        sub.add_argument("index", help="persisted index file")
        if with_query:
            sub.add_argument("query", help="keyword query")
        sub.add_argument("-k", type=int, default=5)
        sub.add_argument(
            "--algorithm",
            default="pattern_enum",
            choices=(
                "pattern_enum", "petopk", "linear", "letopk", "linear_topk",
                "linear_full", "baseline",
            ),
        )
        sub.add_argument("--sampling-rate", type=float, default=None)
        sub.add_argument("--sampling-threshold", type=float, default=None)
        sub.add_argument(
            "--no-prune",
            action="store_true",
            help="disable bound-driven top-k pruning "
            "(exhaustive enumeration)",
        )

    def add_shards_flag(sub) -> None:
        sub.add_argument(
            "--shards", type=int, default=None, metavar="K",
            help="serve through a K-shard scatter-gather worker pool "
            "with bound-driven shard skipping (bit-identical answers; "
            "a file written with a stored partition reuses it when K "
            "matches)",
        )

    search = commands.add_parser("search", help="answer a keyword query")
    add_query_flags(search)
    add_shards_flag(search)
    search.add_argument("--max-rows", type=int, default=10)
    search.add_argument(
        "--explain",
        action="store_true",
        help="print the query plan, pruning counters, and the "
        "k-th-score trajectory",
    )
    search.set_defaults(handler=_cmd_search)

    plan = commands.add_parser(
        "plan", help="print a query's execution plan without running it"
    )
    add_query_flags(plan)
    plan.set_defaults(handler=_cmd_plan)

    serve = commands.add_parser(
        "serve",
        help="interactive query REPL: load the index once, serve a "
        "query stream through the caching SearchService",
    )
    add_query_flags(serve, with_query=False)
    add_shards_flag(serve)
    serve.add_argument("--max-rows", type=int, default=10)
    serve.add_argument(
        "--explain",
        action="store_true",
        help="start with plan/pruning diagnostics on (:explain toggles)",
    )
    serve.add_argument(
        "--http", metavar="HOST:PORT", default=None,
        help="serve over HTTP instead of the REPL: asyncio front-end "
        "with request coalescing, admission control, per-request "
        "deadlines, and a Prometheus /metrics endpoint (port 0 picks "
        "a free port)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64,
        help="HTTP admission limit: requests executing or queued before "
        "the server sheds with 503 (default 64)",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=None,
        help="HTTP default per-request deadline; requests that expire "
        "before execution are answered 504 without running "
        "(clients override per request with ?deadline_ms=)",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="HTTP executor threads running searches (default: "
        "--processes when given, else 4)",
    )
    serve.add_argument(
        "--processes", type=int, default=None, metavar="N",
        help="execute cache-miss searches on N long-lived pre-warmed "
        "fork workers instead of the GIL-bound executor threads "
        "(multi-core serving over copy-free mmap pages; composes with "
        "--shards: each worker runs the sharded merge loop inline; "
        "bit-identical answers, inline failover on worker death)",
    )
    serve.set_defaults(handler=_cmd_serve)

    batch = commands.add_parser(
        "batch",
        help="answer a file of queries (one per line) through one "
        "shared SearchService",
    )
    add_query_flags(batch, with_query=False)
    add_shards_flag(batch)
    batch.add_argument(
        "queries",
        help="query file: one query per line, or a .jsonl workload "
        "(repro.serve.workload format — per-request overrides and "
        "invalidation ticks replay in order)",
    )
    batch.add_argument(
        "--threads", type=int, default=0,
        help="thread-pool size for batch execution (0 = inline)",
    )
    batch.add_argument(
        "--processes", type=int, default=0,
        help="fork-pool size for parallel execution (0 = off; kept "
        "subtree rows cross back as portable PathEntry tuples)",
    )
    batch.add_argument(
        "--no-subtrees", action="store_true",
        help="run with keep_subtrees=False: answers keep exact scores "
        "and row counts but drop the subtree rows",
    )
    batch.set_defaults(handler=_cmd_batch)

    compact = commands.add_parser(
        "compact",
        help="rewrite an index file as a flat next-generation v3 image "
        "(preserves stored shard partitions; migrates v1/v2 bundles "
        "to the mmap layout)",
    )
    compact.add_argument("index", help="persisted index file")
    compact.add_argument(
        "-o", "--output", default=None,
        help="output file (default: rewrite in place, atomically)",
    )
    compact.set_defaults(handler=_cmd_compact)

    stats = commands.add_parser("stats", help="inspect a persisted index")
    stats.add_argument("index", help="persisted index file")
    stats.set_defaults(handler=_cmd_stats)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
