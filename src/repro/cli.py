"""Command-line interface.

Subcommands mirror the production flow:

* ``build``  — parse a knowledge base (JSON or N-Triples), build the path
  indexes for a height threshold d, and persist them;
* ``search`` — load persisted indexes and answer keyword queries with any
  of the paper's algorithms, printing table answers;
* ``stats``  — inspect a persisted index bundle.

Examples::

    python -m repro.cli build kb.json --format json -d 3 -o kb.idx
    python -m repro.cli search kb.idx "database software company revenue"
    python -m repro.cli search kb.idx "movies gibson" --algorithm letopk \
        --sampling-rate 0.2 --sampling-threshold 1000
    python -m repro.cli stats kb.idx
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.errors import ReproError
from repro.index.builder import build_indexes
from repro.index.serialize import load_indexes, save_indexes
from repro.index.stats import index_statistics
from repro.kg.builder import build_graph
from repro.kg.loaders.jsonkb import load_json_kb
from repro.kg.loaders.ntriples import load_ntriples
from repro.kg.statistics import compute_statistics
from repro.search.engine import TableAnswerEngine


def _cmd_build(args: argparse.Namespace) -> int:
    if args.format == "json":
        kb = load_json_kb(args.input)
    else:
        kb = load_ntriples(args.input)
    graph, _nodes = build_graph(kb)
    print(compute_statistics(graph).format())
    indexes = build_indexes(graph, d=args.d)
    stats = index_statistics(indexes)
    print(stats.format())
    size = save_indexes(indexes, args.output)
    print(f"wrote {size / 1e6:.1f} MB to {args.output}")
    return 0


def _format_store_line(indexes) -> str:
    """One line on the columnar store: dedup ratio and byte footprint."""
    store = indexes.store
    return (
        f"store: {store.num_postings()} postings over "
        f"{store.num_paths} unique paths "
        f"({store.dedup_ratio():.2f}x dedup), "
        f"{store.nbytes() / 1e6:.1f} MB columnar"
    )


#: Search algorithms whose hot loops take the ``prune`` switch (the
#: baseline and the full-enumeration ranker have nothing to prune: their
#: contract is the complete answer set).
_PRUNABLE_ALGORITHMS = (
    "pattern_enum", "petopk", "linear", "letopk", "linear_topk",
)


def _explain_pruning(stats) -> str:
    """The ``--explain`` lines: pruning counters + threshold trajectory."""
    lines = [
        "pruning: "
        f"roots_skipped={stats.roots_skipped} "
        f"prefixes_skipped={stats.prefixes_skipped} "
        f"pairs_skipped={stats.pairs_skipped}"
    ]
    if stats.threshold_first is not None:
        lines.append(
            "k-th score trajectory: "
            f"{stats.threshold_first:.6g} -> {stats.threshold_last:.6g}"
        )
    else:
        lines.append(
            "k-th score trajectory: queue never filled (nothing pruned)"
        )
    return "\n".join(lines)


def _cmd_search(args: argparse.Namespace) -> int:
    indexes = load_indexes(args.index)
    engine = TableAnswerEngine(indexes.graph, indexes=indexes)
    params = {}
    if args.sampling_rate is not None:
        params["sampling_rate"] = args.sampling_rate
    if args.sampling_threshold is not None:
        params["sampling_threshold"] = args.sampling_threshold
    if args.algorithm in _PRUNABLE_ALGORITHMS:
        params["prune"] = not args.no_prune
    result = engine.search(
        args.query, k=args.k, algorithm=args.algorithm, **params
    )
    if not result.answers:
        print("no answers")
        if args.explain:
            print(result.stats.format())
            print(_explain_pruning(result.stats))
        return 1
    for rank, answer in enumerate(result.answers, start=1):
        print(
            f"--- #{rank}  score={answer.score:.4f} "
            f"rows={answer.num_subtrees} ---"
        )
        print(answer.pattern.format(engine.graph, result.query))
        if answer.subtrees:
            print(answer.to_table(engine.graph).to_ascii(args.max_rows))
        print()
    print(result.stats.format())
    if args.explain:
        print(_explain_pruning(result.stats))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    indexes = load_indexes(args.index)
    print(compute_statistics(indexes.graph).format())
    print(index_statistics(indexes).format())
    print(_format_store_line(indexes))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Keyword search over knowledge bases, composing "
        "table answers (VLDB 2014 reproduction).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="build and persist indexes")
    build.add_argument("input", help="knowledge-base file")
    build.add_argument(
        "--format", choices=("json", "ntriples"), default="json"
    )
    build.add_argument("-d", type=int, default=3, help="height threshold")
    build.add_argument("-o", "--output", required=True, help="index file")
    build.set_defaults(handler=_cmd_build)

    search = commands.add_parser("search", help="answer a keyword query")
    search.add_argument("index", help="persisted index file")
    search.add_argument("query", help="keyword query")
    search.add_argument("-k", type=int, default=5)
    search.add_argument(
        "--algorithm",
        default="pattern_enum",
        choices=(
            "pattern_enum", "petopk", "linear", "letopk", "linear_topk",
            "linear_full", "baseline",
        ),
    )
    search.add_argument("--sampling-rate", type=float, default=None)
    search.add_argument("--sampling-threshold", type=float, default=None)
    search.add_argument("--max-rows", type=int, default=10)
    search.add_argument(
        "--explain",
        action="store_true",
        help="print pruning counters and the k-th-score trajectory",
    )
    search.add_argument(
        "--no-prune",
        action="store_true",
        help="disable bound-driven top-k pruning (exhaustive enumeration)",
    )
    search.set_defaults(handler=_cmd_search)

    stats = commands.add_parser("stats", help="inspect a persisted index")
    stats.add_argument("index", help="persisted index file")
    stats.set_defaults(handler=_cmd_stats)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
