"""Request-parameter parsing shared by the HTTP tier and the serve REPL.

Two front-ends accept algorithm parameters from untyped user input: the
``serve`` REPL (argparse flags that outlive ``:algorithm`` switches) and
the HTTP query string.  Both validate against the same source of truth —
:func:`repro.search.plan.algorithm_param_names`, derived from the
canonical algorithm registry — so a flag the plan layer would reject is
caught (and named) at the edge instead of dying as an opaque plan error:

* the REPL **warns and drops** inapplicable flags (a ``--sampling-rate``
  given for the starting ``letopk`` must not poison the session after
  ``:algorithm pattern_enum``, but the user should hear that it is being
  ignored);
* the HTTP parser **rejects** them with a 400 whose body carries the same
  :func:`describe_inapplicable` message (a network client has no session
  to protect — a contradictory request is simply an error).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import ReproError
from repro.search.plan import (
    DEFAULT_ALGORITHM,
    algorithm_param_names,
    canonical_algorithm,
)


class ParamError(ReproError):
    """A request parameter failed to parse or contradicted the algorithm."""


def inapplicable_params(
    algorithm: Optional[str], params: Mapping[str, object]
) -> List[str]:
    """The names in ``params`` the (canonical) algorithm does not accept.

    ``None`` means the default algorithm.  Raises
    :class:`~repro.core.errors.SearchError` for unknown algorithm names —
    callers validate the algorithm first.
    """
    accepted = algorithm_param_names(algorithm or DEFAULT_ALGORITHM)
    return sorted(name for name in params if name not in accepted)


def split_applicable_params(
    algorithm: Optional[str], params: Mapping[str, object]
) -> Tuple[Dict[str, object], List[str]]:
    """``params`` split into (accepted-by-algorithm, dropped-names)."""
    dropped = set(inapplicable_params(algorithm, params))
    kept = {
        name: value for name, value in params.items() if name not in dropped
    }
    return kept, sorted(dropped)


def describe_inapplicable(
    algorithm: Optional[str], dropped: Sequence[str]
) -> str:
    """One shared sentence for the REPL warning and the HTTP 400 body."""
    canonical = canonical_algorithm(algorithm or DEFAULT_ALGORITHM)
    names = ", ".join(sorted(dropped))
    return (
        f"algorithm {canonical!r} does not accept {names}; accepted "
        f"parameters: {sorted(algorithm_param_names(canonical))}"
    )


# --------------------------------------------------------------------- HTTP


@dataclass(frozen=True)
class SearchRequest:
    """A parsed, typed ``/search`` request, ready for plan construction.

    ``params`` holds only the algorithm parameters the client actually
    sent (defaults are applied at plan time, keeping cache keys
    canonical); presentation and dispatch knobs ride alongside.
    """

    query: str
    k: Optional[int] = None
    algorithm: Optional[str] = None
    params: Dict[str, object] = field(default_factory=dict)
    #: Per-request deadline override in milliseconds (None = server default).
    deadline_ms: Optional[float] = None
    #: Render table rows into the response (costs subtree materialization).
    include_rows: bool = False
    max_rows: int = 10

    def response_key(self) -> Tuple:
        """The presentation part of the coalescing key: two requests may
        share one execution *and* one response body only if they render
        identically."""
        return (self.include_rows, self.max_rows)


def _parse_bool(name: str, raw: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ParamError(f"parameter {name!r} wants a boolean, got {raw!r}")


def _parse_int(name: str, raw: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise ParamError(
            f"parameter {name!r} wants an integer, got {raw!r}"
        ) from None


def _parse_float(name: str, raw: str) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise ParamError(
            f"parameter {name!r} wants a number, got {raw!r}"
        ) from None
    if math.isnan(value):
        raise ParamError(f"parameter {name!r} must not be NaN")
    return value


def _parse_seed(name: str, raw: str) -> Optional[int]:
    if raw.strip().lower() in ("none", "null", ""):
        return None
    return _parse_int(name, raw)


#: Algorithm parameters accepted over HTTP -> parser.  ``keep_subtrees``
#: is deliberately absent: HTTP plans always keep the engine default
#: (subtrees kept), so a served plan is exactly the plan a cold one-shot
#: run would execute; ``include_rows`` only controls response rendering.
_ALGO_PARAM_PARSERS = {
    "prune": _parse_bool,
    "sampling_rate": _parse_float,
    "sampling_threshold": _parse_float,
    "seed": _parse_seed,
}

#: Request-level knobs that are not algorithm parameters.
_REQUEST_PARAM_PARSERS = {
    "q": None,
    "k": _parse_int,
    "algorithm": None,
    "deadline_ms": _parse_float,
    "include_rows": _parse_bool,
    "max_rows": _parse_int,
}


def parse_search_params(query_args: Mapping[str, List[str]]) -> SearchRequest:
    """Typed :class:`SearchRequest` from ``urllib.parse.parse_qs`` output.

    Unknown names, repeated values, type mismatches, and parameters the
    requested algorithm does not accept all raise :class:`ParamError`
    (rendered as a 400) — the HTTP analogue of plan-time validation, run
    before any index work.
    """
    flat: Dict[str, str] = {}
    for name, values in query_args.items():
        if name not in _REQUEST_PARAM_PARSERS and name not in _ALGO_PARAM_PARSERS:
            known = sorted((*_REQUEST_PARAM_PARSERS, *_ALGO_PARAM_PARSERS))
            raise ParamError(
                f"unknown parameter {name!r}; expected one of {known}"
            )
        if len(values) != 1:
            raise ParamError(f"parameter {name!r} given {len(values)} times")
        flat[name] = values[0]

    query = flat.get("q", "").strip()
    if not query:
        raise ParamError("missing required parameter 'q' (the keyword query)")

    algorithm = flat.get("algorithm")
    if algorithm is not None:
        canonical_algorithm(algorithm)  # loud 400 for unknown names

    params: Dict[str, object] = {}
    for name, parser in _ALGO_PARAM_PARSERS.items():
        if name in flat:
            params[name] = parser(name, flat[name])
    dropped = inapplicable_params(algorithm, params)
    if dropped:
        raise ParamError(describe_inapplicable(algorithm, dropped))

    k = _parse_int("k", flat["k"]) if "k" in flat else None
    if k is not None and k < 1:
        raise ParamError(f"parameter 'k' must be >= 1, got {k}")
    deadline_ms = (
        _parse_float("deadline_ms", flat["deadline_ms"])
        if "deadline_ms" in flat
        else None
    )
    if deadline_ms is not None and deadline_ms <= 0:
        raise ParamError(
            f"parameter 'deadline_ms' must be > 0, got {deadline_ms:g}"
        )
    max_rows = (
        _parse_int("max_rows", flat["max_rows"]) if "max_rows" in flat else 10
    )
    if max_rows < 0:
        raise ParamError(f"parameter 'max_rows' must be >= 0, got {max_rows}")
    return SearchRequest(
        query=query,
        k=k,
        algorithm=algorithm,
        params=params,
        deadline_ms=deadline_ms,
        include_rows=(
            _parse_bool("include_rows", flat["include_rows"])
            if "include_rows" in flat
            else False
        ),
        max_rows=max_rows,
    )
