"""Saved request streams: one JSONL format for online and offline benches.

A workload file is JSON Lines, one request per line::

    {"query": "software company", "k": 10}
    {"query": "movies gibson", "algorithm": "letopk",
     "params": {"sampling_rate": 0.5, "sampling_threshold": 1000}}
    {"kind": "invalidate"}

``kind`` defaults to ``"search"``; an ``"invalidate"`` line models a
writer tick (the HTTP load generator POSTs ``/admin/invalidate``, ``repro
batch`` calls ``service.invalidate()``), so mixed read/mutate traffic
replays identically online and offline.  Omitted fields defer to the
replayer's defaults, exactly like an HTTP request that leaves ``k`` off.

:func:`zipf_workload` generates the canonical serving stream — a
Zipf-popularity replay over a generated query pool, optionally salted
with invalidation ticks — seeded end to end, so
``benchmarks/loadgen.py`` (open-loop HTTP) and ``repro batch`` (offline)
measure the *same* request sequence.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.errors import ReproError

KINDS = ("search", "invalidate")


class WorkloadError(ReproError):
    """A workload file line failed to parse or validate."""


@dataclass(frozen=True)
class WorkloadRequest:
    """One replayable request (a query, or a writer tick)."""

    query: str = ""
    k: Optional[int] = None
    algorithm: Optional[str] = None
    params: Tuple[Tuple[str, object], ...] = ()
    kind: str = "search"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise WorkloadError(
                f"unknown request kind {self.kind!r}; expected one of {KINDS}"
            )
        if self.kind == "search" and not self.query:
            raise WorkloadError("search requests need a non-empty query")

    @property
    def is_mutation(self) -> bool:
        return self.kind == "invalidate"

    def has_overrides(self) -> bool:
        """Whether this request carries its own k/algorithm/params (and
        therefore cannot ride a uniform ``search_many`` batch)."""
        return (
            self.k is not None
            or self.algorithm is not None
            or bool(self.params)
        )

    def to_json(self) -> dict:
        obj: dict = {}
        if self.kind != "search":
            obj["kind"] = self.kind
            return obj
        obj["query"] = self.query
        if self.k is not None:
            obj["k"] = self.k
        if self.algorithm is not None:
            obj["algorithm"] = self.algorithm
        if self.params:
            obj["params"] = dict(self.params)
        return obj

    @classmethod
    def from_json(cls, obj: dict, line_number: int = 0) -> "WorkloadRequest":
        if not isinstance(obj, dict):
            raise WorkloadError(
                f"workload line {line_number}: expected an object, got "
                f"{type(obj).__name__}"
            )
        unknown = sorted(
            set(obj) - {"query", "k", "algorithm", "params", "kind"}
        )
        if unknown:
            raise WorkloadError(
                f"workload line {line_number}: unknown fields {unknown}"
            )
        params = obj.get("params", {})
        if not isinstance(params, dict):
            raise WorkloadError(
                f"workload line {line_number}: 'params' must be an object"
            )
        try:
            return cls(
                query=str(obj.get("query", "")),
                k=obj.get("k"),
                algorithm=obj.get("algorithm"),
                params=tuple(sorted(params.items())),
                kind=obj.get("kind", "search"),
            )
        except WorkloadError as exc:
            raise WorkloadError(
                f"workload line {line_number}: {exc}"
            ) from None


def save_workload(path, requests: Sequence[WorkloadRequest]) -> int:
    """Write ``requests`` as JSONL; returns the number of lines."""
    with open(path, "w") as handle:
        for request in requests:
            handle.write(json.dumps(request.to_json(), sort_keys=True))
            handle.write("\n")
    return len(requests)


def load_workload(path) -> List[WorkloadRequest]:
    """Parse a JSONL workload file (blank lines and ``#`` comments skip)."""
    requests: List[WorkloadRequest] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                obj = json.loads(stripped)
            except ValueError as exc:
                raise WorkloadError(
                    f"workload line {line_number}: invalid JSON ({exc})"
                ) from None
            requests.append(WorkloadRequest.from_json(obj, line_number))
    if not requests:
        raise WorkloadError(f"no requests in workload file {path!r}")
    return requests


def requests_from_queries(
    queries: Sequence,
    k: Optional[int] = None,
    algorithm: Optional[str] = None,
) -> List[WorkloadRequest]:
    """Plain query tuples/strings -> uniform search requests."""
    return [
        WorkloadRequest(
            query=query if isinstance(query, str) else " ".join(query),
            k=k,
            algorithm=algorithm,
        )
        for query in queries
    ]


def zipf_workload(
    queries: Sequence,
    num_requests: int,
    k: Optional[int] = None,
    algorithm: Optional[str] = None,
    alpha: float = 0.9,
    invalidate_every: int = 0,
    seed: int = 0,
) -> List[WorkloadRequest]:
    """The canonical serving stream: Zipf-popularity replay of ``queries``.

    Hot queries repeat constantly (the coalescing/result-cache regime),
    the tail arrives cold, and — when ``invalidate_every`` is set — every
    N-th request is replaced by a writer tick that flushes the serving
    caches, modeling mutating traffic.  Fully seeded: the same arguments
    always produce the same stream, which is what lets the offline batch
    and the HTTP load generator replay identical workloads.
    """
    from repro.datasets.queries import zipfian_requests

    stream = requests_from_queries(
        zipfian_requests(queries, num_requests, alpha=alpha, seed=seed),
        k=k,
        algorithm=algorithm,
    )
    if invalidate_every > 0:
        tick = WorkloadRequest(kind="invalidate")
        for position in range(invalidate_every - 1, len(stream),
                              invalidate_every):
            stream[position] = tick
    return stream
