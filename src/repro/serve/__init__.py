"""Network serving tier: HTTP front-end, metrics, and workload files.

The first clients of :class:`~repro.search.service.SearchService` were
the single-threaded ``serve`` REPL and the ``batch`` CLI; this package is
the concurrent, measurable front the ROADMAP's "millions of users" story
needs:

* :mod:`repro.serve.http` — an asyncio HTTP/1.1 server with per-request
  deadlines, admission control (bounded queue + load shedding), and
  in-flight duplicate coalescing keyed on
  :attr:`~repro.search.plan.QueryPlan.cache_key`;
* :mod:`repro.serve.pool` — the fork-pool execution backend
  (``--processes N``): N long-lived pre-warmed fork workers executing
  cache-miss plans over tagged pipes for true multi-core HTTP serving,
  with inline failover + respawn on worker death;
* :mod:`repro.serve.metrics` — latency quantiles, QPS windows, and the
  Prometheus text rendering behind ``/metrics``;
* :mod:`repro.serve.params` — request-parameter parsing and the
  applicability validation shared between the HTTP parser and the
  ``serve`` REPL;
* :mod:`repro.serve.workload` — the JSONL request-stream format the
  open-loop load generator replays and ``repro batch`` accepts, so
  offline and online benches share seedable streams.

See ``docs/serving.md`` (HTTP tier section) and ``benchmarks/loadgen.py``.
"""

from repro.serve.http import HttpSearchServer, ServerThread, start_http_server
from repro.serve.pool import (
    ForkWorkerPool,
    PooledSearchService,
    PoolWorkerError,
)
from repro.serve.params import (
    ParamError,
    SearchRequest,
    describe_inapplicable,
    inapplicable_params,
    parse_search_params,
)
from repro.serve.workload import (
    WorkloadRequest,
    load_workload,
    requests_from_queries,
    save_workload,
    zipf_workload,
)

__all__ = [
    "HttpSearchServer",
    "ServerThread",
    "start_http_server",
    "ForkWorkerPool",
    "PooledSearchService",
    "PoolWorkerError",
    "ParamError",
    "SearchRequest",
    "describe_inapplicable",
    "inapplicable_params",
    "parse_search_params",
    "WorkloadRequest",
    "load_workload",
    "requests_from_queries",
    "save_workload",
    "zipf_workload",
]
