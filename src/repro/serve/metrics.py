"""Serving metrics: latency quantiles, QPS windows, Prometheus text.

The HTTP tier's observability surface.  Everything here is updated from
both the event-loop thread and the executor's worker threads, so each
recorder owns a lock; updates are O(1) and reads (one ``/metrics`` scrape
or bench probe at a time) sort a bounded sample window at most.

Rendering follows the Prometheus text exposition format (the same
surface muBench-style microservice benches scrape), producing families
like::

    # TYPE repro_http_requests_total counter
    repro_http_requests_total{endpoint="/search",status="200"} 41
    repro_http_request_latency_seconds{quantile="0.99"} 0.0021
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: SearchStats counters the server aggregates across requests — the
#: pruning and scatter-gather work counters ``/metrics`` re-exports.
SEARCH_COUNTERS = (
    "candidate_roots",
    "roots_expanded",
    "patterns_checked",
    "subtrees_enumerated",
    "roots_skipped",
    "prefixes_skipped",
    "pairs_skipped",
    "shards_total",
    "shards_skipped",
    "shard_failovers",
)


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1,
        max(0, round(fraction * (len(sorted_values) - 1))),
    )
    return sorted_values[rank]


class LatencyRecorder:
    """Cumulative count/sum plus quantiles over a bounded sample window.

    The window (default 4096 most-recent samples) bounds memory and keeps
    quantiles responsive to the current load phase rather than the whole
    process lifetime; count and sum are exact and monotone.
    """

    def __init__(self, window: int = 4096) -> None:
        self._lock = threading.Lock()
        self._samples: deque = deque(maxlen=window)
        self.count = 0
        self.total_seconds = 0.0

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)
            self.count += 1
            self.total_seconds += seconds

    def quantiles(
        self, fractions: Tuple[float, ...] = (0.5, 0.95, 0.99)
    ) -> Dict[float, float]:
        with self._lock:
            window = sorted(self._samples)
        return {q: percentile(window, q) for q in fractions}

    def snapshot(self) -> Dict[str, float]:
        quantiles = self.quantiles()
        return {
            "count": self.count,
            "sum_seconds": self.total_seconds,
            "p50_seconds": quantiles[0.5],
            "p95_seconds": quantiles[0.95],
            "p99_seconds": quantiles[0.99],
        }


class RateWindow:
    """Completions-per-second over a sliding window (the QPS gauge)."""

    def __init__(self, window_seconds: float = 10.0) -> None:
        self._lock = threading.Lock()
        self.window_seconds = window_seconds
        self._ticks: deque = deque()

    def tick(self, now: Optional[float] = None) -> None:
        now = time.monotonic() if now is None else now
        with self._lock:
            self._ticks.append(now)
            self._trim(now)

    def rate(self, now: Optional[float] = None) -> float:
        now = time.monotonic() if now is None else now
        with self._lock:
            self._trim(now)
            if not self._ticks:
                return 0.0
            span = max(now - self._ticks[0], 1e-9)
            return len(self._ticks) / span

    def _trim(self, now: float) -> None:
        cutoff = now - self.window_seconds
        while self._ticks and self._ticks[0] < cutoff:
            self._ticks.popleft()


class ServerMetrics:
    """Every counter the HTTP tier maintains beyond ``ServiceStats``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started = time.monotonic()
        #: (endpoint, status) -> count, for every response written.
        self.requests_total: Dict[Tuple[str, str], int] = defaultdict(int)
        self.requests_shed = 0
        self.requests_coalesced = 0
        self.requests_expired = 0
        #: Admitted-and-answered (2xx /search) latencies only, so shed
        #: fast-failures cannot flatter the quantiles.
        self.latency = LatencyRecorder()
        self.qps = RateWindow()
        #: Aggregated SearchStats work counters (SEARCH_COUNTERS).
        self.search_counters: Dict[str, int] = defaultdict(int)

    def observe_response(self, endpoint: str, status: int) -> None:
        with self._lock:
            self.requests_total[(endpoint, str(status))] += 1
        self.qps.tick()

    def inc(self, counter: str, delta: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + delta)

    def absorb_search_stats(self, stats) -> None:
        with self._lock:
            for name in SEARCH_COUNTERS:
                self.search_counters[name] += getattr(stats, name, 0)

    def uptime_seconds(self) -> float:
        return time.monotonic() - self.started


@dataclass
class MetricFamily:
    """One Prometheus family: name, type, help, labeled samples."""

    name: str
    mtype: str
    help: str
    samples: List[Tuple[Mapping[str, str], float]] = field(
        default_factory=list
    )

    def add(self, labels: Mapping[str, str], value: float) -> "MetricFamily":
        self.samples.append((labels, value))
        return self


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(families: Iterable[MetricFamily]) -> str:
    """The ``/metrics`` payload: text exposition format, one family per
    ``# TYPE`` block, labels sorted for deterministic output."""
    lines: List[str] = []
    for family in families:
        lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.mtype}")
        for labels, value in family.samples:
            if labels:
                rendered = ",".join(
                    f'{name}="{_escape_label(str(labels[name]))}"'
                    for name in sorted(labels)
                )
                lines.append(
                    f"{family.name}{{{rendered}}} {_format_value(value)}"
                )
            else:
                lines.append(f"{family.name} {_format_value(value)}")
    return "\n".join(lines) + "\n"
