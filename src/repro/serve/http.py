"""Asyncio HTTP front-end over :class:`~repro.search.service.SearchService`.

Stdlib-only HTTP/1.1 serving tier with the three mechanisms a keyword
-search endpoint needs before "millions of users" is more than a slogan:

* **deadlines** — each request carries an absolute deadline (per-request
  ``deadline_ms`` or the server default); a request whose deadline passes
  while it waits in the executor queue is answered 504 *without ever
  executing*, so a backlog drains at queue speed instead of search speed;
* **admission control** — at most ``max_queue`` requests may be executing
  or queued; beyond that the server sheds instantly with a 503 and a
  ``requests_shed`` counter, keeping the latency of admitted requests
  bounded under overload;
* **coalescing** — concurrent duplicate requests (same
  :attr:`~repro.search.plan.QueryPlan.cache_key`, store version, and
  rendering options) share one execution: followers await the leader's
  future and receive bit-identical response bytes plus ``X-Coalesced: 1``.

Search execution is CPU-bound pure Python, so the event loop never runs
it: requests bridge to a small :class:`~concurrent.futures.ThreadPoolExecutor`
via ``run_in_executor`` (the executor's FIFO queue doubles as the
admission queue), while the loop thread keeps accepting, shedding, and
coalescing.  True CPU parallelism lives underneath: front a
:class:`~repro.serve.pool.PooledSearchService` (``repro serve --http
... --processes N``) and each executor thread drives one long-lived
fork worker — the loop keeps owning admission, deadlines, coalescing,
and the result LRU, only cache-miss executions cross a pipe — or a
:class:`~repro.search.sharding.ShardedSearchService` for intra-request
scatter–gather.

Endpoints: ``GET /search``, ``GET /metrics`` (Prometheus text),
``GET /healthz``, ``POST /admin/invalidate`` (writer tick).
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.errors import ReproError, StalePlanError
from repro.search.service import SearchService
from repro.serve.metrics import (
    MetricFamily,
    ServerMetrics,
    render_prometheus,
)
from repro.serve.params import ParamError, SearchRequest, parse_search_params

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: (status, body-bytes) — what one execution produces and every coalesced
#: follower reuses verbatim.
Response = Tuple[int, bytes]


def _json_body(obj) -> bytes:
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")


def _error_body(status: int, message: str) -> bytes:
    return _json_body({"error": _REASONS.get(status, "Error"),
                       "status": status, "message": message})


class HttpSearchServer:
    """The serving tier: one event loop, one worker pool, one service.

    Construct, ``await start()``, serve, ``await stop()``.  All mutable
    dispatch state (``_admitted``, ``_inflight``) is touched only from
    the event-loop thread — worker threads compute response bodies and
    update (locked) metrics, nothing else — so admission and coalescing
    need no locks of their own.
    """

    def __init__(
        self,
        service: SearchService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_queue: int = 64,
        workers: int = 4,
        default_deadline_ms: Optional[float] = None,
        drain_timeout: float = 10.0,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.service = service
        self.host = host
        self.port = port
        self.max_queue = max_queue
        self.workers = workers
        self.default_deadline_ms = default_deadline_ms
        self.drain_timeout = drain_timeout
        self.metrics = ServerMetrics()
        #: Requests currently executing or queued for the executor.
        self._admitted = 0
        #: Coalescing table: request identity -> the leader's future.
        self._inflight: Dict[Tuple, "asyncio.Future[Response]"] = {}
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        #: Open connection handlers, so ``stop`` can close idle
        #: keep-alive sockets instead of leaving tasks to be cancelled.
        self._conn_writers: set = set()
        self._conn_tasks: set = set()

    # ------------------------------------------------------------ lifecycle

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def start(self) -> None:
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-http"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: stop accepting, drain admitted requests,
        then release the worker pool and the service's resources (the
        sharded service reaps its fork-worker pool in ``close``)."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            deadline = time.monotonic() + self.drain_timeout
            while self._admitted > 0 and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
        for writer in list(self._conn_writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=1.0)
        if self._executor is not None:
            self._executor.shutdown(wait=drain)
        self.service.close()

    # ------------------------------------------------------- HTTP plumbing

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_writers.add(writer)
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or not request_line.strip():
                    break
                try:
                    method, target, version = (
                        request_line.decode("latin-1").split()
                    )
                except ValueError:
                    await self._write_response(
                        writer, 400,
                        _error_body(400, "malformed request line"),
                        keep_alive=False,
                    )
                    break
                headers = {}
                while True:
                    line = await reader.readline()
                    if not line or line in (b"\r\n", b"\n"):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                body_length = int(headers.get("content-length", 0) or 0)
                if body_length:
                    await reader.readexactly(body_length)

                keep_alive = (
                    version != "HTTP/1.0"
                    and headers.get("connection", "").lower() != "close"
                )
                status, body, extra = await self._dispatch(method, target)
                await self._write_response(
                    writer, status, body,
                    content_type=extra.pop("content-type", "application/json"),
                    extra_headers=extra,
                    keep_alive=keep_alive,
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._conn_writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _write_response(
        self,
        writer,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        extra_headers: Optional[Dict[str, str]] = None,
        keep_alive: bool = True,
    ) -> None:
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        )
        await writer.drain()

    # ----------------------------------------------------------- dispatch

    async def _dispatch(
        self, method: str, target: str
    ) -> Tuple[int, bytes, Dict[str, str]]:
        parts = urlsplit(target)
        path = parts.path
        if path == "/search":
            if method != "GET":
                return self._observe(path, 405, _error_body(
                    405, "/search is GET-only"))
            return await self._handle_search(parts.query)
        if path == "/metrics":
            if method != "GET":
                return self._observe(path, 405, _error_body(
                    405, "/metrics is GET-only"))
            body = render_prometheus(self._metric_families()).encode("utf-8")
            return self._observe(
                path, 200, body,
                {"content-type": "text/plain; version=0.0.4; charset=utf-8"},
            )
        if path == "/healthz":
            if method != "GET":
                return self._observe(path, 405, _error_body(
                    405, "/healthz is GET-only"))
            return self._observe(path, 200, _json_body(
                {"ok": True, "draining": self._draining}))
        if path == "/admin/invalidate":
            if method != "POST":
                return self._observe(path, 405, _error_body(
                    405, "/admin/invalidate is POST-only"))
            self.service.invalidate()
            return self._observe(path, 200, _json_body(
                {"invalidated": True}))
        return self._observe(path, 404, _error_body(
            404, f"no route for {path!r}"))

    def _observe(
        self,
        endpoint: str,
        status: int,
        body: bytes,
        extra: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, bytes, Dict[str, str]]:
        self.metrics.observe_response(endpoint, status)
        return status, body, dict(extra or {})

    # ------------------------------------------------------------- search

    async def _handle_search(
        self, query_string: str
    ) -> Tuple[int, bytes, Dict[str, str]]:
        arrival = time.monotonic()
        try:
            request = parse_search_params(
                parse_qs(query_string, keep_blank_values=True)
            )
            plan = self.service.plan(
                request.query,
                k=request.k,
                algorithm=request.algorithm,
                **dict(request.params),
            )
        except (ParamError, ReproError) as exc:
            return self._observe("/search", 400, _error_body(400, str(exc)))

        deadline_ms = (
            request.deadline_ms
            if request.deadline_ms is not None
            else self.default_deadline_ms
        )
        deadline = (
            arrival + deadline_ms / 1000.0 if deadline_ms is not None else None
        )

        # Coalesce: a cacheable plan already being executed for the same
        # store version and rendering options shares the leader's bytes.
        key = (
            (plan.cache_key, plan.store_version) + request.response_key()
            if plan.cacheable
            else None
        )
        if key is not None and key in self._inflight:
            self.metrics.inc("requests_coalesced")
            status, body = await asyncio.shield(self._inflight[key])
            headers = {"X-Coalesced": "1"}
            if status == 200:
                self.metrics.latency.record(time.monotonic() - arrival)
            return self._observe("/search", status, body, headers)

        # Admission control: shed instead of queueing without bound.
        if self._draining or self._admitted >= self.max_queue:
            self.metrics.inc("requests_shed")
            return self._observe("/search", 503, _error_body(
                503,
                "draining" if self._draining else
                f"admission queue full ({self.max_queue} in flight)",
            ))

        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Response]" = loop.create_future()
        if key is not None:
            self._inflight[key] = future
        self._admitted += 1
        try:
            status, body = await loop.run_in_executor(
                self._executor, self._execute_request, plan, deadline, request
            )
        except Exception as exc:  # pragma: no cover - defensive
            status, body = 500, _error_body(500, repr(exc))
        finally:
            self._admitted -= 1
            if key is not None and self._inflight.get(key) is future:
                del self._inflight[key]
            # Followers must always be released, even on failure paths.
            future.set_result((status, body))
        if status == 200:
            self.metrics.latency.record(time.monotonic() - arrival)
        return self._observe("/search", status, body)

    def _execute_request(
        self, plan, deadline: Optional[float], request: SearchRequest
    ) -> Response:
        """Worker-thread body: deadline gate, execute, render JSON."""
        if deadline is not None and time.monotonic() >= deadline:
            self.metrics.inc("requests_expired")
            return 504, _error_body(
                504, "deadline expired before execution")
        try:
            # A writer can move the store between planning (in the async
            # loop) and execution (here); a stale plan is not an error to
            # surface, just a race to absorb — replan against the fresh
            # snapshot.  Bounded: a writer hot enough to outrun three
            # replans gets the 500 and the client's retry.
            for attempt in range(3):
                try:
                    result = self.service.search(plan=plan)
                    break
                except StalePlanError:
                    if attempt == 2:
                        raise
                    plan = self.service.plan(
                        request.query,
                        k=request.k,
                        algorithm=request.algorithm,
                        **dict(request.params),
                    )
        except ReproError as exc:
            return 500, _error_body(500, str(exc))
        self.metrics.absorb_search_stats(result.stats)
        return 200, self._render_result(plan, result, request)

    def _render_result(self, plan, result, request: SearchRequest) -> bytes:
        graph = self.service.snapshot().graph if request.include_rows else None
        answers = []
        for answer in result.answers:
            rendered = {
                "score": answer.score,
                "pattern_key": list(answer.pattern_key),
                "num_subtrees": answer.num_subtrees,
            }
            if request.include_rows:
                table = answer.to_table(graph, request.max_rows)
                rendered["columns"] = list(table.headers())
                rendered["rows"] = [list(row) for row in table.rows]
            answers.append(rendered)
        stats = result.stats
        return _json_body({
            "query": plan.query_text,
            "words": list(plan.words),
            "algorithm": plan.algorithm,
            "k": plan.k,
            "d": plan.d,
            "store_version": plan.store_version,
            "answers": answers,
            "stats": {
                "elapsed_ms": stats.elapsed_seconds * 1000.0,
                "from_result_cache": stats.from_result_cache,
                "candidate_roots": stats.candidate_roots,
                "roots_expanded": stats.roots_expanded,
                "patterns_checked": stats.patterns_checked,
                "subtrees_enumerated": stats.subtrees_enumerated,
                "roots_skipped": stats.roots_skipped,
                "prefixes_skipped": stats.prefixes_skipped,
                "pairs_skipped": stats.pairs_skipped,
                "shards_total": stats.shards_total,
                "shards_skipped": stats.shards_skipped,
            },
        })

    # ------------------------------------------------------------- metrics

    def _metric_families(self) -> List[MetricFamily]:
        metrics = self.metrics
        stats = self.service.stats
        families = [
            MetricFamily(
                "repro_http_uptime_seconds", "gauge",
                "Seconds since the server object was created.",
            ).add({}, metrics.uptime_seconds()),
            MetricFamily(
                "repro_http_qps", "gauge",
                "Responses per second over the sliding rate window.",
            ).add({}, metrics.qps.rate()),
            MetricFamily(
                "repro_http_queue_depth", "gauge",
                "Requests currently admitted (executing or queued).",
            ).add({}, self._admitted),
            MetricFamily(
                "repro_http_requests_shed_total", "counter",
                "Requests rejected 503 by admission control.",
            ).add({}, metrics.requests_shed),
            MetricFamily(
                "repro_http_requests_coalesced_total", "counter",
                "Requests served from an in-flight duplicate execution.",
            ).add({}, metrics.requests_coalesced),
            MetricFamily(
                "repro_http_requests_expired_total", "counter",
                "Requests whose deadline passed before execution (504).",
            ).add({}, metrics.requests_expired),
        ]

        requests = MetricFamily(
            "repro_http_requests_total", "counter",
            "Responses written, by endpoint and status.",
        )
        with metrics._lock:
            totals = dict(metrics.requests_total)
            counters = dict(metrics.search_counters)
        for (endpoint, status), count in sorted(totals.items()):
            requests.add({"endpoint": endpoint, "status": status}, count)
        families.append(requests)

        latency = metrics.latency.snapshot()
        summary = MetricFamily(
            "repro_http_request_latency_seconds", "summary",
            "Latency of answered (200) /search requests.",
        )
        for quantile, key in (
            ("0.5", "p50_seconds"),
            ("0.95", "p95_seconds"),
            ("0.99", "p99_seconds"),
        ):
            summary.add({"quantile": quantile}, latency[key])
        families.append(summary)
        families.append(MetricFamily(
            "repro_http_request_latency_seconds_sum", "counter",
            "Total latency of answered /search requests.",
        ).add({}, latency["sum_seconds"]))
        families.append(MetricFamily(
            "repro_http_request_latency_seconds_count", "counter",
            "Count of answered /search requests.",
        ).add({}, latency["count"]))

        hits = MetricFamily(
            "repro_cache_hits_total", "counter",
            "SearchService cache hits by tier.",
        )
        misses = MetricFamily(
            "repro_cache_misses_total", "counter",
            "SearchService cache misses by tier.",
        )
        hits.add({"tier": "result"}, stats.result_hits)
        misses.add({"tier": "result"}, stats.result_misses)
        hits.add({"tier": "context"}, stats.context_hits)
        misses.add({"tier": "context"}, stats.context_misses)
        hits.add({"tier": "resolution"}, stats.resolution_hits)
        misses.add({"tier": "resolution"}, stats.resolution_misses)
        hits.add({"tier": "candidate"}, stats.candidate_hits)
        families.extend([hits, misses])

        families.append(MetricFamily(
            "repro_service_searches_total", "counter",
            "Queries served by the underlying SearchService.",
        ).add({}, stats.searches))
        families.append(MetricFamily(
            "repro_service_snapshots_total", "counter",
            "Serving snapshots taken (cold loads + invalidation refreshes).",
        ).add({}, stats.snapshots_taken))
        families.append(MetricFamily(
            "repro_service_invalidations_total", "counter",
            "Explicit cache invalidations (writer ticks).",
        ).add({}, stats.invalidations))
        families.append(MetricFamily(
            "repro_index_load_seconds", "gauge",
            "Seconds spent (re)loading the serving snapshot.",
        ).add({}, stats.load_seconds))

        # Delta-overlay lifecycle: live mutation backlog and compaction
        # lineage of the serving store (all zero for heap-resident
        # bundles, which have no overlay and no generations).
        store = self.service.indexes.store
        families.append(MetricFamily(
            "repro_service_compactions_total", "counter",
            "Delta-overlay compactions run through the service.",
        ).add({}, stats.compactions))
        families.append(MetricFamily(
            "repro_store_generation", "gauge",
            "Compaction generation of the serving store's mapped base.",
        ).add({}, getattr(store, "generation", 0)))
        families.append(MetricFamily(
            "repro_store_overlay_words", "gauge",
            "Words holding heap overlay postings since the last re-map.",
        ).add({}, getattr(store, "overlay_words", 0)))
        families.append(MetricFamily(
            "repro_store_overlay_postings", "gauge",
            "Heap overlay postings awaiting compaction.",
        ).add({}, getattr(store, "overlay_postings", 0)))

        # Execution backend: which spine runs cache-miss executions and
        # how wide it is.  A plain service executes on this server's
        # thread bridge; pool-backed services self-describe via stats.
        backend = stats.execution_backend
        backend_workers = stats.execution_workers
        if backend == "inline":
            backend, backend_workers = "threads", self.workers
        families.append(MetricFamily(
            "repro_execution_workers", "gauge",
            "Parallel execution width of the active backend.",
        ).add({"backend": backend}, backend_workers))
        families.append(MetricFamily(
            "repro_worker_failovers_total", "counter",
            "Executions answered inline after a pool worker died.",
        ).add({}, stats.worker_failovers))
        families.append(MetricFamily(
            "repro_pool_rebuilds_total", "counter",
            "Worker pools (re)built (lazy first build + version bumps).",
        ).add({}, stats.pool_rebuilds))
        worker_snapshot = getattr(self.service, "worker_snapshot", None)
        if worker_snapshot is not None:
            alive = MetricFamily(
                "repro_pool_worker_alive", "gauge",
                "1 when the pool worker process is alive.",
            )
            busy = MetricFamily(
                "repro_pool_worker_busy", "gauge",
                "1 while the pool worker slot is executing a plan.",
            )
            executed = MetricFamily(
                "repro_pool_worker_executed_total", "counter",
                "Plans executed by the pool worker slot.",
            )
            respawns = MetricFamily(
                "repro_pool_worker_respawns_total", "counter",
                "Times the pool worker slot was respawned after a death.",
            )
            for row in worker_snapshot():
                label = {"worker": str(row["worker"])}
                alive.add(label, 1.0 if row["alive"] else 0.0)
                busy.add(label, 1.0 if row["busy"] else 0.0)
                executed.add(label, row["executed"])
                respawns.add(label, row["respawns"])
            families.extend([alive, busy, executed, respawns])
            pool_info = getattr(self.service, "pool_info", None)
            if pool_info is not None:
                families.append(MetricFamily(
                    "repro_pool_free_slots", "gauge",
                    "Pool worker slots currently free.",
                ).add({}, pool_info()["free_slots"]))

        work = MetricFamily(
            "repro_search_counter_total", "counter",
            "Aggregated per-request search work counters.",
        )
        for name in sorted(counters):
            work.add({"counter": name}, counters[name])
        families.append(work)
        return families


# --------------------------------------------------------------- runners


class ServerThread:
    """An :class:`HttpSearchServer` on a background thread with its own
    event loop — what tests and the load benches use to host a server
    inside the measuring process."""

    def __init__(self, server: HttpSearchServer) -> None:
        self.server = server
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._drain = True
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-http-server", daemon=True
        )

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self, drain: bool = True) -> None:
        if self._loop is None or self._stop is None:
            return
        self._drain = drain
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join()

    @property
    def address(self) -> str:
        return self.server.address

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:  # pragma: no cover - defensive
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.server.stop(drain=self._drain)


def start_http_server(service: SearchService, **kwargs) -> ServerThread:
    """Convenience: construct, start, and return a background server."""
    return ServerThread(HttpSearchServer(service, **kwargs)).start()


def run_server(
    service: SearchService,
    host: str = "127.0.0.1",
    port: int = 8080,
    ready=None,
    **kwargs,
) -> None:
    """Foreground runner for ``repro serve --http``: serves until SIGINT
    or SIGTERM, then drains and shuts down.  ``ready`` (if given) is
    called with the bound server once it is listening."""

    async def main() -> None:
        server = HttpSearchServer(service, host=host, port=port, **kwargs)
        await server.start()
        if ready is not None:
            ready(server)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await stop.wait()
        await server.stop(drain=True)

    asyncio.run(main())
