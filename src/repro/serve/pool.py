"""Fork-pool execution backend for the HTTP serving tier.

The asyncio dispatch loop (:mod:`repro.serve.http`) bridges request
execution to a ``ThreadPoolExecutor``, which the GIL caps at ~1×
single-thread throughput for the pure-Python top-k loops.  This module
adds the multi-core path ``docs/serving.md`` flags as the next capacity
unlock: :class:`PooledSearchService` is a drop-in
:class:`~repro.search.service.SearchService` whose cache-miss
executions cross to N long-lived **fork workers** instead of running
inline.

Division of labor — the parent keeps every piece of dispatch state:

* admission, deadlines, and in-flight coalescing stay on the asyncio
  loop (a worker never sees a shed or expired request);
* the result LRU, fragment tier, and term-resolution tier stay in the
  parent — only result-cache **misses** cross a pipe, and the completed
  result populates the parent caches so coalesced followers and repeat
  requests are served without touching the pool;
* workers are pure executors: they inherit the serving snapshot through
  the forked address space (``MappedPostingStore`` pages are shared
  copy-free — nothing index-sized is pickled, heap columns are
  copy-on-write) and answer canonical
  :class:`~repro.search.plan.QueryPlan` objects over tagged duplex
  pipes with the portable ``(score, pattern_key, num_subtrees,
  PathEntry-tuple combos, estimated_score)`` rows of
  :func:`~repro.search.sharding.execute_shard_plan`, so
  ``include_rows=True`` works across the pipe.

Invalidation is the service's own version-guard protocol, one level up:
the pool is tagged with the store version it was forked at, and a
version mismatch at execution time closes it and forks a fresh pool
from the new snapshot — workers can never serve a stale snapshot.
Worker death (crash, OOM-kill, SIGKILL fault injection) is detected by
pipe liveness, answered by **inline failover** in the parent (the
request still gets a bit-identical answer), counted in
``ServiceStats.worker_failovers``, and healed by respawning the dead
slot — the same fault model :class:`~repro.search.sharding.\
ShardWorkerPool` implements per shard.

Composing with ``--shards``: the chosen composition is **parent
dispatch → fork worker → inline scatter over the inherited partition**.
Each worker holds the whole :class:`~repro.index.shards.ShardedIndexes`
partition and runs the bound-driven best-bound-first merge loop
(:func:`~repro.search.sharding.execute_sharded_plan` — literally the
same function the sharded service's coordinator runs) in-process, so
shard skip counters flow unchanged.  The alternative — nested per-worker
shard pools — would put N×K processes on the box, oversubscribing every
core for *intra*-request parallelism when the HTTP tier's scarce
resource is *inter*-request throughput; one process per concurrent
request parallelizes the stream without oversubscription and keeps the
failure domain one pipe wide.  See ``docs/serving.md``.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from typing import List, Optional

from repro.core.errors import SearchError
from repro.index.builder import PathIndexes
from repro.index.shards import ShardedIndexes, partition_indexes
from repro.scoring.function import PAPER_DEFAULT, ScoringFunction
from repro.search.context import EnumerationContext
from repro.search.plan import QueryPlan
from repro.search.result import PatternAnswer, SearchResult, pattern_from_key
from repro.search.service import SearchService
from repro.search.sharding import (
    execute_shard_plan,
    execute_sharded_plan,
    plan_shardable,
    shard_upper_bounds,
)

DEFAULT_POOL_PROCESSES = 2


class PoolWorkerError(SearchError):
    """A fork-pool worker died or stopped responding mid-request."""


def _execute_portable(
    bundle: PathIndexes, sharded: Optional[ShardedIndexes], plan: QueryPlan
):
    """Worker-side execution: a plan in, portable answers + stats out.

    Plain pools (and non-shardable plans on sharded pools) run the whole
    plan against the inherited snapshot; sharded pools run the inline
    scatter–gather merge loop over the inherited partition — the same
    :func:`execute_sharded_plan` the sharded coordinator uses, so the
    two spines produce bit-identical answers by construction.
    """
    if sharded is None or not plan_shardable(plan):
        return execute_shard_plan(bundle, plan)
    context = EnumerationContext(bundle, plan.resolved_query())
    uppers = shard_upper_bounds(sharded, context, plan.scoring)
    result = execute_sharded_plan(
        bundle,
        plan,
        sharded,
        uppers,
        lambda shard_id: execute_shard_plan(sharded.shards[shard_id], plan),
        candidate_roots=len(context.candidate_roots),
    )
    portable = [
        (
            answer.score,
            answer.pattern_key,
            answer.num_subtrees,
            [tuple(combo) for combo in answer.subtrees],
            answer.estimated_score,
        )
        for answer in result.answers
    ]
    return portable, result.stats


def _pool_worker_main(
    bundle: PathIndexes, sharded: Optional[ShardedIndexes], conn
) -> None:
    """One pool worker: handshake, then serve plans until told to stop.

    Protocol (all tuples): receives ``("execute", tag, plan)`` and
    answers ``("ok", tag, (portable_answers, stats))`` or
    ``("error", tag, message)``; ``("stop",)`` exits cleanly;
    ``("exit",)`` hard-kills immediately and ``("arm_exit",)`` arms a
    hard kill *after the next plan is received but before it is
    answered* — the deterministic mid-request death hook the
    fault-injection tests use.  The tag is echoed so a stale response
    left in the pipe by a timed-out request is discarded, never
    mismatched.  Pre-warm happens in the parent before the fork (once,
    not N times), so workers are born warm.
    """
    die_on_next = False
    try:
        conn.send(("ready",))
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "stop":
                break
            if kind == "exit":
                os._exit(1)
            if kind == "arm_exit":
                die_on_next = True
            elif kind == "execute":
                _, tag, plan = message
                if die_on_next:
                    os._exit(1)
                try:
                    payload = _execute_portable(bundle, sharded, plan)
                except Exception as exc:  # noqa: BLE001 - report, don't die
                    conn.send(("error", tag, f"{type(exc).__name__}: {exc}"))
                else:
                    conn.send(("ok", tag, payload))
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent went away; nothing to report to
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass


class _PoolWorker:
    __slots__ = ("process", "conn", "tag", "busy", "executed", "respawns")

    def __init__(self, process, conn, respawns: int = 0) -> None:
        self.process = process
        self.conn = conn
        self.tag = 0
        self.busy = False
        self.executed = 0
        self.respawns = respawns


class ForkWorkerPool:
    """N interchangeable fork workers behind a free-slot queue.

    Unlike :class:`~repro.search.sharding.ShardWorkerPool` (one worker
    *per shard*, one in-flight query per pool), every worker here can
    execute every plan, and N requests execute concurrently — one
    executor thread owns one worker slot for the duration of a request,
    so each duplex pipe still has exactly one user at a time and needs
    no multiplexing.  Fork-only by design: the snapshot (and the
    optional shard partition) is inherited through the forked address
    space, never pickled.
    """

    def __init__(
        self,
        bundle: PathIndexes,
        num_workers: int,
        sharded: Optional[ShardedIndexes] = None,
        timeout: float = 60.0,
    ) -> None:
        import multiprocessing

        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-fork platform
            raise SearchError(
                f"the fork-pool backend requires the fork start method: "
                f"{exc}"
            ) from exc
        if num_workers < 1:
            raise SearchError(
                f"num_workers must be >= 1, got {num_workers}"
            )
        self.bundle = bundle
        self.sharded = sharded
        self.num_workers = num_workers
        self.timeout = timeout
        self.store_version = bundle.store.version
        self.closed = False
        self._respawn_lock = threading.Lock()
        self._workers: List[Optional[_PoolWorker]] = [None] * num_workers
        self._free: "queue.Queue[int]" = queue.Queue()
        try:
            for slot in range(num_workers):
                self._workers[slot] = self._spawn(slot)
            for slot in range(num_workers):
                self._await_ready(slot)
        except BaseException:
            self.close()
            raise
        for slot in range(num_workers):
            self._free.put(slot)

    # ----------------------------------------------------------- lifecycle

    def _spawn(self, slot: int, respawns: int = 0) -> _PoolWorker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(self.bundle, self.sharded, child_conn),
            daemon=True,
            name=f"repro-pool-{slot}",
        )
        process.start()
        child_conn.close()
        return _PoolWorker(process, parent_conn, respawns=respawns)

    def _await_ready(self, slot: int) -> None:
        worker = self._workers[slot]
        message = self._recv(worker, self.timeout, slot)
        if message != ("ready",):
            raise PoolWorkerError(
                f"pool worker {slot} sent {message!r} instead of the "
                "ready handshake"
            )

    def respawn(self, slot: int) -> None:
        """Replace a dead (or wedged) worker with a fresh one."""
        with self._respawn_lock:
            if self.closed:
                return
            respawns = 0
            worker = self._workers[slot]
            if worker is not None:
                respawns = worker.respawns + 1
            self._discard(slot)
            self._workers[slot] = self._spawn(slot, respawns=respawns)
            self._await_ready(slot)

    def _discard(self, slot: int) -> None:
        worker = self._workers[slot]
        if worker is None:
            return
        self._workers[slot] = None
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5.0)
        if worker.process.is_alive():  # pragma: no cover - stuck in syscall
            worker.process.kill()
            worker.process.join(timeout=5.0)

    def kill_worker(self, slot: int) -> None:
        """Hard-kill one worker (SIGKILL) — the fault-injection hook."""
        worker = self._workers[slot]
        if worker is not None and worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=5.0)

    def arm_exit(self, slot: int) -> None:
        """Arm a deterministic mid-request death: the worker will
        ``os._exit(1)`` after receiving its next plan, before answering
        — so the killing request itself exercises inline failover."""
        worker = self._workers[slot]
        if worker is not None and worker.process.is_alive():
            worker.conn.send(("arm_exit",))

    def alive_workers(self) -> int:
        return sum(
            1
            for worker in self._workers
            if worker is not None and worker.process.is_alive()
        )

    def close(self) -> None:
        """Stop every worker; idempotent."""
        if self.closed:
            return
        self.closed = True
        for worker in self._workers:
            if worker is None:
                continue
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for slot in range(len(self._workers)):
            self._discard(slot)

    # ----------------------------------------------------------- execution

    def execute(self, plan: QueryPlan):
        """Run ``plan`` on any free worker; raises
        :class:`PoolWorkerError` when the slot's worker is dead, hangs
        up mid-request, or stays silent past the pool timeout (the
        caller then fails over inline).  The dead slot is respawned
        before the error propagates, so the pool is whole again by the
        time the failover answer is served.
        """
        try:
            slot = self._free.get(timeout=self.timeout)
        except queue.Empty:
            raise PoolWorkerError(
                f"no free pool worker within {self.timeout:g}s"
            ) from None
        try:
            return self._execute_on_slot(slot, plan)
        except PoolWorkerError:
            self.respawn(slot)
            raise
        finally:
            worker = self._workers[slot]
            if worker is not None:
                worker.busy = False
            if not self.closed:
                self._free.put(slot)

    def _execute_on_slot(self, slot: int, plan: QueryPlan):
        worker = self._workers[slot]
        if worker is None or not worker.process.is_alive():
            raise PoolWorkerError(f"pool worker {slot} is not alive")
        worker.busy = True
        worker.tag += 1
        tag = worker.tag
        try:
            worker.conn.send(("execute", tag, plan))
        except (BrokenPipeError, OSError) as exc:
            raise PoolWorkerError(
                f"pool worker {slot} pipe is broken: {exc}"
            ) from exc
        while True:
            message = self._recv(worker, self.timeout, slot)
            if message[0] == "ok" and message[1] == tag:
                worker.executed += 1
                return message[2]
            if message[0] == "error" and message[1] == tag:
                raise SearchError(
                    f"pool worker {slot} failed executing the plan: "
                    f"{message[2]}"
                )
            # A stale response from a request that timed out earlier:
            # discard and keep waiting for our tag.

    def _recv(self, worker: _PoolWorker, timeout: float, slot: int):
        """One message from a worker, with liveness-aware waiting."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                if worker.conn.poll(0.05):
                    return worker.conn.recv()
            except (EOFError, OSError) as exc:
                raise PoolWorkerError(
                    f"pool worker {slot} hung up: {exc}"
                ) from exc
            if not worker.process.is_alive():
                raise PoolWorkerError(
                    f"pool worker {slot} died (exit code "
                    f"{worker.process.exitcode})"
                )
            if time.monotonic() >= deadline:
                raise PoolWorkerError(
                    f"pool worker {slot} did not answer within {timeout:g}s"
                )

    # ----------------------------------------------------------- reporting

    def worker_snapshot(self) -> List[dict]:
        """Per-worker gauges for ``/metrics``: busy flag, lifetime
        executed count, and respawn count per slot."""
        rows = []
        for slot, worker in enumerate(self._workers):
            rows.append(
                {
                    "worker": slot,
                    "alive": bool(
                        worker is not None and worker.process.is_alive()
                    ),
                    "busy": bool(worker is not None and worker.busy),
                    "executed": worker.executed if worker is not None else 0,
                    "respawns": worker.respawns if worker is not None else 0,
                }
            )
        return rows

    def free_slots(self) -> int:
        return self._free.qsize()


class PooledSearchService(SearchService):
    """Drop-in service whose executions run on a fork-worker pool.

    Same caches, same snapshot protocol, bit-identical answers as
    :class:`~repro.search.service.SearchService` — with cache-miss
    executions crossing to :class:`ForkWorkerPool` workers.  The pool
    is built lazily on the first poolable execution and rebuilt whenever
    the store version moves.  Pass ``num_shards=K`` to compose with the
    partitioned store: workers then run the inline scatter–gather merge
    loop over the inherited partition (module docstring).  Call
    :meth:`close` (or use as a context manager) to reap the workers.

    Only the ``baseline`` algorithm routes inline: it walks the live
    graph, which a forked worker froze at pool-build time.  Every
    store-reading plan — including sampled LETopK, whose single seeded
    RNG stream runs whole inside one worker — crosses the pipe.
    """

    def __init__(
        self,
        indexes: PathIndexes,
        processes: int = DEFAULT_POOL_PROCESSES,
        num_shards: int = 0,
        scoring: ScoringFunction = PAPER_DEFAULT,
        worker_timeout: float = 60.0,
        sharded: Optional[ShardedIndexes] = None,
        **kwargs,
    ) -> None:
        super().__init__(indexes, scoring=scoring, **kwargs)
        if processes < 1:
            raise SearchError(f"processes must be >= 1, got {processes}")
        if num_shards < 0:
            raise SearchError(f"num_shards must be >= 0, got {num_shards}")
        if sharded is not None:
            if sharded.base is not indexes:
                raise SearchError(
                    "preloaded ShardedIndexes must wrap the same live "
                    "bundle the service serves"
                )
            if num_shards and sharded.num_shards != num_shards:
                raise SearchError(
                    f"preloaded partition has {sharded.num_shards} shards, "
                    f"service asked for {num_shards}"
                )
            num_shards = sharded.num_shards
        self.processes = processes
        self.num_shards = num_shards
        self.worker_timeout = worker_timeout
        self.stats.execution_backend = (
            "fork-pool+sharded" if num_shards else "fork-pool"
        )
        self.stats.execution_workers = processes
        self._preloaded = sharded
        self._pool: Optional[ForkWorkerPool] = None
        #: Guards pool lifecycle only — executions run outside it, N at
        #: a time, each owning one worker slot.
        self._pool_lock = threading.Lock()

    # ----------------------------------------------------------- lifecycle

    @classmethod
    def from_file(
        cls,
        path,
        processes: int = DEFAULT_POOL_PROCESSES,
        num_shards: Optional[int] = None,
        **kwargs,
    ) -> "PooledSearchService":
        """Serve a persisted bundle, honoring a stored partition when
        sharded composition is requested (mirrors
        :meth:`ShardedSearchService.from_file <repro.search.sharding.\
ShardedSearchService.from_file>`)."""
        from pathlib import Path

        from repro.core.errors import PathIndexError
        from repro.index.serialize import load_indexes, load_sharded_indexes

        if not num_shards:
            service = cls(load_indexes(path), processes=processes, **kwargs)
            service.index_path = Path(path)
            return service
        try:
            sharded = load_sharded_indexes(path)
        except PathIndexError:
            sharded = None
        if sharded is None:
            service = cls(
                load_indexes(path),
                processes=processes,
                num_shards=num_shards,
                **kwargs,
            )
        elif sharded.num_shards != num_shards:
            service = cls(
                sharded.base,
                processes=processes,
                num_shards=num_shards,
                **kwargs,
            )
        else:
            service = cls(
                sharded.base, processes=processes, sharded=sharded, **kwargs
            )
        service.index_path = Path(path)
        return service

    def close(self) -> None:
        """Reap the worker pool (the service stays usable; the next
        poolable execution forks a fresh pool)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.close()
                self._pool = None

    def _compact_shards(self) -> int:
        """Sharded composition writes its partition into the compacted
        file; a plain pool (num_shards=0) writes a single store."""
        return self.num_shards

    def _adopt_compaction(self, outcome: dict) -> None:
        """Adopt the compaction's fresh mapped partition (when sharded):
        its ``store_version`` matches the post-re-map live version, so
        the next pool rebuild forks workers over re-mapped extents
        instead of re-partitioning — and never inherits a heap copy."""
        if outcome["sharded"] is not None:
            self._preloaded = outcome["sharded"]

    def _ensure_pool(self, snap: PathIndexes) -> ForkWorkerPool:
        """The pool for the serving version, rebuilt when the store
        moved — the service's version-guard protocol, one level up."""
        version = snap.store.version
        pool = self._pool
        if pool is not None and not pool.closed and (
            pool.store_version == version
        ):
            return pool
        with self._pool_lock:
            pool = self._pool
            if pool is not None and not pool.closed and (
                pool.store_version == version
            ):
                return pool  # another thread rebuilt while we waited
            if pool is not None:
                pool.close()
                self._pool = None
            sharded = None
            if self.num_shards:
                sharded = self._preloaded
                if sharded is None or sharded.store_version != version:
                    sharded = partition_indexes(snap, self.num_shards)
            # Warm in the parent, once, before the fork: every worker
            # inherits the built query/bound columns copy-on-write
            # (mapped stores stay lazy — columns build per queried word
            # and are never thawed by warming).
            snap.store.warm_query_caches()
            if sharded is not None:
                for shard in sharded.shards:
                    shard.store.warm_query_caches()
            self._pool = ForkWorkerPool(
                snap,
                self.processes,
                sharded=sharded,
                timeout=self.worker_timeout,
            )
            self.stats.bump(pool_rebuilds=1)
            return self._pool

    def __repr__(self) -> str:
        pool = "up" if self._pool is not None and not self._pool.closed else "down"
        return (
            f"PooledSearchService(processes={self.processes}, "
            f"num_shards={self.num_shards}, pool={pool}, "
            f"{super().__repr__()[len('SearchService('):]}"
        )

    # ----------------------------------------------------------- execution

    def _plan_poolable(self, plan: QueryPlan) -> bool:
        return plan.algorithm != "baseline"

    def _execute_forked(self, pending, processes):
        raise SearchError(
            "search_many(processes=N) is disabled on PooledSearchService: "
            "forked batch children would share the pool workers' pipes; "
            "the standing fork pool is already the parallel path (use "
            "threads= for batch overlap — each thread drives one pool "
            "worker)"
        )

    def _execute_on(self, snap: PathIndexes, plan: QueryPlan) -> SearchResult:
        if not self._plan_poolable(plan):
            return super()._execute_on(snap, plan)
        pool = self._ensure_pool(snap)
        try:
            portable, stats = pool.execute(plan)
        except PoolWorkerError:
            # Inline failover: the request still gets its bit-identical
            # answer from the parent's own snapshot; the dead slot was
            # respawned by the pool before the error reached us.
            self.stats.bump(worker_failovers=1)
            return super()._execute_on(snap, plan)
        answers = []
        for score, key, count, combos, estimated in portable:
            pattern = pattern_from_key(snap, key)
            answers.append(
                PatternAnswer(
                    pattern_key=key,
                    pattern=pattern,
                    score=score,
                    num_subtrees=count,
                    subtrees=list(combos),
                    estimated_score=estimated,
                )
            )
        return SearchResult(
            query=plan.words,
            k=plan.k,
            d=plan.d,
            answers=answers,
            stats=stats,
        )

    # ----------------------------------------------------------- reporting

    def worker_snapshot(self) -> List[dict]:
        """Per-worker pool gauges (empty before the first execution —
        the pool is lazy)."""
        pool = self._pool
        if pool is None or pool.closed:
            return []
        return pool.worker_snapshot()

    def pool_info(self) -> dict:
        pool = self._pool
        return {
            "backend": self.stats.execution_backend,
            "processes": self.processes,
            "num_shards": self.num_shards,
            "built": bool(pool is not None and not pool.closed),
            "free_slots": (
                pool.free_slots()
                if pool is not None and not pool.closed
                else 0
            ),
            "store_version": (
                pool.store_version
                if pool is not None and not pool.closed
                else None
            ),
        }

    def kill_worker(self, slot: int) -> None:
        """Fault-injection passthrough (tests, BENCH_9)."""
        if self._pool is not None:
            self._pool.kill_worker(slot)

    def arm_exit(self, slot: int) -> None:
        """Fault-injection passthrough: deterministic mid-request death."""
        if self._pool is not None:
            self._pool.arm_exit(slot)
