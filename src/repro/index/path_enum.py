"""Enumeration of bounded-length simple paths (index construction, §3).

Algorithm 1 materializes, for every root ``r``, all paths starting at ``r``
with length (node count) at most ``d``.  Paths are *simple* — a subtree of
the knowledge graph cannot visit a node twice — which also guarantees
termination on cyclic graphs.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.core.errors import PathIndexError
from repro.core.types import AttrId, NodeId
from repro.kg.graph import KnowledgeGraph

Path = Tuple[Tuple[NodeId, ...], Tuple[AttrId, ...]]


def iter_paths_from(
    graph: KnowledgeGraph, root: NodeId, max_nodes: int
) -> Iterator[Path]:
    """Yield all simple paths from ``root`` with 1..max_nodes nodes.

    Paths are emitted in DFS pre-order (a path before its extensions),
    deterministically following edge insertion order; each yield is a fresh
    ``(nodes, attrs)`` tuple pair.
    """
    if max_nodes < 1:
        raise PathIndexError(f"max_nodes must be >= 1, got {max_nodes}")
    nodes = [root]
    attrs: list = []
    on_path = {root}

    def extend() -> Iterator[Path]:
        yield tuple(nodes), tuple(attrs)
        if len(nodes) >= max_nodes:
            return
        for attr, target in graph.out_edges(nodes[-1]):
            if target in on_path:
                continue
            nodes.append(target)
            attrs.append(attr)
            on_path.add(target)
            yield from extend()
            on_path.discard(target)
            attrs.pop()
            nodes.pop()

    return extend()


def iter_all_paths(graph: KnowledgeGraph, max_nodes: int) -> Iterator[Path]:
    """All bounded simple paths from every root (the index's path set P)."""
    for root in graph.nodes():
        yield from iter_paths_from(graph, root, max_nodes)


def count_paths(graph: KnowledgeGraph, max_nodes: int) -> int:
    """|P|: number of bounded simple paths (Theorem 2's cost parameter)."""
    return sum(1 for _ in iter_all_paths(graph, max_nodes))


def interleaved_labels(
    graph: KnowledgeGraph,
    nodes: Tuple[NodeId, ...],
    attrs: Tuple[AttrId, ...],
) -> Tuple[int, ...]:
    """Alternate node-type and attribute ids along a path, both ends typed.

    This is the label sequence of a *node-matched* pattern; an edge-matched
    pattern is the same sequence without the final node type
    (``labels[:-1]``).
    """
    labels = []
    for i, attr in enumerate(attrs):
        labels.append(graph.node_type(nodes[i]))
        labels.append(attr)
    labels.append(graph.node_type(nodes[-1]))
    return tuple(labels)


def iter_reverse_paths_to(
    graph: KnowledgeGraph, leaf: NodeId, max_nodes: int
) -> Iterator[Path]:
    """Yield simple paths *ending* at ``leaf`` with at most ``max_nodes`` nodes.

    Used by the baseline's backward search (Section 2.3): starting from a
    keyword match, walk reverse edges to discover every possible root.
    Yields forward-oriented ``(nodes, attrs)`` with ``nodes[-1] == leaf``.
    """
    if max_nodes < 1:
        raise PathIndexError(f"max_nodes must be >= 1, got {max_nodes}")
    rev_nodes = [leaf]  # leaf-first; reversed on yield
    rev_attrs: list = []
    on_path = {leaf}

    def extend() -> Iterator[Path]:
        yield tuple(reversed(rev_nodes)), tuple(reversed(rev_attrs))
        if len(rev_nodes) >= max_nodes:
            return
        for attr, source in graph.in_edges(rev_nodes[-1]):
            if source in on_path:
                continue
            rev_nodes.append(source)
            rev_attrs.append(attr)
            on_path.add(source)
            yield from extend()
            on_path.discard(source)
            rev_attrs.pop()
            rev_nodes.pop()

    return extend()
