"""The shared columnar posting store behind both path indexes.

Algorithm 1 inserts every root-to-keyword path into *two* indexes
(pattern-first and root-first), and a path matched by several keywords
yields one posting per keyword.  Materializing each posting as a
:class:`~repro.index.entry.PathEntry` inside triply-nested dicts makes
construction the dominant memory cost (the paper's Figure 6 shows index
building outweighing querying by orders of magnitude).

:class:`PostingStore` fixes the layout instead of the algorithms:

* each distinct **physical path** ``(nodes, attrs, matched_on_edge)`` is
  interned exactly once into flat columnar arrays (node chains in one
  ``array`` with an offsets column, plus per-path pattern id, root,
  matched-on-edge flag, and PageRank term);
* each **posting** — one ``(word, path)`` occurrence — is two scalars: the
  integer path id and the word-specific similarity term.

Both :class:`~repro.index.pattern_first.PatternFirstIndex` and
:class:`~repro.index.root_first.RootFirstIndex` are thin views over one
store; their leaf posting lists are shared :class:`PostingList` flyweights
that reconstruct :class:`PathEntry` tuples lazily (and cache them), so
count-only probes — ``|Paths(w, r)|``, ``num_entries(w)``, candidate-root
intersections — never materialize an entry at all.
"""

from __future__ import annotations

import threading
from array import array
from itertools import islice
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import PathIndexError
from repro.core.types import AttrId, NodeId, PatternId
from repro.index.entry import PathEntry
from repro.index.interner import PatternInterner

#: Typecodes of the columnar arrays (also the v2 on-disk encoding; see
#: ``docs/index-format.md``).  ``i`` is a 4-byte C int on every platform
#: CPython supports, capping node/pattern/path ids at 2**31 - 1.
ID_TYPECODE = "i"
OFFSET_TYPECODE = "q"
FLAG_TYPECODE = "b"
FLOAT_TYPECODE = "d"

class PostingList(Sequence[PathEntry]):
    """A flyweight, lazily-materialized sequence of :class:`PathEntry`.

    One leaf of the index views — the postings of one ``(word, pattern,
    root)`` triple — represented as a *slice* ``[start:stop)`` into the
    word's sorted posting columns (the paper's "sort and store paths
    sequentially in memory").  Full entries are reconstructed on first
    element access and cached, so ``len()`` and emptiness checks stay
    allocation-free.  The same object is shared by both index views.
    """

    __slots__ = (
        "_store",
        "_ids",
        "_sims",
        "_start",
        "_stop",
        "_entries",
        "_id_slice",
        "_sim_slice",
        "_pairs",
    )

    def __init__(
        self,
        store: "PostingStore",
        ids: array,
        sims: array,
        start: int,
        stop: int,
    ) -> None:
        self._store = store
        self._ids = ids
        self._sims = sims
        self._start = start
        self._stop = stop
        self._entries: Optional[List[PathEntry]] = None
        self._id_slice: Optional[array] = None
        self._sim_slice: Optional[array] = None
        self._pairs: Optional[List[Tuple[int, float]]] = None

    @property
    def path_ids(self) -> array:
        """The slice's path-id column (copied out of the word column once,
        then cached — repeated access is O(1)).

        A cached copy, not a ``memoryview``: the word columns are appended
        to by incremental maintenance, and an exported buffer would turn
        those appends into ``BufferError``s.
        """
        ids = self._id_slice
        if ids is None:
            ids = self._id_slice = self._ids[self._start:self._stop]
        return ids

    @property
    def sims(self) -> array:
        """The slice's similarity column (cached; see ``path_ids``)."""
        sims = self._sim_slice
        if sims is None:
            sims = self._sim_slice = self._sims[self._start:self._stop]
        return sims

    def pairs(self) -> List[Tuple[int, float]]:
        """The slice as ``(path_id, sim)`` scalar pairs (built once, cached).

        This is what the id-based enumeration loops iterate — two machine
        scalars per posting, no :class:`PathEntry` reconstruction.  Order
        matches :meth:`entries` element-for-element.
        """
        pairs = self._pairs
        if pairs is None:
            pairs = self._pairs = list(zip(self.path_ids, self.sims))
        return pairs

    def entries(self) -> List[PathEntry]:
        """The materialized entries (built once, then cached)."""
        if self._entries is None:
            make = self._store.make_entry
            ids = self._ids
            sims = self._sims
            self._entries = [
                make(ids[i], sims[i])
                for i in range(self._start, self._stop)
            ]
        return self._entries

    def __len__(self) -> int:
        return self._stop - self._start

    def __iter__(self) -> Iterator[PathEntry]:
        entries = self._entries  # avoid a call in the enumeration hot loop
        return iter(entries if entries is not None else self.entries())

    def __getitem__(self, index):
        entries = self._entries
        return (entries if entries is not None else self.entries())[index]

    def __eq__(self, other) -> bool:
        # Always compare by materialized entry values: path ids are only
        # meaningful within one store, so an id-level shortcut would make
        # lists from different stores (e.g. built vs loaded) compare
        # incorrectly.
        if isinstance(other, PostingList):
            return self.entries() == other.entries()
        if isinstance(other, (list, tuple)):
            return list(self.entries()) == list(other)
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash(tuple(self.entries()))

    def __repr__(self) -> str:
        return f"PostingList({len(self)} postings)"


#: Per-word grouping: leaves sorted by (pattern id, root).
WordGroups = List[Tuple[PatternId, NodeId, PostingList]]


class PostingStore:
    """Columnar, deduplicated storage for all path postings.

    Building protocol (what :func:`repro.index.builder.build_indexes` and
    :mod:`repro.index.incremental` follow)::

        path_id = store.add_path(nodes, attrs, matched_on_edge, pid, pr)
        store.add_posting(word, path_id, sim)        # once per keyword

    ``add_path`` interns: re-adding an identical physical path returns the
    existing id without growing the columns.  ``finalize`` groups postings
    by ``(pattern, root)`` and sorts exactly as the paper prescribes
    ("sort and store paths sequentially"); the index views read the
    grouping via :meth:`groups` / :meth:`root_counts`.
    """

    #: Process-wide count of :class:`PathEntry` reconstructions across
    #: *all* stores — including short-lived query-local scratch stores
    #: whose per-instance counters are unreachable after the query.  The
    #: benchmarks' zero-materialization assertions read deltas of this.
    total_entries_materialized = 0

    def __init__(self, interner: PatternInterner) -> None:
        self.interner = interner
        # Path interning: (nodes, attrs, matched_on_edge) -> path id.
        # Built lazily — a fresh Algorithm 1 build never revisits a path
        # (see append_path), and keeping the key tuples alive would defeat
        # the columnar layout's memory win.
        self._path_ids: Optional[
            Dict[Tuple[Tuple[NodeId, ...], Tuple[AttrId, ...], bool], int]
        ] = None
        # Columnar path storage.  Path i's nodes live at
        # _nodes[_node_offsets[i]:_node_offsets[i+1]]; its attrs always
        # number one fewer than its nodes, so they share the offsets
        # column shifted by the path index: _attrs[_node_offsets[i]-i :
        # _node_offsets[i+1]-(i+1)].
        self._node_offsets = array(OFFSET_TYPECODE, [0])
        self._nodes = array(ID_TYPECODE)
        self._attrs = array(ID_TYPECODE)
        self._pids = array(ID_TYPECODE)
        self._roots = array(ID_TYPECODE)
        self._moe = array(FLAG_TYPECODE)
        self._prs = array(FLOAT_TYPECODE)
        # Per-word posting columns; insertion order until finalize() sorts
        # them in place (by pattern, root, then path order).
        self._posting_ids: Dict[str, array] = {}
        self._posting_sims: Dict[str, array] = {}
        # Derived (finalize) state: the two views' nested dicts, sharing
        # slice-backed PostingList leaves, plus |Paths(w, r)| counts.
        self._pattern_view: Dict[
            str, Dict[PatternId, Dict[NodeId, PostingList]]
        ] = {}
        self._root_view: Dict[
            str, Dict[NodeId, Dict[PatternId, PostingList]]
        ] = {}
        self._root_counts: Dict[str, Dict[NodeId, int]] = {}
        self.version = 0
        self._finalized_version = -1
        #: Running count of :class:`PathEntry` reconstructions through
        #: :meth:`make_entry` — the single choke point for materializing a
        #: stored posting.  Benchmarks and the zero-materialization
        #: regression tests read deltas of this.
        self.entries_materialized = 0
        # Query-time acceleration columns (see _query_columns) and
        # aggregate bound columns for score pruning (see bound_columns).
        # Each slot holds ``(version, cache)`` as ONE tuple swapped
        # atomically: readers load the slot once and compare its version
        # tag, so a concurrent donation (StoreSnapshot._build_and_donate)
        # can never pair an old cache object with a new version tag.
        self._query_cache: Optional[tuple] = None
        self._bound_cache: Optional[tuple] = None
        #: Mutation lock for the snapshot protocol: writers that mutate a
        #: *served* store (incremental maintenance) and readers taking a
        #: :meth:`snapshot` both hold it, so a snapshot never observes a
        #: half-applied update.  The bulk build path (:mod:`builder`) runs
        #: before any concurrent serving and stays lock-free.
        self.lock = threading.Lock()

    def __getstate__(self):
        # Locks are not picklable (and a pickled store starts a new life
        # anyway); everything else round-trips.  Normal persistence goes
        # through to_payload/from_payload — this only supports callers
        # that pickle a whole bundle (e.g. legacy/diagnostic envelopes).
        state = self.__dict__.copy()
        state["lock"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self.lock = threading.Lock()

    @classmethod
    def scratch(cls, interner: Optional[PatternInterner] = None) -> "PostingStore":
        """A query-local store for online-discovered paths (the baseline).

        Columns are plain Python lists instead of typed arrays: a scratch
        store lives for a single query, so array compactness loses to the
        boxing round-trip (``append_path`` would unbox every id into the
        array only for :meth:`_query_columns` to box it right back out).
        Must never be serialized.
        """
        store = cls(interner if interner is not None else PatternInterner())
        store._node_offsets = [0]
        store._nodes = []
        store._attrs = []
        store._pids = []
        store._roots = []
        store._moe = []
        store._prs = []
        return store

    # ------------------------------------------------------------- building

    def _path_index(
        self,
    ) -> Dict[Tuple[Tuple[NodeId, ...], Tuple[AttrId, ...], bool], int]:
        """The interning map, (re)built on demand from the columns."""
        if self._path_ids is None:
            self._path_ids = {
                (
                    self.path_nodes(path_id),
                    self.path_attrs(path_id),
                    bool(self._moe[path_id]),
                ): path_id
                for path_id in range(self.num_paths)
            }
        return self._path_ids

    def add_path(
        self,
        nodes: Tuple[NodeId, ...],
        attrs: Tuple[AttrId, ...],
        matched_on_edge: bool,
        pid: PatternId,
        pr: float,
    ) -> int:
        """Intern one physical path; returns its (possibly existing) id."""
        key = (nodes, attrs, bool(matched_on_edge))
        path_id = self._path_index().get(key)
        if path_id is not None:
            return path_id
        return self.append_path(nodes, attrs, matched_on_edge, pid, pr)

    def append_path(
        self,
        nodes: Tuple[NodeId, ...],
        attrs: Tuple[AttrId, ...],
        matched_on_edge: bool,
        pid: PatternId,
        pr: float,
    ) -> int:
        """Append a path the caller knows to be new — no intern lookup.

        Algorithm 1 enumerates each bounded simple path exactly once per
        root, so the bulk build takes this allocation-free fast path; use
        :meth:`add_path` when novelty is not guaranteed (migration, hand
        construction).
        """
        if len(attrs) != len(nodes) - 1:
            raise PathIndexError(
                f"path has {len(nodes)} nodes but {len(attrs)} attrs"
            )
        path_id = len(self._pids)
        self._nodes.extend(nodes)
        self._attrs.extend(attrs)
        self._node_offsets.append(len(self._nodes))
        self._pids.append(pid)
        self._roots.append(nodes[0])
        self._moe.append(1 if matched_on_edge else 0)
        self._prs.append(pr)
        self.version += 1
        if self._path_ids is not None:
            self._path_ids[(nodes, attrs, bool(matched_on_edge))] = path_id
        return path_id

    def add_entry(self, word: str, pid: PatternId, entry: PathEntry) -> int:
        """Convenience: intern ``entry``'s path and add its posting."""
        path_id = self.add_path(
            entry.nodes, entry.attrs, entry.matched_on_edge, pid, entry.pr
        )
        self.add_posting(word, path_id, entry.sim)
        return path_id

    def add_posting(self, word: str, path_id: int, sim: float) -> None:
        """Record one (word, path) posting with its similarity term."""
        ids = self._posting_ids.get(word)
        if ids is None:
            ids = self._posting_ids[word] = array(ID_TYPECODE)
            self._posting_sims[word] = array(FLOAT_TYPECODE)
        ids.append(path_id)
        self._posting_sims[word].append(sim)
        self.version += 1

    # ------------------------------------------------------------ finalizing

    def finalize(self) -> None:
        """Sort posting columns and build both views' nested groupings.

        Each word's columns are reordered in place by ``(pattern id,
        root, path order)`` — with path order the lexicographic
        ``(nodes, attrs)`` ordering, matching the pre-refactor per-index
        sorts so every downstream iteration order (and therefore every
        score and tie-break) is unchanged.  Leaves become slices into the
        sorted columns; the pattern-first and root-first nested dicts are
        built here once and shared with the view classes.  Idempotent
        until the next mutation.
        """
        if self._finalized_version == self.version:
            return
        pids = self._pids
        roots = self._roots
        num_paths = self.num_paths
        # One global (nodes, attrs) ordering of the paths; posting sorts
        # then compare a single precomputed int per posting — (pattern,
        # root, path-rank) packed into one machine word — instead of
        # rebuilding tuples per posting.
        order = sorted(range(num_paths), key=self.path_sort_key)
        rank = array(OFFSET_TYPECODE, bytes(8 * num_paths))
        for position, path_id in enumerate(order):
            rank[path_id] = position
        root_span = (max(roots) + 1) if num_paths else 1
        path_leaf = [
            pids[i] * root_span + roots[i] for i in range(num_paths)
        ]
        rank_span = max(num_paths, 1)
        path_key = [
            path_leaf[i] * rank_span + rank[i] for i in range(num_paths)
        ]
        pattern_view: Dict[
            str, Dict[PatternId, Dict[NodeId, PostingList]]
        ] = {}
        root_view: Dict[str, Dict[NodeId, Dict[PatternId, PostingList]]] = {}
        counts: Dict[str, Dict[NodeId, int]] = {}
        for word, ids in self._posting_ids.items():
            sims = self._posting_sims[word]
            n = len(ids)
            keys = [path_key[path_id] for path_id in ids]
            permutation = sorted(range(n), key=keys.__getitem__)
            sorted_ids = array(ID_TYPECODE, (ids[i] for i in permutation))
            sorted_sims = array(
                FLOAT_TYPECODE, (sims[i] for i in permutation)
            )
            self._posting_ids[word] = sorted_ids
            self._posting_sims[word] = sorted_sims
            word_pf: Dict[PatternId, Dict[NodeId, PostingList]] = {}
            word_counts: Dict[NodeId, int] = {}
            rf_leaves: List[Tuple[NodeId, PatternId, PostingList]] = []
            start = 0
            for stop in range(1, n + 1):
                if stop < n and (
                    path_leaf[sorted_ids[stop]]
                    == path_leaf[sorted_ids[start]]
                ):
                    continue
                pid = pids[sorted_ids[start]]
                root = roots[sorted_ids[start]]
                leaf = PostingList(self, sorted_ids, sorted_sims, start, stop)
                word_pf.setdefault(pid, {})[root] = leaf
                rf_leaves.append((root, pid, leaf))
                word_counts[root] = word_counts.get(root, 0) + (stop - start)
                start = stop
            pattern_view[word] = word_pf
            word_rf: Dict[NodeId, Dict[PatternId, PostingList]] = {}
            rf_leaves.sort(key=lambda leaf: (leaf[0], leaf[1]))
            for root, pid, leaf in rf_leaves:
                word_rf.setdefault(root, {})[pid] = leaf
            root_view[word] = word_rf
            counts[word] = word_counts
        self._pattern_view = pattern_view
        self._root_view = root_view
        self._root_counts = counts
        self._finalized_version = self.version

    def pattern_view(
        self,
    ) -> Dict[str, Dict[PatternId, Dict[NodeId, PostingList]]]:
        """word -> pid -> root -> postings (pids and roots ascending)."""
        self.finalize()
        return self._pattern_view

    def root_view(
        self,
    ) -> Dict[str, Dict[NodeId, Dict[PatternId, PostingList]]]:
        """word -> root -> pid -> postings (roots and pids ascending)."""
        self.finalize()
        return self._root_view

    def groups(self) -> Dict[str, WordGroups]:
        """word -> [(pattern id, root, posting list)] sorted by (pid, root)."""
        self.finalize()
        return {
            word: [
                (pid, root, leaf)
                for pid, by_root in by_pattern.items()
                for root, leaf in by_root.items()
            ]
            for word, by_pattern in self._pattern_view.items()
        }

    def root_counts(self, word: str) -> Dict[NodeId, int]:
        """Precomputed |Paths(w, r)| per root for one word."""
        self.finalize()
        return self._root_counts.get(word, {})

    # ---------------------------------------------------------- path columns

    @property
    def num_paths(self) -> int:
        """Distinct physical paths stored (the dedup denominator)."""
        return len(self._pids)

    def path_nodes(self, path_id: int) -> Tuple[NodeId, ...]:
        start = self._node_offsets[path_id]
        end = self._node_offsets[path_id + 1]
        return tuple(self._nodes[start:end])

    def path_attrs(self, path_id: int) -> Tuple[AttrId, ...]:
        start = self._node_offsets[path_id] - path_id
        end = self._node_offsets[path_id + 1] - (path_id + 1)
        return tuple(self._attrs[start:end])

    def path_size(self, path_id: int) -> int:
        """|T(w)| — number of nodes on the path, without materializing it."""
        return (
            self._node_offsets[path_id + 1] - self._node_offsets[path_id]
        )

    def path_root(self, path_id: int) -> NodeId:
        return self._roots[path_id]

    def path_pattern(self, path_id: int) -> PatternId:
        return self._pids[path_id]

    def path_pr(self, path_id: int) -> float:
        return self._prs[path_id]

    def path_matched_on_edge(self, path_id: int) -> bool:
        return bool(self._moe[path_id])

    def path_sort_key(
        self, path_id: int
    ) -> Tuple[Tuple[NodeId, ...], Tuple[AttrId, ...]]:
        """The paper's "sort paths sequentially" key: (nodes, attrs)."""
        return (self.path_nodes(path_id), self.path_attrs(path_id))

    def make_entry(self, path_id: int, sim: float) -> PathEntry:
        """Reconstruct the flyweight :class:`PathEntry` for one posting."""
        self.entries_materialized += 1
        PostingStore.total_entries_materialized += 1
        return PathEntry(
            self.path_nodes(path_id),
            self.path_attrs(path_id),
            bool(self._moe[path_id]),
            self._prs[path_id],
            sim,
        )

    # -------------------------------------------------------------- counting

    def words(self) -> Iterable[str]:
        return self._posting_ids.keys()

    def has_word(self, word: str) -> bool:
        return word in self._posting_ids

    def num_postings(self, word: Optional[str] = None) -> int:
        """Total (word, path) postings, optionally for one word — O(1)."""
        if word is not None:
            ids = self._posting_ids.get(word)
            return len(ids) if ids is not None else 0
        return sum(len(ids) for ids in self._posting_ids.values())

    def postings(self, word: str) -> Iterable[Tuple[int, float]]:
        """One word's raw ``(path_id, sim)`` posting pairs, column order.

        The bulk-transfer accessor behind store partitioning
        (:mod:`repro.index.shards`): order is whatever the columns
        currently hold — callers that need the grouped order must
        :meth:`finalize` the receiving store themselves.
        """
        ids = self._posting_ids.get(word)
        if ids is None:
            return iter(())
        return zip(ids, self._posting_sims[word])

    def total_path_nodes(self) -> int:
        """``sum_p |p| * |text(p)|`` of Theorem 2, without materialization."""
        offsets = self._node_offsets
        total = 0
        for ids in self._posting_ids.values():
            for path_id in ids:
                total += offsets[path_id + 1] - offsets[path_id]
        return total

    def dedup_ratio(self) -> float:
        """Postings per stored physical path (>= 1; higher is better)."""
        if not self._pids:
            return 1.0
        return self.num_postings() / len(self._pids)

    def nbytes(self) -> int:
        """Bytes held by the columnar arrays (paths + raw postings)."""
        column_bytes = sum(
            column.itemsize * len(column)
            for column in (
                self._node_offsets,
                self._nodes,
                self._attrs,
                self._pids,
                self._roots,
                self._moe,
                self._prs,
            )
        )
        posting_bytes = sum(
            ids.itemsize * len(ids) + sims.itemsize * len(sims)
            for ids, sims in zip(
                self._posting_ids.values(), self._posting_sims.values()
            )
        )
        return column_bytes + posting_bytes

    # --------------------------------------------- store-native hot variants

    def _query_columns(self) -> tuple:
        """Boxed, pre-shaped path columns for the enumeration hot loops.

        The ``array`` columns keep the resident footprint compact but box
        a fresh Python int on every subscript, and the query loops revisit
        the same paths thousands of times per cross product.  This cache
        re-shapes each *distinct* path once per store version into plain
        lists/tuples::

            (roots, sizes, prs, edges, self_invalid)

        where ``edges[path_id]`` is a tuple of ``(child, (parent, attr))``
        pairs (the parent-edge tuple is pre-allocated and shared across
        every tree-validity check that touches the path) and
        ``self_invalid[path_id]`` records whether the path *alone* fails
        the tree check — it revisits its own root, or assigns a node two
        distinct parent edges (never true for builder-enumerated simple
        paths, but hand-constructed stores are checked identically to
        :func:`~repro.index.entry.entries_form_tree`).  Built lazily on
        the first query after a mutation; size is bounded by the number
        of distinct paths, not postings.
        """
        slot = self._query_cache
        version = self.version
        if slot is not None and slot[0] == version:
            return slot[1]
        offsets = self._node_offsets
        nodes = self._nodes
        attrs = self._attrs
        num_paths = self.num_paths
        # list() boxes each array element once; scratch stores (already
        # list-backed) just take a cheap pointer copy.
        roots = list(self._roots)
        prs = list(self._prs)
        sizes: List[int] = [0] * num_paths
        edges: List[tuple] = [()] * num_paths
        self_invalid: List[bool] = [False] * num_paths
        for path_id in range(num_paths):
            start = offsets[path_id]
            end = offsets[path_id + 1]
            attr_start = start - path_id
            sizes[path_id] = end - start
            root = roots[path_id]
            path_edges = []
            parent: Dict[NodeId, Tuple[NodeId, AttrId]] = {}
            for i in range(end - start - 1):
                child = nodes[start + i + 1]
                edge = (nodes[start + i], attrs[attr_start + i])
                if child == root or parent.setdefault(child, edge) != edge:
                    self_invalid[path_id] = True
                path_edges.append((child, edge))
            edges[path_id] = tuple(path_edges)
        cache = (roots, sizes, prs, edges, self_invalid)
        # Tag with the version captured *before* the build: if a writer
        # bumped mid-build the slot is immediately stale and rebuilt.
        self._query_cache = (version, cache)
        return cache

    def release_query_columns(self) -> None:
        """Drop the query-acceleration columns (rebuilt lazily on demand).

        The cache trades resident memory for query speed and persists
        after the first query; long-lived processes that query rarely can
        call this to reclaim it — the next query pays one rebuild.  The
        aggregate bound columns (:meth:`bound_columns`) are dropped with
        it: they are derived from the same boxed path columns.
        """
        self._query_cache = None
        self._bound_cache = None

    def warm_query_caches(self) -> None:
        """Build the query-acceleration and bound columns now.

        Live-store twin of :meth:`StoreSnapshot.warm_query_caches`: shard
        worker processes call it once at pool start so every later query
        finds the one-time per-version builds already done.
        """
        self.finalize()
        self._query_columns()
        self.bound_columns()

    def path_columns(self) -> Tuple[List[int], List[float]]:
        """``(sizes, prs)`` boxed per-path columns for bound arithmetic.

        The same lists the query-acceleration cache holds (built lazily,
        version-guarded); exposed so the bound-driven enumeration loops
        can accumulate partial subtree sums without re-boxing array
        elements per access.
        """
        _roots, sizes, prs, _edges, _self_invalid = self._query_columns()
        return sizes, prs

    def bound_columns(self) -> tuple:
        """Aggregate columns backing admissible score upper bounds.

        Returns ``(root_bounds, pattern_bounds)`` where::

            root_bounds[word][root]          -> Bound  (over all patterns)
            pattern_bounds[word][pid][root]  -> Bound  (one index leaf)

        and a ``Bound`` is the 7-tuple ``(count, size_lo, size_hi, pr_lo,
        pr_hi, sim_lo, sim_hi)`` aggregating that posting group: posting
        count, min/max path size, min/max PageRank term, min/max
        similarity term.  :class:`repro.search.bounds.QueryBounds` turns
        these into admissible upper bounds on subtree and pattern scores
        (see ``docs/pruning.md``).

        Cached like the query-acceleration columns: built lazily on the
        first pruning query, version-guarded, so any mutation
        (:meth:`append_path` / :meth:`add_posting`) invalidates it.  Cost
        is one pass over the posting columns; size is one tuple per index
        leaf plus one per ``(word, root)`` group.
        """
        slot = self._bound_cache
        version = self.version
        if slot is not None and slot[0] == version:
            return slot[1]
        self.finalize()
        _roots, sizes, prs, _edges, _self_invalid = self._query_columns()
        root_bounds: Dict[str, Dict[NodeId, tuple]] = {}
        pattern_bounds: Dict[str, Dict[PatternId, Dict[NodeId, tuple]]] = {}
        for word, by_pattern in self._pattern_view.items():
            ids = self._posting_ids[word]
            sim_col = self._posting_sims[word]
            word_root: Dict[NodeId, tuple] = {}
            word_pat: Dict[PatternId, Dict[NodeId, tuple]] = {}
            for pid, by_root in by_pattern.items():
                pid_map: Dict[NodeId, tuple] = {}
                for root, leaf in by_root.items():
                    start = leaf._start
                    stop = leaf._stop
                    path_id = ids[start]
                    size_lo = size_hi = sizes[path_id]
                    pr_lo = pr_hi = prs[path_id]
                    sim_lo = sim_hi = sim_col[start]
                    for i in range(start + 1, stop):
                        path_id = ids[i]
                        size = sizes[path_id]
                        if size < size_lo:
                            size_lo = size
                        elif size > size_hi:
                            size_hi = size
                        pr = prs[path_id]
                        if pr < pr_lo:
                            pr_lo = pr
                        elif pr > pr_hi:
                            pr_hi = pr
                        sim = sim_col[i]
                        if sim < sim_lo:
                            sim_lo = sim
                        elif sim > sim_hi:
                            sim_hi = sim
                    bound = (
                        stop - start,
                        size_lo, size_hi, pr_lo, pr_hi, sim_lo, sim_hi,
                    )
                    pid_map[root] = bound
                    merged = word_root.get(root)
                    if merged is None:
                        word_root[root] = bound
                    else:
                        word_root[root] = (
                            merged[0] + bound[0],
                            min(merged[1], size_lo),
                            max(merged[2], size_hi),
                            min(merged[3], pr_lo),
                            max(merged[4], pr_hi),
                            min(merged[5], sim_lo),
                            max(merged[6], sim_hi),
                        )
                word_pat[pid] = pid_map
            root_bounds[word] = word_root
            pattern_bounds[word] = word_pat
        cache = (root_bounds, pattern_bounds)
        self._bound_cache = (version, cache)  # see _query_columns tagging
        return cache

    def form_tree(self, path_ids: Sequence[int]) -> bool:
        """Store-native :func:`repro.index.entry.entries_form_tree`.

        Operates on the store's columns — no :class:`PathEntry`
        materialization — with the identical tree-validity rule: all paths
        share the root, no node acquires two distinct parent edges, and no
        edge re-enters the root.  A convenience wrapper over
        :meth:`pairs_checker` (the hot loops' form, and the single
        implementation of the rule) for id-only callers.
        """
        return self.pairs_checker()([(path_id, 0.0) for path_id in path_ids])

    def pairs_checker(self):
        """A tree-validity predicate over ``(path_id, sim)`` pair combos.

        Same rule as :meth:`form_tree`, specialized for the enumeration
        loop's native shape: the cross product yields pair combinations,
        so no id tuple is built per combination, and the returned closure
        is bound to the query-acceleration columns so the loop pays no
        per-call column lookup.  Fetch once per enumeration run; the
        closure is valid until the store's next mutation.
        """
        roots, _sizes, _prs, edges, self_invalid = self._query_columns()

        def form_tree_pairs(pairs: Sequence[Tuple[int, float]]) -> bool:
            first = pairs[0][0]
            root = roots[first]
            if len(pairs) == 1:
                return not self_invalid[first]
            parent: Dict[NodeId, Tuple[NodeId, AttrId]] = {}
            get = parent.get
            for path_id, _sim in pairs:
                if roots[path_id] != root or self_invalid[path_id]:
                    return False
                for child, edge in edges[path_id]:
                    existing = get(child)
                    if existing is None:
                        parent[child] = edge
                    elif existing != edge:
                        return False
            return True

        return form_tree_pairs

    def score_terms(
        self, path_ids: Sequence[int], sims: Sequence[float]
    ) -> Tuple[int, float, float]:
        """Store-native :func:`~repro.index.entry.combination_score_terms`.

        Summed (size, pr, sim) for a subtree given as parallel posting
        columns (Equations 4-6), skipping entry materialization.  A
        convenience wrapper over :meth:`pairs_scorer` (the hot loops'
        form, and the single implementation of the sums — identical float
        order to the entry-based helper, so scores are bit-identical
        across the two pipelines).
        """
        return self.pairs_scorer()(list(zip(path_ids, sims)))

    def pairs_scorer(self):
        """``pairs -> (size, pr, sim)`` bound to the query columns.

        The pair-combo companion of :meth:`score_terms` (identical sums
        and float order); fetch once per enumeration run like
        :meth:`pairs_checker`.
        """
        _roots, sizes, prs, _edges, _self_invalid = self._query_columns()

        def score_pairs(
            pairs: Sequence[Tuple[int, float]]
        ) -> Tuple[int, float, float]:
            size = 0
            pr = 0.0
            sim = 0.0
            for path_id, posting_sim in pairs:
                size += sizes[path_id]
                pr += prs[path_id]
                sim += posting_sim
            return size, pr, sim

        return score_pairs

    def matched_node(self, path_id: int) -> NodeId:
        """The node whose PageRank is the path's ``pr`` term.

        The path's endpoint for node matches; the edge's source (the
        second-to-last node) for edge matches.
        """
        end = self._node_offsets[path_id + 1]
        return self._nodes[end - 2 if self._moe[path_id] else end - 1]

    # ------------------------------------------------------------- snapshots

    def snapshot(self) -> "StoreSnapshot":
        """A read-only view pinned to the store's current version.

        The snapshot protocol (see ``docs/serving.md``) rides on two
        standing invariants of this class:

        * the **path columns are append-only** — a ``path_id`` assigned
          once maps to the same nodes/attrs/root/pr forever, so snapshot
          readers may keep delegating path lookups to the live columns;
        * :meth:`finalize` **replaces** the posting arrays and view dicts
          instead of mutating them — readers holding the previous
          generation keep a complete, internally consistent grouping.

        A snapshot therefore only needs to capture *references* to the
        current generation under :attr:`lock` (so it cannot observe a
        half-applied incremental update); it costs a few dict copies, not
        a data copy.  Writers proceed normally afterwards — they bump
        :attr:`version`, and version-guarded caches (query columns, bound
        columns, and every service-level cache keyed by ``version``)
        invalidate, while existing snapshots stay coherent.
        """
        with self.lock:
            self.finalize()
            return StoreSnapshot(self)

    # ---------------------------------------------------------- persistence

    def to_payload(
        self, pagerank_scores: Optional[Sequence[float]] = None
    ) -> Dict[str, object]:
        """Compact serialization payload: raw array bytes, no object graph.

        Derivable columns are elided (see ``docs/index-format.md``):

        * ``node_offsets`` is stored as per-path *lengths* (2 bytes each);
        * ``roots`` is dropped — it is each path's first node;
        * ``prs`` is dropped whenever it matches
          ``pagerank_scores[matched_node]`` for every path (always true
          for builder/incremental-produced stores), since the bundle
          serializes the PageRank vector anyway;
        * ``sims`` are dictionary-encoded (distinct similarity values are
          few: Jaccard terms ``1/|token set|``) as 2-byte codes when the
          value dictionary fits.

        :meth:`from_payload` inverts all of this.
        """
        offsets = self._node_offsets
        lengths = array("H")
        max_len = 65535
        for path_id in range(self.num_paths):
            size = offsets[path_id + 1] - offsets[path_id]
            if size > max_len:  # pragma: no cover - paths are d-bounded
                raise PathIndexError(
                    f"path {path_id} has {size} nodes; cannot serialize"
                )
            lengths.append(size)

        prs: Optional[bytes] = self._prs.tobytes()
        if pagerank_scores is not None:
            n = len(pagerank_scores)
            if all(
                (node := self.matched_node(i)) < n
                and self._prs[i] == pagerank_scores[node]
                for i in range(self.num_paths)
            ):
                prs = None

        sim_values: Optional[bytes]
        sim_columns: List[bytes]
        distinct = sorted(
            {sim for sims in self._posting_sims.values() for sim in sims}
        )
        if len(distinct) <= 65535:
            codes = {value: code for code, value in enumerate(distinct)}
            sim_values = array(FLOAT_TYPECODE, distinct).tobytes()
            sim_columns = [
                array("H", (codes[sim] for sim in sims)).tobytes()
                for sims in self._posting_sims.values()
            ]
        else:  # pragma: no cover - requires >65535 distinct similarities
            sim_values = None
            sim_columns = [
                sims.tobytes() for sims in self._posting_sims.values()
            ]
        return {
            "typecodes": {
                "id": ID_TYPECODE,
                "flag": FLAG_TYPECODE,
                "float": FLOAT_TYPECODE,
            },
            "num_paths": self.num_paths,
            "path_lengths": lengths.tobytes(),
            "nodes": self._nodes.tobytes(),
            "attrs": self._attrs.tobytes(),
            "pids": self._pids.tobytes(),
            "moe": self._moe.tobytes(),
            "prs": prs,
            "words": list(self._posting_ids.keys()),
            "posting_ids": [
                ids.tobytes() for ids in self._posting_ids.values()
            ],
            "sim_values": sim_values,
            "posting_sims": sim_columns,
        }

    @classmethod
    def from_payload(
        cls,
        interner: PatternInterner,
        payload: Dict[str, object],
        pagerank_scores: Optional[Sequence[float]] = None,
    ) -> "PostingStore":
        """Rebuild a store from :meth:`to_payload` output.

        ``pagerank_scores`` is required to reconstruct the elided ``prs``
        column when the payload omitted it.
        """
        store = cls(interner)

        def column(typecode: str, raw) -> array:
            out = array(typecode)
            out.frombytes(raw)
            return out

        lengths = column("H", payload["path_lengths"])
        store._nodes = column(ID_TYPECODE, payload["nodes"])
        store._attrs = column(ID_TYPECODE, payload["attrs"])
        store._pids = column(ID_TYPECODE, payload["pids"])
        store._moe = column(FLAG_TYPECODE, payload["moe"])
        offset = 0
        for size in lengths:
            offset += size
            store._node_offsets.append(offset)
        if (
            len(lengths) != len(store._pids)
            or store._node_offsets[-1] != len(store._nodes)
            or len(store._attrs) != len(store._nodes) - len(lengths)
            or len(store._moe) != len(lengths)
        ):
            raise PathIndexError(
                "corrupt posting store payload: column sizes disagree "
                f"({len(lengths)} paths, {len(store._nodes)} nodes, "
                f"{len(store._attrs)} attrs)"
            )
        store._roots = array(
            ID_TYPECODE,
            (
                store._nodes[store._node_offsets[i]]
                for i in range(len(lengths))
            ),
        )
        prs_raw = payload.get("prs")
        if prs_raw is not None:
            store._prs = column(FLOAT_TYPECODE, prs_raw)
        else:
            if pagerank_scores is None:
                raise PathIndexError(
                    "payload elides the pr column; pagerank_scores required"
                )
            store._prs = array(
                FLOAT_TYPECODE,
                (
                    pagerank_scores[store.matched_node(i)]
                    for i in range(len(lengths))
                ),
            )
        sim_values_raw = payload.get("sim_values")
        sim_values = (
            column(FLOAT_TYPECODE, sim_values_raw)
            if sim_values_raw is not None
            else None
        )
        for word, ids_raw, sims_raw in zip(
            payload["words"], payload["posting_ids"], payload["posting_sims"]
        ):
            store._posting_ids[word] = column(ID_TYPECODE, ids_raw)
            if sim_values is not None:
                codes = column("H", sims_raw)
                store._posting_sims[word] = array(
                    FLOAT_TYPECODE, (sim_values[code] for code in codes)
                )
            else:  # pragma: no cover - raw-sims fallback
                store._posting_sims[word] = column(FLOAT_TYPECODE, sims_raw)
            store.version += 1
        return store


class StoreSnapshot:
    """A version-pinned, read-only view of a :class:`PostingStore`.

    Obtained via :meth:`PostingStore.snapshot`; duck-types the store's
    *read* interface so every search algorithm runs against it unchanged
    (an :class:`~repro.index.builder.PathIndexes` snapshot swaps this in
    as the views' backing store).  Implementation-wise it is mostly
    **borrowed methods**: the version-sensitive accessors reuse
    :class:`PostingStore`'s own code bound to state captured at snapshot
    time — pinned ``version``/``num_paths``, the finalized view dicts,
    shallow copies of the posting-column dicts — so the two code paths
    cannot drift.  The query-acceleration and bound columns are carried
    over when already built for the pinned version, or built lazily over
    the pinned state (never the live store's moving columns).

    Mutators raise :class:`~repro.core.errors.PathIndexError`; anything
    else (entry materialization, the counters it feeds) delegates to the
    live store via ``__getattr__``.
    """

    def __init__(self, store: PostingStore) -> None:
        # Caller holds store.lock and has finalized (PostingStore.snapshot).
        self._store = store
        self.interner = store.interner
        self.version = store.version
        self.num_paths = store.num_paths
        # Path columns: append-only, so sharing the live arrays is safe —
        # every id this snapshot can reach is < num_paths and immutable.
        self._node_offsets = store._node_offsets
        self._nodes = store._nodes
        self._attrs = store._attrs
        self._pids = store._pids
        self._roots = store._roots
        self._moe = store._moe
        self._prs = store._prs
        # Posting columns: finalize() *replaces* dict values, so a shallow
        # dict copy pins this generation of sorted arrays.  Appends by
        # add_posting land beyond every leaf's [start:stop) slice.
        self._posting_ids = dict(store._posting_ids)
        self._posting_sims = dict(store._posting_sims)
        self._num_postings = {
            word: len(ids) for word, ids in self._posting_ids.items()
        }
        # The finalized grouping (replaced wholesale by the next finalize).
        self._pattern_view = store._pattern_view
        self._root_view = store._root_view
        self._root_counts = store._root_counts
        # Derived caches: adopt when fresh, else rebuild over pinned
        # state.  Each slot is a (version, cache) tuple read atomically.
        slot = store._query_cache
        self._query_cache = (
            slot if slot is not None and slot[0] == store.version else None
        )
        slot = store._bound_cache
        self._bound_cache = (
            slot if slot is not None and slot[0] == store.version else None
        )

    # -------------------------------------------------- pinned-state reads
    # Borrowed from PostingStore: these methods only touch attributes the
    # snapshot pins (or the append-only path columns), so reusing the
    # store's code gives bit-identical behavior by construction.

    pattern_view = PostingStore.pattern_view
    root_view = PostingStore.root_view
    groups = PostingStore.groups
    root_counts = PostingStore.root_counts
    path_nodes = PostingStore.path_nodes
    path_attrs = PostingStore.path_attrs
    path_size = PostingStore.path_size
    path_root = PostingStore.path_root
    path_pattern = PostingStore.path_pattern
    path_pr = PostingStore.path_pr
    path_matched_on_edge = PostingStore.path_matched_on_edge
    path_sort_key = PostingStore.path_sort_key
    matched_node = PostingStore.matched_node
    path_columns = PostingStore.path_columns
    pairs_checker = PostingStore.pairs_checker
    pairs_scorer = PostingStore.pairs_scorer
    form_tree = PostingStore.form_tree
    score_terms = PostingStore.score_terms
    total_path_nodes = PostingStore.total_path_nodes
    dedup_ratio = PostingStore.dedup_ratio
    words = PostingStore.words
    has_word = PostingStore.has_word

    def postings(self, word: str) -> Iterable[Tuple[int, float]]:
        """One word's pinned ``(path_id, sim)`` pairs, column order.

        Not borrowed: the posting arrays are shared with the live store,
        and a writer can append to them after this snapshot pinned its
        state (heap stores mid-mutation, delta-overlay words that are
        already dirty).  Bounding the zip by the pinned per-word count
        keeps every yielded path id below ``num_paths`` no matter how
        the live arrays grow mid-iteration.
        """
        ids = self._posting_ids.get(word)
        if ids is None:
            return iter(())
        return islice(
            zip(ids, self._posting_sims[word]),
            self._num_postings.get(word, 0),
        )

    def finalize(self) -> None:
        """No-op: a snapshot is finalized by construction."""

    def _build_and_donate(self, builder, cache_attr: str) -> tuple:
        """Build a derived cache over pinned state, donating it back.

        Runs the borrowed ``builder`` (a :class:`PostingStore` method)
        over the snapshot's pinned state; if this was a fresh build and
        the live store has not moved past the pinned version, the
        ``(version, cache)`` slot is written back in one atomic
        assignment so the *next* snapshot (and forked batch workers,
        which inherit the parent's heap) adopt it instead of rebuilding.
        Because version tag and cache object travel in one tuple, a
        live-store reader racing the donation either sees the whole
        donated slot or the previous one — never a mixed pair.
        """
        had = getattr(self, cache_attr)
        fresh = had is not None and had[0] == self.version
        cache = builder(self)
        if not fresh:
            store = self._store
            live = getattr(store, cache_attr)
            if (
                (live is None or live[0] != store.version)
                and store.version == self.version
            ):
                setattr(store, cache_attr, (self.version, cache))
        return cache

    def _query_columns(self) -> tuple:
        """Pinned query-acceleration columns, donated back on first build."""
        return self._build_and_donate(
            PostingStore._query_columns, "_query_cache"
        )

    def bound_columns(self) -> tuple:
        """Pinned aggregate bound columns, donated back on first build."""
        return self._build_and_donate(
            PostingStore.bound_columns, "_bound_cache"
        )

    def warm_query_caches(self) -> None:
        """Build the query-acceleration and bound columns now.

        Batch drivers call this once before fanning out workers so the
        one-time per-snapshot builds are not raced by every thread (a
        benign but wasteful duplication) or repeated inside every forked
        worker (a real serial cost per child).
        """
        self._query_columns()
        self.bound_columns()

    def num_postings(self, word: Optional[str] = None) -> int:
        """Postings *at snapshot time* (live appends are not counted)."""
        if word is not None:
            return self._num_postings.get(word, 0)
        return sum(self._num_postings.values())

    def make_entry(self, path_id: int, sim: float) -> PathEntry:
        """Delegates to the live store so the process-wide and per-store
        materialization counters keep counting (the regression tests and
        benchmarks read them there)."""
        return self._store.make_entry(path_id, sim)

    def release_query_columns(self) -> None:
        self._query_cache = None
        self._bound_cache = None

    def snapshot(self) -> "StoreSnapshot":
        """Snapshotting a snapshot is the identity (already pinned)."""
        return self

    # ------------------------------------------------------------ read-only

    def _read_only(self, operation: str):
        raise PathIndexError(
            f"cannot {operation} through a StoreSnapshot: snapshots are "
            "read-only views; mutate the live PostingStore instead"
        )

    def add_path(self, *args, **kwargs):
        self._read_only("add a path")

    def append_path(self, *args, **kwargs):
        self._read_only("append a path")

    def add_posting(self, *args, **kwargs):
        self._read_only("add a posting")

    def add_entry(self, *args, **kwargs):
        self._read_only("add an entry")

    def to_payload(self, *args, **kwargs):
        self._read_only("serialize")

    def __getattr__(self, name: str):
        # Everything not version-sensitive (instrumentation counters,
        # nbytes, scratch, ...) answers from the live store.
        return getattr(self._store, name)

    def __repr__(self) -> str:
        return (
            f"StoreSnapshot(version={self.version}, "
            f"paths={self.num_paths})"
        )
