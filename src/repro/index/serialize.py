"""Persistence of built path indexes.

Index construction dominates query time by orders of magnitude (Figure 6:
minutes to hours on the paper's hardware), so a production deployment
builds once and serves many queries.  We persist the whole
:class:`PathIndexes` bundle — graph included, since entries reference node
ids that are only meaningful against that exact graph — with pickle plus a
small versioned envelope to fail loudly on format drift.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Union

from repro.core.errors import PathIndexError
from repro.index.builder import PathIndexes

FORMAT_NAME = "repro-path-index"
FORMAT_VERSION = 1


def save_indexes(indexes: PathIndexes, path: Union[str, Path]) -> int:
    """Write indexes to ``path``; returns the byte size written."""
    envelope = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "d": indexes.d,
        "num_entries": indexes.num_entries,
        "payload": indexes,
    }
    data = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
    Path(path).write_bytes(data)
    return len(data)


def load_indexes(path: Union[str, Path]) -> PathIndexes:
    """Load indexes previously written by :func:`save_indexes`."""
    path = Path(path)
    if not path.exists():
        raise PathIndexError(f"no such index file: {str(path)!r}")
    try:
        envelope = pickle.loads(path.read_bytes())
    except Exception as exc:
        raise PathIndexError(f"cannot unpickle {str(path)!r}: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("format") != FORMAT_NAME:
        raise PathIndexError(f"{str(path)!r} is not a {FORMAT_NAME} file")
    if envelope.get("version") != FORMAT_VERSION:
        raise PathIndexError(
            f"{str(path)!r} has format version {envelope.get('version')}, "
            f"this build reads version {FORMAT_VERSION}"
        )
    payload = envelope["payload"]
    if not isinstance(payload, PathIndexes):
        raise PathIndexError(f"{str(path)!r} payload is not PathIndexes")
    if payload.num_entries != envelope.get("num_entries"):
        raise PathIndexError(
            f"{str(path)!r} entry count mismatch: envelope says "
            f"{envelope.get('num_entries')}, payload has {payload.num_entries}"
        )
    return payload
