"""Persistence of built path indexes.

Index construction dominates query time by orders of magnitude (Figure 6:
minutes to hours on the paper's hardware), so a production deployment
builds once and serves many queries.  We persist the whole
:class:`PathIndexes` bundle — graph included, since postings reference
node ids that are only meaningful against that exact graph — with a
versioned header to fail loudly on format drift.

Three on-disk formats exist:

* **FORMAT_VERSION 3** (written by default): posting columns, path and
  bound aggregate columns, the interner, and per-shard extents laid out
  as flat fixed-width arrays in one file behind an offset table, opened
  via ``mmap`` (see :mod:`repro.index.mmapstore` and
  ``docs/index-format.md``).  Cold start is O(1): opening maps pages
  without reading them, and every column deserializes lazily, word by
  word, on first query access.  Forked shard workers inherit the
  parent's mapping — shard pages are copy-free across the pool.
* **FORMAT_VERSION 2** (written with ``version=2``, read transparently):
  a pickled envelope holding the columnar
  :class:`~repro.index.store.PostingStore` and the pattern interner as
  raw ``array`` bytes; the whole store deserializes into heap arrays at
  load.
* **FORMAT_VERSION 1** (read-only): the legacy wholesale object-graph
  pickle with per-entry ``PathEntry`` objects in triply-nested dicts,
  migrated into a columnar store on load.

Saves are crash-safe: bytes are written to a temporary file in the target
directory and atomically renamed over the destination, so an interrupted
save can never leave a truncated or corrupt index file behind.
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
import time
from array import array
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.errors import PathIndexError
from repro.index.builder import PathIndexes
from repro.index.interner import PatternInterner
from repro.index.mmapstore import (
    V3_MAGIC,
    LazyGraph,
    MappedIndexReader,
    MappedPatternInterner,
    MappedPostingStore,
    _LazyLexicon,
    _LazyObjects,
    align8,
)
from repro.index.pattern_first import PatternFirstIndex
from repro.index.root_first import RootFirstIndex
from repro.index.store import (
    FLAG_TYPECODE,
    FLOAT_TYPECODE,
    ID_TYPECODE,
    OFFSET_TYPECODE,
    PostingStore,
    StoreSnapshot,
)

FORMAT_NAME = "repro-path-index"
FORMAT_VERSION = 3
READABLE_VERSIONS = (1, 2, 3)
WRITABLE_VERSIONS = (2, 3)

#: ``array`` typecode byte widths used when sizing v2 payload columns.
_ID_ITEMSIZE = array(ID_TYPECODE).itemsize


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via a same-directory temp file + rename."""
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise


def _write_index_bytes(data: bytes, path: Union[str, Path]) -> int:
    try:
        _atomic_write_bytes(Path(path), data)
    except OSError as exc:
        raise PathIndexError(
            f"cannot write index to {str(path)!r}: {exc}"
        ) from exc
    return len(data)


# ------------------------------------------------------------------ v2 write


def _v2_envelope(indexes: PathIndexes) -> dict:
    """The v2 columnar envelope for one bundle (shared by both kinds)."""
    store = indexes.store
    if store is None:  # pragma: no cover - PathIndexes always has a store
        raise PathIndexError("cannot serialize indexes without a store")
    return {
        "format": FORMAT_NAME,
        "version": 2,
        "d": indexes.d,
        "num_entries": indexes.num_entries,
        "num_paths": store.num_paths,
        "graph": indexes.graph,
        "normalizer": indexes.normalizer,
        "lexicon": indexes.lexicon,
        "synonyms": indexes.synonyms,
        "build_seconds": indexes.build_seconds,
        "pagerank": array("d", indexes.pagerank_scores).tobytes(),
        "interner": indexes.interner.to_payload(),
        "store": store.to_payload(indexes.pagerank_scores),
    }


def _write_envelope(envelope: dict, path: Union[str, Path]) -> int:
    data = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
    return _write_index_bytes(data, path)


# ------------------------------------------------------------------ v3 write


def _as_bytes(typecode: str, column) -> bytes:
    """A column (``array``, ``memoryview``, chained, or sequence) as bytes."""
    if isinstance(column, (array, memoryview)):
        return column.tobytes()
    tobytes = getattr(column, "tobytes", None)
    if tobytes is not None:
        # ChainColumn (mapped base ⊕ heap tail): two memcpys, no boxing.
        return tobytes()
    return array(typecode, column).tobytes()


class _SectionWriter:
    """Accumulates named, 8-byte-aligned data sections + an offset table."""

    def __init__(self) -> None:
        self.chunks: List[bytes] = []
        self.sections: Dict[str, Tuple[int, int]] = {}
        self._offset = 0

    def add(self, name: str, data: bytes) -> None:
        if name in self.sections:  # pragma: no cover - writer bug guard
            raise PathIndexError(f"duplicate v3 section {name!r}")
        pad = align8(self._offset) - self._offset
        if pad:
            self.chunks.append(b"\x00" * pad)
            self._offset += pad
        self.sections[name] = (self._offset, len(data))
        self.chunks.append(data)
        self._offset += len(data)


def _v3_store_sections(
    writer: _SectionWriter, prefix: str, store: PostingStore
) -> dict:
    """Write one store's columns as ``prefix``-named sections.

    The posting columns are written in their finalized (pattern, root,
    path-lex) sort order, concatenated per word in vocabulary order, and
    each index leaf's extent plus its aggregate bound (min/max path
    size, PageRank, similarity — see
    :meth:`~repro.index.store.PostingStore.bound_columns`) is persisted
    so the mapped reader rebuilds the finalized views and bound columns
    per word without scanning a single posting column.
    """
    store.finalize()
    _root_bounds, pattern_bounds = store.bound_columns()
    pattern_view = store.pattern_view()
    writer.add(
        prefix + "node_offsets",
        _as_bytes(OFFSET_TYPECODE, store._node_offsets),
    )
    writer.add(prefix + "nodes", _as_bytes(ID_TYPECODE, store._nodes))
    writer.add(prefix + "attrs", _as_bytes(ID_TYPECODE, store._attrs))
    writer.add(prefix + "pids", _as_bytes(ID_TYPECODE, store._pids))
    writer.add(prefix + "roots", _as_bytes(ID_TYPECODE, store._roots))
    writer.add(prefix + "moe", _as_bytes(FLAG_TYPECODE, store._moe))
    writer.add(prefix + "prs", _as_bytes(FLOAT_TYPECODE, store._prs))

    words = list(store._posting_ids.keys())
    posting_counts: List[int] = []
    leaf_counts: List[int] = []
    ids_chunks: List[bytes] = []
    sims_chunks: List[bytes] = []
    leaf_pids = array(ID_TYPECODE)
    leaf_roots = array(ID_TYPECODE)
    leaf_stops = array(OFFSET_TYPECODE)
    leaf_sizes = array(OFFSET_TYPECODE)
    leaf_floats = array(FLOAT_TYPECODE)
    for word in words:
        ids = store._posting_ids[word]
        posting_counts.append(len(ids))
        ids_chunks.append(_as_bytes(ID_TYPECODE, ids))
        sims_chunks.append(
            _as_bytes(FLOAT_TYPECODE, store._posting_sims[word])
        )
        word_bounds = pattern_bounds[word]
        leaves = [
            (pid, root, leaf)
            for pid, by_root in pattern_view[word].items()
            for root, leaf in by_root.items()
        ]
        leaves.sort(key=lambda item: item[2]._start)
        expected_start = 0
        for pid, root, leaf in leaves:
            if leaf._start != expected_start:
                raise PathIndexError(
                    f"cannot write v3: word {word!r} leaves are not "
                    "contiguous (store not finalized?)"
                )
            expected_start = leaf._stop
            leaf_pids.append(pid)
            leaf_roots.append(root)
            leaf_stops.append(leaf._stop)
            bound = word_bounds[pid][root]
            leaf_sizes.append(bound[1])
            leaf_sizes.append(bound[2])
            leaf_floats.append(bound[3])
            leaf_floats.append(bound[4])
            leaf_floats.append(bound[5])
            leaf_floats.append(bound[6])
        if expected_start != len(ids):
            raise PathIndexError(
                f"cannot write v3: word {word!r} leaves cover "
                f"{expected_start} of {len(ids)} postings"
            )
        leaf_counts.append(len(leaves))
    writer.add(prefix + "posting_ids", b"".join(ids_chunks))
    writer.add(prefix + "posting_sims", b"".join(sims_chunks))
    writer.add(prefix + "leaf_pids", leaf_pids.tobytes())
    writer.add(prefix + "leaf_roots", leaf_roots.tobytes())
    writer.add(prefix + "leaf_stops", leaf_stops.tobytes())
    writer.add(prefix + "leaf_sizes", leaf_sizes.tobytes())
    writer.add(prefix + "leaf_floats", leaf_floats.tobytes())
    return {
        "prefix": prefix,
        "words": words,
        "posting_counts": posting_counts,
        "leaf_counts": leaf_counts,
        "num_paths": store.num_paths,
        "num_postings": sum(posting_counts),
    }


def _v3_bytes(
    indexes: PathIndexes,
    shard_stores: Optional[Sequence[PostingStore]] = None,
    generation: Optional[int] = None,
) -> bytes:
    """Assemble one v3 file: magic, pickled header, aligned flat sections."""
    store = indexes.store
    stores = [store] + list(shard_stores or ())
    if any(isinstance(s, StoreSnapshot) for s in stores):
        raise PathIndexError(
            "cannot serialize through a StoreSnapshot: snapshots are "
            "read-only views; save the live bundle instead"
        )
    writer = _SectionWriter()
    stores_meta = [
        _v3_store_sections(writer, f"s{i}/", s) for i, s in enumerate(stores)
    ]
    graph = indexes.graph
    writer.add("node_types", _as_bytes(ID_TYPECODE, graph._node_types))
    writer.add(
        "pagerank", _as_bytes(FLOAT_TYPECODE, indexes.pagerank_scores)
    )
    interner_payload = indexes.interner.to_payload()
    writer.add("interner_offsets", interner_payload["offsets"])
    writer.add("interner_labels", interner_payload["labels"])
    writer.add("interner_flags", interner_payload["flags"])
    # The only object-pickled section; everything in it is off the query
    # hot path and unpickles lazily (see mmapstore.LazyGraph).
    writer.add(
        "objects",
        pickle.dumps(
            {"graph": graph, "lexicon": indexes.lexicon},
            protocol=pickle.HIGHEST_PROTOCOL,
        ),
    )
    num_shards = len(stores) - 1
    header = {
        "format": FORMAT_NAME,
        "version": 3,
        "kind": "sharded" if shard_stores is not None else "single",
        "num_shards": num_shards,
        # Compaction lineage: 0 for a fresh build, +1 per fold of a live
        # delta overlay back into a flat file (see compact_indexes).
        "generation": generation
        if generation is not None
        else getattr(store, "generation", 0),
        "d": indexes.d,
        "num_entries": indexes.num_entries,
        "num_paths": store.num_paths,
        "num_nodes": graph.num_nodes,
        "build_seconds": indexes.build_seconds,
        "normalizer": indexes.normalizer,
        "synonyms": indexes.synonyms,
        "stores": stores_meta,
        "sections": writer.sections,
    }
    header_bytes = pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL)
    pre = len(V3_MAGIC) + 8 + len(header_bytes)
    pad = align8(pre) - pre
    return b"".join(
        [
            V3_MAGIC,
            struct.pack("<Q", len(header_bytes)),
            header_bytes,
            b"\x00" * pad,
        ]
        + writer.chunks
    )


def _check_writable(version: int) -> None:
    if version not in WRITABLE_VERSIONS:
        raise PathIndexError(
            f"cannot write format version {version!r}; this build writes "
            f"versions {WRITABLE_VERSIONS}"
        )


def save_indexes(
    indexes: PathIndexes,
    path: Union[str, Path],
    version: int = FORMAT_VERSION,
) -> int:
    """Write indexes to ``path`` (atomic); returns the bytes written.

    Writes the mmap-ready v3 layout by default; pass ``version=2`` for
    the legacy pickled columnar envelope (e.g. to compare sizes or feed
    an older reader).
    """
    _check_writable(version)
    if version == 2:
        return _write_envelope(_v2_envelope(indexes), path)
    return _write_index_bytes(_v3_bytes(indexes), path)


def save_sharded_indexes(
    sharded,
    path: Union[str, Path],
    version: int = FORMAT_VERSION,
) -> int:
    """Write a partitioned bundle: the base plus its K shard stores.

    The shards share the base's graph/interner/lexicon/PageRank, so only
    their posting stores are serialized.  A sharded file *is* a valid
    index file: :func:`load_indexes` on it returns the base bundle
    (sharding is a serving-side accelerator, not a different index),
    while :func:`load_sharded_indexes` restores the full partition
    without re-running :func:`repro.index.shards.partition_indexes`.
    In the v3 layout each shard's columns are distinct mapped extents of
    the same file, so forked shard workers share one page cache copy.
    """
    _check_writable(version)
    if version == 2:
        envelope = _v2_envelope(sharded.base)
        envelope["kind"] = "sharded"
        envelope["num_shards"] = sharded.num_shards
        envelope["shard_stores"] = [
            shard.store.to_payload(sharded.base.pagerank_scores)
            for shard in sharded.shards
        ]
        return _write_envelope(envelope, path)
    data = _v3_bytes(
        sharded.base, [shard.store for shard in sharded.shards]
    )
    return _write_index_bytes(data, path)


# ---------------------------------------------------------------- compaction


def compact_indexes(
    indexes: PathIndexes,
    path: Union[str, Path],
    num_shards: int = 0,
) -> dict:
    """Fold a mapped store's delta overlay into a fresh v3 file + re-map.

    The LSM "merge" step for :class:`~repro.index.mmapstore.
    MappedPostingStore`: streams base ⊕ overlay into a new v3 image
    (crash-safe — the bytes land in a temp file and atomically replace
    ``path``), then re-points the live store at the new mapping
    (:meth:`~repro.index.mmapstore.MappedPostingStore.remap`).  The
    overlay's heap state is dropped; untouched readers never notice —
    pinned snapshots keep the old generation's pages alive, and the
    version bump makes every pool and cache rebuild from the re-mapped
    generation.

    With ``num_shards > 0`` the current content is also partitioned and
    the file written sharded (per-shard extents preserved, so a restart
    re-maps the partition for free).

    The whole operation holds ``store.lock``: writers and
    snapshot-takers block for the O(index) streaming write (readers on
    existing snapshots are unaffected) — this is what makes the written
    image and the re-mapped state exactly the live content.

    Returns ``{"bytes", "generation", "sharded"}`` where ``sharded`` is
    a fresh mapped :class:`~repro.index.shards.ShardedIndexes` partition
    (``None`` when ``num_shards == 0``).
    """
    from repro.index.shards import partition_indexes, wrap_shard_stores

    store = indexes.store
    if isinstance(store, StoreSnapshot):
        raise PathIndexError(
            "cannot compact through a StoreSnapshot: compact the live "
            "bundle"
        )
    if not isinstance(store, MappedPostingStore) or not store._backed:
        raise PathIndexError(
            "compact requires a mapped (backed) v3 store; save_indexes() "
            "rewrites heap-resident bundles"
        )
    path = Path(path)
    generation = store.generation + 1
    with store.lock:
        if num_shards > 0:
            partition = partition_indexes(indexes, num_shards)
            data = _v3_bytes(
                indexes,
                [shard.store for shard in partition.shards],
                generation=generation,
            )
        else:
            data = _v3_bytes(indexes, generation=generation)
        nbytes = _write_index_bytes(data, path)
        reader = MappedIndexReader(path)
        header = reader.header
        store.remap(reader, header["stores"][0])
        sharded = None
        if num_shards > 0:
            mapped_stores = [
                MappedPostingStore(
                    indexes.interner, reader, meta, generation=generation
                )
                for meta in header["stores"][1:]
            ]
            # store_version defaults to the *post-remap* live version, so
            # the serving tier's pools adopt this partition without a
            # re-partition.
            sharded = wrap_shard_stores(indexes, mapped_stores)
    return {"bytes": nbytes, "generation": generation, "sharded": sharded}


# ------------------------------------------------------------------- loading


def _load_v2(path: Path, envelope: dict) -> PathIndexes:
    """Reassemble a :class:`PathIndexes` from a v2 columnar envelope."""
    try:
        interner = PatternInterner.from_payload(envelope["interner"])
        pagerank = array("d")
        pagerank.frombytes(envelope["pagerank"])
        store = PostingStore.from_payload(
            interner, envelope["store"], pagerank
        )
        pattern_first = PatternFirstIndex(interner, store)
        root_first = RootFirstIndex(interner, store)
        pattern_first.finalize()
        root_first.finalize()
        return PathIndexes(
            graph=envelope["graph"],
            d=envelope["d"],
            normalizer=envelope["normalizer"],
            lexicon=envelope["lexicon"],
            interner=interner,
            pattern_first=pattern_first,
            root_first=root_first,
            pagerank_scores=list(pagerank),
            build_seconds=envelope.get("build_seconds", 0.0),
            synonyms=envelope.get("synonyms"),
            store=store,
        )
    except KeyError as exc:
        raise PathIndexError(
            f"{str(path)!r} v2 envelope is missing field {exc}"
        ) from exc


def _migrate_v1(path: Path, payload: object) -> PathIndexes:
    """Rebuild a columnar bundle from a legacy object-graph pickle.

    v1 payloads are :class:`PathIndexes` instances whose index attributes
    hold the pre-columnar layout (``word -> pid -> root -> [PathEntry]``
    dicts).  Attributes are read through ``__dict__`` so this works
    regardless of how the index classes have evolved since the file was
    written.
    """
    if not isinstance(payload, PathIndexes):
        raise PathIndexError(f"{str(path)!r} payload is not PathIndexes")
    state = payload.__dict__
    try:
        interner = state["interner"]
        legacy_data = state["pattern_first"].__dict__["_data"]
    except KeyError as exc:
        raise PathIndexError(
            f"{str(path)!r} v1 payload is missing attribute {exc}"
        ) from exc
    store = PostingStore(interner)
    for word, by_pattern in legacy_data.items():
        for pid, by_root in by_pattern.items():
            for entries in by_root.values():
                for entry in entries:
                    store.add_entry(word, pid, entry)
    pattern_first = PatternFirstIndex(interner, store)
    root_first = RootFirstIndex(interner, store)
    pattern_first.finalize()
    root_first.finalize()
    return PathIndexes(
        graph=state["graph"],
        d=state["d"],
        normalizer=state["normalizer"],
        lexicon=state["lexicon"],
        interner=interner,
        pattern_first=pattern_first,
        root_first=root_first,
        pagerank_scores=state["pagerank_scores"],
        build_seconds=state.get("build_seconds", 0.0),
        synonyms=state.get("synonyms"),
        store=store,
    )


def _is_v3_file(path: Path) -> bool:
    """Whether ``path`` starts with the v3 magic (False on any OSError,
    so a missing file falls through to the envelope path's error)."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(V3_MAGIC)) == V3_MAGIC
    except OSError:
        return False


def _load_v3(path: Path):
    """Open a v3 file: ``(reader, header, base_indexes, all_stores)``.

    O(1) in the index size: columns are mapped, not read — the base
    bundle's views and bound columns deserialize lazily per word (see
    :mod:`repro.index.mmapstore`).  ``all_stores[0]`` is the base store;
    the rest are shard stores for sharded files.
    """
    reader = MappedIndexReader(path)
    header = reader.header
    if header.get("format") != FORMAT_NAME:
        raise PathIndexError(f"{str(path)!r} is not a {FORMAT_NAME} file")
    if header.get("version") != 3:
        raise PathIndexError(
            f"{str(path)!r} has format version {header.get('version')}, "
            f"this build reads versions {READABLE_VERSIONS}"
        )
    try:
        interner = MappedPatternInterner(
            reader.view("interner_offsets", OFFSET_TYPECODE),
            reader.view("interner_labels", ID_TYPECODE),
            reader.view("interner_flags", FLAG_TYPECODE),
        )
        objects = _LazyObjects(reader)
        graph = LazyGraph(reader.view("node_types", ID_TYPECODE), objects)
        lexicon = _LazyLexicon(objects)
        # Heap copy (one memcpy, no boxing): incremental maintenance
        # appends to the PageRank vector, a mapped view cannot grow.
        pagerank = array("d")
        pagerank.frombytes(reader.blob("pagerank"))
        generation = header.get("generation", 0)
        stores = [
            MappedPostingStore(interner, reader, meta, generation=generation)
            for meta in header["stores"]
        ]
        base_store = stores[0]
        pattern_first = PatternFirstIndex(interner, base_store)
        root_first = RootFirstIndex(interner, base_store)
        pattern_first.finalize()
        root_first.finalize()
        base = PathIndexes(
            graph=graph,
            d=header["d"],
            normalizer=header["normalizer"],
            lexicon=lexicon,
            interner=interner,
            pattern_first=pattern_first,
            root_first=root_first,
            pagerank_scores=pagerank,
            build_seconds=header.get("build_seconds", 0.0),
            synonyms=header.get("synonyms"),
            store=base_store,
        )
        return reader, header, base, stores
    except KeyError as exc:
        raise PathIndexError(
            f"{str(path)!r} v3 header is missing field {exc}"
        ) from exc


def _read_envelope(path: Path) -> dict:
    """Read and format-check an index file's outer pickled envelope."""
    if not path.exists():
        raise PathIndexError(f"no such index file: {str(path)!r}")
    try:
        envelope = pickle.loads(path.read_bytes())
    except Exception as exc:
        raise PathIndexError(f"cannot unpickle {str(path)!r}: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("format") != FORMAT_NAME:
        raise PathIndexError(f"{str(path)!r} is not a {FORMAT_NAME} file")
    version = envelope.get("version")
    if version not in READABLE_VERSIONS:
        raise PathIndexError(
            f"{str(path)!r} has format version {version}, this build reads "
            f"versions {READABLE_VERSIONS}"
        )
    return envelope


def load_indexes(path: Union[str, Path]) -> PathIndexes:
    """Load indexes previously written by :func:`save_indexes`.

    Reads the mmap-backed v3 layout (O(1) cold start — columns stay on
    disk until queries touch them), the v2 pickled columnar envelope,
    and legacy v1 object-graph pickles (transparently migrated).  A
    sharded file loads as its base bundle — the partition is extra
    serving-side state, not a different index; use
    :func:`load_sharded_indexes` to restore the shards too.

    The elapsed wall-clock cold-start time is recorded on the returned
    bundle as ``indexes.load_seconds`` (surfaced by ``search --explain``,
    ``serve`` startup, and :class:`~repro.search.service.ServiceStats`).
    """
    path = Path(path)
    started = time.perf_counter()
    if _is_v3_file(path):
        _reader, header, indexes, _stores = _load_v3(path)
        expected_entries = header.get("num_entries")
    else:
        envelope = _read_envelope(path)
        if envelope.get("version") == 1:
            indexes = _migrate_v1(path, envelope.get("payload"))
        else:
            indexes = _load_v2(path, envelope)
        expected_entries = envelope.get("num_entries")
    if indexes.num_entries != expected_entries:
        raise PathIndexError(
            f"{str(path)!r} entry count mismatch: envelope says "
            f"{expected_entries}, payload has "
            f"{indexes.num_entries}"
        )
    indexes.load_seconds = time.perf_counter() - started
    return indexes


def load_sharded_indexes(path: Union[str, Path]):
    """Load a partitioned bundle written by :func:`save_sharded_indexes`.

    Returns a :class:`~repro.index.shards.ShardedIndexes`: the base
    bundle plus its K shard bundles, reassembled against the base's
    interner/graph exactly as :func:`partition_indexes` would build them.
    For v3 files every shard store maps extents of the same open file —
    no reconstruction, and forked workers share the page cache.
    """
    from repro.index.shards import wrap_shard_stores

    path = Path(path)
    started = time.perf_counter()
    if _is_v3_file(path):
        _reader, header, base, stores = _load_v3(path)
        if header.get("kind") != "sharded":
            raise PathIndexError(
                f"{str(path)!r} is not a sharded index file; load it with "
                "load_indexes() and partition_indexes() instead"
            )
        num_shards = header.get("num_shards")
        shard_stores = stores[1:]
        if len(shard_stores) != num_shards:
            raise PathIndexError(
                f"{str(path)!r} sharded header is inconsistent: "
                f"num_shards={num_shards!r}, "
                f"{len(shard_stores)} shard stores"
            )
        sharded = wrap_shard_stores(base, shard_stores)
    else:
        envelope = _read_envelope(path)
        if envelope.get("kind") != "sharded":
            raise PathIndexError(
                f"{str(path)!r} is not a sharded index file; load it with "
                "load_indexes() and partition_indexes() instead"
            )
        base = _load_v2(path, envelope)
        payloads = envelope.get("shard_stores")
        num_shards = envelope.get("num_shards")
        if not isinstance(payloads, list) or len(payloads) != num_shards:
            raise PathIndexError(
                f"{str(path)!r} sharded envelope is inconsistent: "
                f"num_shards={num_shards!r}, "
                f"{len(payloads) if isinstance(payloads, list) else 'no'} "
                "shard stores"
            )
        pagerank = array("d")
        pagerank.frombytes(envelope["pagerank"])
        stores = [
            PostingStore.from_payload(base.interner, payload, pagerank)
            for payload in payloads
        ]
        sharded = wrap_shard_stores(base, stores)
    total = sum(shard.num_entries for shard in sharded.shards)
    if total != sharded.base.num_entries:
        raise PathIndexError(
            f"{str(path)!r} shard postings do not cover the base: "
            f"{total} vs {sharded.base.num_entries}"
        )
    sharded.base.load_seconds = time.perf_counter() - started
    return sharded


# --------------------------------------------------------------- inspection


def _v2_store_summary(name: str, payload: dict) -> dict:
    """Size/count summary of one v2 store payload without rebuilding it."""
    posting_ids = payload.get("posting_ids", [])
    byte_fields = [
        payload.get("path_lengths"),
        payload.get("nodes"),
        payload.get("attrs"),
        payload.get("pids"),
        payload.get("moe"),
        payload.get("prs"),
        payload.get("sim_values"),
    ]
    store_bytes = sum(len(raw) for raw in byte_fields if raw is not None)
    store_bytes += sum(len(raw) for raw in posting_ids)
    store_bytes += sum(len(raw) for raw in payload.get("posting_sims", []))
    return {
        "name": name,
        "num_paths": payload.get("num_paths"),
        "num_postings": sum(
            len(raw) // _ID_ITEMSIZE for raw in posting_ids
        ),
        "store_bytes": store_bytes,
    }


def describe_index_file(path: Union[str, Path]) -> dict:
    """Cheap structural summary of an index file for ``repro stats``.

    Returns ``{"file_bytes", "version", "kind", "num_shards", "d",
    "num_entries", "stores": [{"name", "num_paths", "num_postings",
    "store_bytes"}, ...]}`` — reading only the header for v3 files and
    the envelope (no store reconstruction) for v1/v2, so it works on
    sharded bundles the full loader would spend real time assembling.
    """
    path = Path(path)
    if not path.exists():
        raise PathIndexError(f"no such index file: {str(path)!r}")
    file_bytes = path.stat().st_size
    if _is_v3_file(path):
        reader = MappedIndexReader(path)
        header = reader.header
        stores = []
        for i, meta in enumerate(header.get("stores", [])):
            prefix = meta["prefix"]
            stores.append(
                {
                    "name": "base" if i == 0 else f"shard {i - 1}",
                    "num_paths": meta["num_paths"],
                    "num_postings": meta["num_postings"],
                    "store_bytes": sum(
                        nbytes
                        for name, (_offset, nbytes) in
                        reader.sections.items()
                        if name.startswith(prefix)
                    ),
                }
            )
        return {
            "file_bytes": file_bytes,
            "version": 3,
            "kind": header.get("kind", "single"),
            "num_shards": header.get("num_shards", 0),
            "generation": header.get("generation", 0),
            "d": header.get("d"),
            "num_entries": header.get("num_entries"),
            "stores": stores,
        }
    envelope = _read_envelope(path)
    version = envelope.get("version")
    if version == 1:
        payload = envelope.get("payload")
        d = None
        if isinstance(payload, PathIndexes):
            d = payload.__dict__.get("d")
        return {
            "file_bytes": file_bytes,
            "version": 1,
            "kind": "single",
            "num_shards": 0,
            "d": d,
            "num_entries": envelope.get("num_entries"),
            "stores": [],
        }
    stores = [_v2_store_summary("base", envelope["store"])]
    shard_payloads = envelope.get("shard_stores") or []
    for i, payload in enumerate(shard_payloads):
        stores.append(_v2_store_summary(f"shard {i}", payload))
    return {
        "file_bytes": file_bytes,
        "version": 2,
        "kind": envelope.get("kind", "single"),
        "num_shards": envelope.get("num_shards", 0),
        "d": envelope.get("d"),
        "num_entries": envelope.get("num_entries"),
        "stores": stores,
    }
