"""Persistence of built path indexes.

Index construction dominates query time by orders of magnitude (Figure 6:
minutes to hours on the paper's hardware), so a production deployment
builds once and serves many queries.  We persist the whole
:class:`PathIndexes` bundle — graph included, since postings reference
node ids that are only meaningful against that exact graph — with a small
versioned envelope to fail loudly on format drift.

Two on-disk formats exist:

* **FORMAT_VERSION 2** (written): the columnar
  :class:`~repro.index.store.PostingStore` and the pattern interner are
  dumped as raw ``array`` bytes (see ``docs/index-format.md``); only the
  graph/lexicon/normalizer components go through object pickling.  No
  per-posting Python object is serialized, which makes v2 files a
  fraction of the v1 size.
* **FORMAT_VERSION 1** (read-only): the legacy wholesale object-graph
  pickle of :class:`PathIndexes` with per-entry ``PathEntry`` objects in
  triply-nested dicts.  v1 files are migrated into a columnar store on
  load, so old index files keep working.

Saves are crash-safe: bytes are written to a temporary file in the target
directory and atomically renamed over the destination, so an interrupted
save can never leave a truncated or corrupt index file behind.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from array import array
from pathlib import Path
from typing import Union

from repro.core.errors import PathIndexError
from repro.index.builder import PathIndexes
from repro.index.interner import PatternInterner
from repro.index.pattern_first import PatternFirstIndex
from repro.index.root_first import RootFirstIndex
from repro.index.store import PostingStore

FORMAT_NAME = "repro-path-index"
FORMAT_VERSION = 2
READABLE_VERSIONS = (1, 2)


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via a same-directory temp file + rename."""
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise


def _v2_envelope(indexes: PathIndexes) -> dict:
    """The v2 columnar envelope for one bundle (shared by both kinds)."""
    store = indexes.store
    if store is None:  # pragma: no cover - PathIndexes always has a store
        raise PathIndexError("cannot serialize indexes without a store")
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "d": indexes.d,
        "num_entries": indexes.num_entries,
        "num_paths": store.num_paths,
        "graph": indexes.graph,
        "normalizer": indexes.normalizer,
        "lexicon": indexes.lexicon,
        "synonyms": indexes.synonyms,
        "build_seconds": indexes.build_seconds,
        "pagerank": array("d", indexes.pagerank_scores).tobytes(),
        "interner": indexes.interner.to_payload(),
        "store": store.to_payload(indexes.pagerank_scores),
    }


def _write_envelope(envelope: dict, path: Union[str, Path]) -> int:
    data = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        _atomic_write_bytes(Path(path), data)
    except OSError as exc:
        raise PathIndexError(
            f"cannot write index to {str(path)!r}: {exc}"
        ) from exc
    return len(data)


def save_indexes(indexes: PathIndexes, path: Union[str, Path]) -> int:
    """Write indexes to ``path`` (v2, atomic); returns the bytes written."""
    return _write_envelope(_v2_envelope(indexes), path)


def save_sharded_indexes(sharded, path: Union[str, Path]) -> int:
    """Write a partitioned bundle: one v2 base envelope + K shard stores.

    The shards share the base's graph/interner/lexicon/PageRank, so only
    their posting stores are serialized — each as the same columnar
    payload :func:`save_indexes` writes, reassembled against the base's
    interner on load.  A sharded file *is* a valid index file:
    :func:`load_indexes` on it returns the base bundle (sharding is a
    serving-side accelerator, not a different index), while
    :func:`load_sharded_indexes` restores the full partition without
    re-running :func:`repro.index.shards.partition_indexes`.
    """
    envelope = _v2_envelope(sharded.base)
    envelope["kind"] = "sharded"
    envelope["num_shards"] = sharded.num_shards
    envelope["shard_stores"] = [
        shard.store.to_payload(sharded.base.pagerank_scores)
        for shard in sharded.shards
    ]
    return _write_envelope(envelope, path)


def _load_v2(path: Path, envelope: dict) -> PathIndexes:
    """Reassemble a :class:`PathIndexes` from a v2 columnar envelope."""
    try:
        interner = PatternInterner.from_payload(envelope["interner"])
        pagerank = array("d")
        pagerank.frombytes(envelope["pagerank"])
        store = PostingStore.from_payload(
            interner, envelope["store"], pagerank
        )
        pattern_first = PatternFirstIndex(interner, store)
        root_first = RootFirstIndex(interner, store)
        pattern_first.finalize()
        root_first.finalize()
        return PathIndexes(
            graph=envelope["graph"],
            d=envelope["d"],
            normalizer=envelope["normalizer"],
            lexicon=envelope["lexicon"],
            interner=interner,
            pattern_first=pattern_first,
            root_first=root_first,
            pagerank_scores=list(pagerank),
            build_seconds=envelope.get("build_seconds", 0.0),
            synonyms=envelope.get("synonyms"),
            store=store,
        )
    except KeyError as exc:
        raise PathIndexError(
            f"{str(path)!r} v2 envelope is missing field {exc}"
        ) from exc


def _migrate_v1(path: Path, payload: object) -> PathIndexes:
    """Rebuild a columnar bundle from a legacy object-graph pickle.

    v1 payloads are :class:`PathIndexes` instances whose index attributes
    hold the pre-columnar layout (``word -> pid -> root -> [PathEntry]``
    dicts).  Attributes are read through ``__dict__`` so this works
    regardless of how the index classes have evolved since the file was
    written.
    """
    if not isinstance(payload, PathIndexes):
        raise PathIndexError(f"{str(path)!r} payload is not PathIndexes")
    state = payload.__dict__
    try:
        interner = state["interner"]
        legacy_data = state["pattern_first"].__dict__["_data"]
    except KeyError as exc:
        raise PathIndexError(
            f"{str(path)!r} v1 payload is missing attribute {exc}"
        ) from exc
    store = PostingStore(interner)
    for word, by_pattern in legacy_data.items():
        for pid, by_root in by_pattern.items():
            for entries in by_root.values():
                for entry in entries:
                    store.add_entry(word, pid, entry)
    pattern_first = PatternFirstIndex(interner, store)
    root_first = RootFirstIndex(interner, store)
    pattern_first.finalize()
    root_first.finalize()
    return PathIndexes(
        graph=state["graph"],
        d=state["d"],
        normalizer=state["normalizer"],
        lexicon=state["lexicon"],
        interner=interner,
        pattern_first=pattern_first,
        root_first=root_first,
        pagerank_scores=state["pagerank_scores"],
        build_seconds=state.get("build_seconds", 0.0),
        synonyms=state.get("synonyms"),
        store=store,
    )


def _read_envelope(path: Path) -> dict:
    """Read and format-check an index file's outer envelope."""
    if not path.exists():
        raise PathIndexError(f"no such index file: {str(path)!r}")
    try:
        envelope = pickle.loads(path.read_bytes())
    except Exception as exc:
        raise PathIndexError(f"cannot unpickle {str(path)!r}: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("format") != FORMAT_NAME:
        raise PathIndexError(f"{str(path)!r} is not a {FORMAT_NAME} file")
    version = envelope.get("version")
    if version not in READABLE_VERSIONS:
        raise PathIndexError(
            f"{str(path)!r} has format version {version}, this build reads "
            f"versions {READABLE_VERSIONS}"
        )
    return envelope


def load_indexes(path: Union[str, Path]) -> PathIndexes:
    """Load indexes previously written by :func:`save_indexes`.

    Reads both the current v2 columnar format and legacy v1 object-graph
    pickles (transparently migrated to the columnar store).  A sharded
    file (:func:`save_sharded_indexes`) loads as its base bundle — the
    partition is extra serving-side state, not a different index; use
    :func:`load_sharded_indexes` to restore the shards too.
    """
    path = Path(path)
    envelope = _read_envelope(path)
    if envelope.get("version") == 1:
        indexes = _migrate_v1(path, envelope.get("payload"))
    else:
        indexes = _load_v2(path, envelope)
    if indexes.num_entries != envelope.get("num_entries"):
        raise PathIndexError(
            f"{str(path)!r} entry count mismatch: envelope says "
            f"{envelope.get('num_entries')}, payload has "
            f"{indexes.num_entries}"
        )
    return indexes


def load_sharded_indexes(path: Union[str, Path]):
    """Load a partitioned bundle written by :func:`save_sharded_indexes`.

    Returns a :class:`~repro.index.shards.ShardedIndexes`: the base
    bundle plus its K shard bundles, reassembled against the base's
    interner/graph exactly as :func:`partition_indexes` would build them.
    """
    from repro.index.shards import wrap_shard_stores

    path = Path(path)
    envelope = _read_envelope(path)
    if envelope.get("kind") != "sharded":
        raise PathIndexError(
            f"{str(path)!r} is not a sharded index file; load it with "
            "load_indexes() and partition_indexes() instead"
        )
    base = _load_v2(path, envelope)
    payloads = envelope.get("shard_stores")
    num_shards = envelope.get("num_shards")
    if not isinstance(payloads, list) or len(payloads) != num_shards:
        raise PathIndexError(
            f"{str(path)!r} sharded envelope is inconsistent: "
            f"num_shards={num_shards!r}, "
            f"{len(payloads) if isinstance(payloads, list) else 'no'} "
            "shard stores"
        )
    pagerank = array("d")
    pagerank.frombytes(envelope["pagerank"])
    stores = [
        PostingStore.from_payload(base.interner, payload, pagerank)
        for payload in payloads
    ]
    sharded = wrap_shard_stores(base, stores)
    total = sum(shard.num_entries for shard in sharded.shards)
    if total != base.num_entries:
        raise PathIndexError(
            f"{str(path)!r} shard postings do not cover the base: "
            f"{total} vs {base.num_entries}"
        )
    return sharded
