"""The root-first path index (Figure 4(b) / Figure 5(b)).

For each word ``w``, paths are grouped by *root first, then pattern*.
Access methods follow the paper:

* ``Roots(w)`` — all roots reaching a node/edge containing ``w``;
* ``Patterns(w, r)`` — patterns through which root ``r`` reaches ``w``;
* ``Paths(w, r)`` — all such paths from ``r`` (any pattern);
* ``Paths(w, r, P)`` — restricted to one pattern.

``Paths(w, r)`` counts are precomputed: Algorithm 4 (line 4) needs
``N_R = sum_r prod_i |Paths(w_i, r)|`` *without* enumerating the paths.

Since the columnar-store refactor this class is a thin *view*: postings
live in one shared :class:`~repro.index.store.PostingStore` (also behind
:class:`~repro.index.pattern_first.PatternFirstIndex`), the leaf posting
lists here are the *same* :class:`~repro.index.store.PostingList` objects
as the pattern-first view's, and count probes (``path_count``,
``num_entries``) read the store's columns without materializing a single
:class:`~repro.index.entry.PathEntry`.
"""

from __future__ import annotations

from itertools import chain
from typing import (
    Dict,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.types import NodeId, PatternId
from repro.index.entry import PathEntry
from repro.index.interner import PatternInterner
from repro.index.store import PostingList, PostingStore

_EMPTY_DICT: Dict = {}
_EMPTY_LIST: list = []


class RootFirstIndex:
    """word -> root -> pattern -> postings with paper-named accessors."""

    def __init__(
        self,
        interner: PatternInterner,
        store: Optional[PostingStore] = None,
    ) -> None:
        """Create a view over ``store`` (or a private store when omitted).

        Pass the same store to :class:`~repro.index.pattern_first.\
PatternFirstIndex` to share every posting between the two indexes.
        """
        self.interner = interner
        self.store = store if store is not None else PostingStore(interner)
        self._data: Dict[str, Dict[NodeId, Mapping[PatternId, PostingList]]] = {}
        self._built_version = -1

    # -------------------------------------------------------------- building

    def add(self, word: str, pid: PatternId, entry: PathEntry) -> None:
        """Insert one posting (interning its path) into the backing store.

        When the store is shared with a pattern-first view, add through
        the store (or through exactly one view) — the posting is visible
        to both sides.
        """
        self.store.add_entry(word, pid, entry)

    def finalize(self) -> None:
        """(Re)build the nested view dicts from the store's grouping.

        Roots ascend, patterns ascend within a root, and postings are
        sorted lexicographically by (nodes, attrs) — the exact
        pre-refactor order.  Cheap when nothing changed.
        """
        store = self.store
        if self._built_version == store.version:
            return
        self._data = store.root_view()  # shared with the store, not copied
        self._built_version = store.version

    def _ensure(self) -> None:
        if self._built_version != self.store.version:
            self.finalize()

    # ------------------------------------------------------------- accessors

    def words(self) -> Iterable[str]:
        return self.store.words()

    def has_word(self, word: str) -> bool:
        return self.store.has_word(word)

    def roots(
        self, word: str
    ) -> Mapping[NodeId, Mapping[PatternId, PostingList]]:
        """Roots(w) as a root -> (pattern -> entries) mapping."""
        self._ensure()
        return self._data.get(word, _EMPTY_DICT)

    def patterns(self, word: str, root: NodeId) -> Sequence[PatternId]:
        """Patterns(w, r)."""
        self._ensure()
        return list(
            self._data.get(word, _EMPTY_DICT).get(root, _EMPTY_DICT).keys()
        )

    def pattern_map(
        self, word: str, root: NodeId
    ) -> Mapping[PatternId, PostingList]:
        """Pattern -> entries mapping for one (word, root) pair."""
        self._ensure()
        return self._data.get(word, _EMPTY_DICT).get(root, _EMPTY_DICT)

    def paths(self, word: str, root: NodeId) -> Iterator[PathEntry]:
        """Paths(w, r): every path from ``r`` to ``w`` (any pattern).

        Implemented, as the paper notes, "by enumerating P and accessing
        Paths(w, r, P) for each P".  Always returns an iterator.
        """
        self._ensure()
        by_pattern = self._data.get(word, _EMPTY_DICT).get(root)
        if not by_pattern:
            return iter(())
        return chain.from_iterable(by_pattern.values())

    def paths_with_pattern(
        self, word: str, root: NodeId, pid: PatternId
    ) -> Sequence[PathEntry]:
        """Paths(w, r, P)."""
        self._ensure()
        return (
            self._data.get(word, _EMPTY_DICT)
            .get(root, _EMPTY_DICT)
            .get(pid, _EMPTY_LIST)
        )

    def path_count(self, word: str, root: NodeId) -> int:
        """|Paths(w, r)| in O(1) from the store's precomputed counts."""
        return self.store.root_counts(word).get(root, 0)

    # ------------------------------------------------------------------ size

    def num_entries(self, word: Optional[str] = None) -> int:
        """Total stored postings (optionally for one word) — O(1)."""
        return self.store.num_postings(word)

    def iter_entries(self) -> Iterable[Tuple[str, PatternId, PathEntry]]:
        self._ensure()
        for word, by_root in self._data.items():
            for by_pattern in by_root.values():
                for pid, postings in by_pattern.items():
                    for entry in postings:
                        yield word, pid, entry
