"""The root-first path index (Figure 4(b) / Figure 5(b)).

For each word ``w``, paths are grouped by *root first, then pattern*.
Access methods follow the paper:

* ``Roots(w)`` — all roots reaching a node/edge containing ``w``;
* ``Patterns(w, r)`` — patterns through which root ``r`` reaches ``w``;
* ``Paths(w, r)`` — all such paths from ``r`` (any pattern);
* ``Paths(w, r, P)`` — restricted to one pattern.

``Paths(w, r)`` counts are precomputed: Algorithm 4 (line 4) needs
``N_R = sum_r prod_i |Paths(w_i, r)|`` *without* enumerating the paths.
"""

from __future__ import annotations

from itertools import chain
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.types import NodeId, PatternId
from repro.index.entry import PathEntry
from repro.index.interner import PatternInterner

_EMPTY_DICT: Dict = {}
_EMPTY_LIST: List = []


class RootFirstIndex:
    """word -> root -> pattern -> [PathEntry] with paper-named accessors."""

    def __init__(self, interner: PatternInterner) -> None:
        self.interner = interner
        self._data: Dict[str, Dict[NodeId, Dict[PatternId, List[PathEntry]]]] = {}
        self._counts: Dict[str, Dict[NodeId, int]] = {}
        self._finalized = False

    # -------------------------------------------------------------- building

    def add(self, word: str, pid: PatternId, entry: PathEntry) -> None:
        by_root = self._data.get(word)
        if by_root is None:
            by_root = self._data[word] = {}
        root = entry.nodes[0]
        by_pattern = by_root.get(root)
        if by_pattern is None:
            by_pattern = by_root[root] = {}
        entries = by_pattern.get(pid)
        if entries is None:
            by_pattern[pid] = [entry]
        else:
            entries.append(entry)
        self._finalized = False

    def finalize(self) -> None:
        """Sort postings and precompute |Paths(w, r)| counts."""
        for word, by_root in self._data.items():
            sorted_roots = dict(sorted(by_root.items()))
            counts: Dict[NodeId, int] = {}
            for root, by_pattern in sorted_roots.items():
                sorted_patterns = dict(sorted(by_pattern.items()))
                total = 0
                for entries in sorted_patterns.values():
                    entries.sort(key=lambda e: (e.nodes, e.attrs))
                    total += len(entries)
                sorted_roots[root] = sorted_patterns
                counts[root] = total
            self._data[word] = sorted_roots
            self._counts[word] = counts
        self._finalized = True

    # ------------------------------------------------------------- accessors

    def words(self) -> Iterable[str]:
        return self._data.keys()

    def has_word(self, word: str) -> bool:
        return word in self._data

    def roots(self, word: str) -> Dict[NodeId, Dict[PatternId, List[PathEntry]]]:
        """Roots(w) as a root -> (pattern -> entries) mapping."""
        return self._data.get(word, _EMPTY_DICT)

    def patterns(self, word: str, root: NodeId) -> Sequence[PatternId]:
        """Patterns(w, r)."""
        return list(
            self._data.get(word, _EMPTY_DICT).get(root, _EMPTY_DICT).keys()
        )

    def pattern_map(
        self, word: str, root: NodeId
    ) -> Dict[PatternId, List[PathEntry]]:
        """Pattern -> entries mapping for one (word, root) pair."""
        return self._data.get(word, _EMPTY_DICT).get(root, _EMPTY_DICT)

    def paths(self, word: str, root: NodeId) -> Iterable[PathEntry]:
        """Paths(w, r): every path from ``r`` to ``w`` (any pattern).

        Implemented, as the paper notes, "by enumerating P and accessing
        Paths(w, r, P) for each P".
        """
        by_pattern = self._data.get(word, _EMPTY_DICT).get(root)
        if not by_pattern:
            return iter(())
        return chain.from_iterable(by_pattern.values())

    def paths_with_pattern(
        self, word: str, root: NodeId, pid: PatternId
    ) -> List[PathEntry]:
        """Paths(w, r, P)."""
        return (
            self._data.get(word, _EMPTY_DICT)
            .get(root, _EMPTY_DICT)
            .get(pid, _EMPTY_LIST)
        )

    def path_count(self, word: str, root: NodeId) -> int:
        """|Paths(w, r)| in O(1) (precomputed by :meth:`finalize`)."""
        if not self._finalized:
            self.finalize()
        return self._counts.get(word, _EMPTY_DICT).get(root, 0)

    # ------------------------------------------------------------------ size

    def num_entries(self, word: str = None) -> int:
        """Total stored paths (optionally for one word)."""
        words = [word] if word is not None else list(self._data)
        total = 0
        for w in words:
            for by_pattern in self._data.get(w, _EMPTY_DICT).values():
                for entries in by_pattern.values():
                    total += len(entries)
        return total

    def iter_entries(self) -> Iterable[Tuple[str, PatternId, PathEntry]]:
        for word, by_root in self._data.items():
            for by_pattern in by_root.values():
                for pid, entries in by_pattern.items():
                    for entry in entries:
                        yield word, pid, entry
