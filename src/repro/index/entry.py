"""The path entry: the materialized view of one stored path posting.

One entry materializes one root-to-keyword path (Section 3): the node chain
from the root, the attribute ids of its edges, whether the keyword matched
the final edge rather than the final node, and the precomputed score terms
(PageRank of the matched node and keyword similarity; the path size is the
length of the node chain).

Since the columnar-store refactor, entries are *flyweights*: the physical
path columns live once in :class:`~repro.index.store.PostingStore` and a
``PathEntry`` is reconstructed lazily when an enumeration loop actually
needs the node chain.  Being a ``NamedTuple``, equality and hashing are by
value, so reconstructed entries behave exactly like the originals in sets,
dict keys, and comparisons.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Sequence, Tuple

from repro.core.subtree import MatchPath, ValidSubtree
from repro.core.types import AttrId, NodeId
from repro.scoring.components import PathComponents


class PathEntry(NamedTuple):
    """A materialized path posting.

    ``nodes`` includes, for edge matches, the matched edge's target as its
    last element (the unified representation of
    :class:`repro.core.subtree.MatchPath`).
    """

    nodes: Tuple[NodeId, ...]
    attrs: Tuple[AttrId, ...]
    matched_on_edge: bool
    pr: float
    sim: float

    @property
    def root(self) -> NodeId:
        return self.nodes[0]

    @property
    def size(self) -> int:
        """|T(w)| — number of nodes on the path."""
        return len(self.nodes)

    def physical_key(
        self,
    ) -> Tuple[Tuple[NodeId, ...], Tuple[AttrId, ...], bool]:
        """The path-interning identity: everything except the score terms.

        Two postings with equal physical keys share one stored path in the
        columnar store (they may still carry different ``sim`` terms for
        different keywords).
        """
        return (self.nodes, self.attrs, self.matched_on_edge)

    def components(self) -> PathComponents:
        return PathComponents(size=len(self.nodes), pr=self.pr, sim=self.sim)

    def to_match_path(self) -> MatchPath:
        return MatchPath(
            nodes=self.nodes,
            attrs=self.attrs,
            matched_on_edge=self.matched_on_edge,
        )


def entries_form_tree(entries: Sequence[PathEntry]) -> bool:
    """Fast tree-validity check for a root-joined entry combination.

    Equivalent to :func:`repro.core.subtree.combine_paths` returning
    non-None, but avoids allocating :class:`MatchPath`/:class:`ValidSubtree`
    objects in the enumeration hot loop: a combination is a tree iff no
    node acquires two distinct parent edges and no edge re-enters the root.
    """
    root = entries[0].nodes[0]
    parent: Dict[NodeId, Tuple[NodeId, AttrId]] = {}
    for entry in entries:
        if entry.nodes[0] != root:
            return False
        nodes = entry.nodes
        attrs = entry.attrs
        for i, attr in enumerate(attrs):
            child = nodes[i + 1]
            if child == root:
                return False
            edge = (nodes[i], attr)
            existing = parent.get(child)
            if existing is None:
                parent[child] = edge
            elif existing != edge:
                return False
    return True


def subtree_from_entries(
    entries: Sequence[PathEntry],
) -> Optional[ValidSubtree]:
    """Materialize a :class:`ValidSubtree` from a valid entry combination.

    Returns ``None`` when the combination is not a tree (mirrors
    :func:`entries_form_tree`).
    """
    if not entries or not entries_form_tree(entries):
        return None
    return ValidSubtree(tuple(entry.to_match_path() for entry in entries))


def combination_score_terms(
    entries: Sequence[PathEntry],
) -> Tuple[int, float, float]:
    """Summed (size, pr, sim) across a subtree's entries (Equations 4-6)."""
    size = 0
    pr = 0.0
    sim = 0.0
    for entry in entries:
        size += len(entry.nodes)
        pr += entry.pr
        sim += entry.sim
    return size, pr, sim
