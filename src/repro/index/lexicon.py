"""Keyword match tables for a knowledge graph.

A keyword can occur in three places (Section 2.2.1): the text description
of a node, the text of a node's *type*, or the text of an attribute type.
The :class:`GraphLexicon` precomputes, for every node and every attribute
type, the list of ``(word, sim)`` pairs it matches — where ``sim`` is the
Jaccard similarity of Equation 6 — and the inverted maps used by the
baseline's backward search.

Synonyms (Section 3) are folded in at this level: each surface token is
filed under itself *and* its canonical synonym, so a query for any group
member retrieves the same entries.  Similarities are always computed
against the original text's token set, never the synonym-expanded one.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.types import AttrId, NodeId, TypeId
from repro.kg.graph import KnowledgeGraph
from repro.kg.synonyms import EMPTY_SYNONYMS, SynonymTable
from repro.kg.text import DEFAULT_NORMALIZER, TextNormalizer

WordSims = List[Tuple[str, float]]


class GraphLexicon:
    """Per-node and per-attribute keyword match tables.

    Parameters
    ----------
    graph:
        The knowledge graph to analyze.
    normalizer:
        Tokenization/stemming configuration; must be the same object (or an
        equal configuration) used later to parse queries.
    synonyms:
        Optional synonym table; defaults to no synonyms.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        normalizer: TextNormalizer = DEFAULT_NORMALIZER,
        synonyms: Optional[SynonymTable] = None,
    ) -> None:
        self.graph = graph
        self.normalizer = normalizer
        self.synonyms = synonyms if synonyms is not None else EMPTY_SYNONYMS

        self._type_tokens: List[FrozenSet[str]] = [
            normalizer.token_set(graph.type_text(tid))
            for tid in graph.type_ids()
        ]
        self._attr_tokens: List[FrozenSet[str]] = [
            normalizer.token_set(graph.attr_text(aid))
            for aid in graph.attr_ids()
        ]
        self._node_tokens: List[FrozenSet[str]] = [
            normalizer.token_set(graph.node_text(v)) for v in graph.nodes()
        ]

        # Per-node (word, sim) lists, combining node-text and node-type
        # matches; when a word occurs in both, the better similarity wins.
        self._node_word_sims: List[WordSims] = []
        for v in graph.nodes():
            best: Dict[str, float] = {}
            text_tokens = self._node_tokens[v]
            for token in text_tokens:
                sim = 1.0 / len(text_tokens)
                for key in self.synonyms.expansions(token):
                    if sim > best.get(key, 0.0):
                        best[key] = sim
            type_tokens = self._type_tokens[graph.node_type(v)]
            for token in type_tokens:
                sim = 1.0 / len(type_tokens)
                for key in self.synonyms.expansions(token):
                    if sim > best.get(key, 0.0):
                        best[key] = sim
            self._node_word_sims.append(sorted(best.items()))

        self._attr_word_sims: List[WordSims] = []
        for aid in graph.attr_ids():
            tokens = self._attr_tokens[aid]
            best = {}
            for token in tokens:
                sim = 1.0 / len(tokens)
                for key in self.synonyms.expansions(token):
                    if sim > best.get(key, 0.0):
                        best[key] = sim
            self._attr_word_sims.append(sorted(best.items()))

        # Inverted maps (word -> matches) for the baseline's backward search.
        self._nodes_with_word: Dict[str, Dict[NodeId, float]] = {}
        for v in graph.nodes():
            for word, sim in self._node_word_sims[v]:
                self._nodes_with_word.setdefault(word, {})[v] = sim
        self._attrs_with_word: Dict[str, Dict[AttrId, float]] = {}
        for aid in graph.attr_ids():
            for word, sim in self._attr_word_sims[aid]:
                self._attrs_with_word.setdefault(word, {})[aid] = sim

    # ----------------------------------------------------------- mutation

    def register_node(self, node: NodeId) -> WordSims:
        """Extend the tables for a node added after construction.

        ``node`` must be the next unseen node id (appends only); the node's
        type must already be registered (see :meth:`register_type`).
        Returns the new node's ``(word, sim)`` list.
        """
        graph = self.graph
        if node != len(self._node_tokens):
            raise ValueError(
                f"nodes must be registered in id order; expected "
                f"{len(self._node_tokens)}, got {node}"
            )
        while len(self._type_tokens) < graph.num_types:
            tid = len(self._type_tokens)
            self._type_tokens.append(
                self.normalizer.token_set(graph.type_text(tid))
            )
        text_tokens = self.normalizer.token_set(graph.node_text(node))
        self._node_tokens.append(text_tokens)
        best: Dict[str, float] = {}
        for token in text_tokens:
            sim = 1.0 / len(text_tokens)
            for key in self.synonyms.expansions(token):
                if sim > best.get(key, 0.0):
                    best[key] = sim
        type_tokens = self._type_tokens[graph.node_type(node)]
        for token in type_tokens:
            sim = 1.0 / len(type_tokens)
            for key in self.synonyms.expansions(token):
                if sim > best.get(key, 0.0):
                    best[key] = sim
        word_sims = sorted(best.items())
        self._node_word_sims.append(word_sims)
        for word, sim in word_sims:
            self._nodes_with_word.setdefault(word, {})[node] = sim
        return word_sims

    def register_attrs(self) -> None:
        """Extend the tables for attribute types interned after construction."""
        graph = self.graph
        while len(self._attr_tokens) < graph.num_attrs:
            aid = len(self._attr_tokens)
            tokens = self.normalizer.token_set(graph.attr_text(aid))
            self._attr_tokens.append(tokens)
            best: Dict[str, float] = {}
            for token in tokens:
                sim = 1.0 / len(tokens)
                for key in self.synonyms.expansions(token):
                    if sim > best.get(key, 0.0):
                        best[key] = sim
            word_sims = sorted(best.items())
            self._attr_word_sims.append(word_sims)
            for word, sim in word_sims:
                self._attrs_with_word.setdefault(word, {})[aid] = sim

    # ------------------------------------------------------------- per item

    def node_matches(self, node: NodeId) -> WordSims:
        """``(word, sim)`` pairs the node matches (text + type)."""
        return self._node_word_sims[node]

    def attr_matches(self, attr: AttrId) -> WordSims:
        """``(word, sim)`` pairs the attribute type matches."""
        return self._attr_word_sims[attr]

    def node_tokens(self, node: NodeId) -> FrozenSet[str]:
        return self._node_tokens[node]

    def type_tokens(self, tid: TypeId) -> FrozenSet[str]:
        return self._type_tokens[tid]

    def attr_tokens(self, aid: AttrId) -> FrozenSet[str]:
        return self._attr_tokens[aid]

    # ------------------------------------------------------------- inverted

    def nodes_with_word(self, word: str) -> Dict[NodeId, float]:
        """Node id -> sim for all nodes matching ``word``."""
        return self._nodes_with_word.get(word, {})

    def attrs_with_word(self, word: str) -> Dict[AttrId, float]:
        """Attribute id -> sim for all attribute types matching ``word``."""
        return self._attrs_with_word.get(word, {})

    def node_sim(self, node: NodeId, word: str) -> float:
        """Similarity of ``word`` at ``node`` (0.0 when not matching)."""
        return self._nodes_with_word.get(word, {}).get(node, 0.0)

    def attr_sim(self, attr: AttrId, word: str) -> float:
        return self._attrs_with_word.get(word, {}).get(attr, 0.0)

    def vocabulary(self) -> Set[str]:
        """All index keys (normalized words plus synonym canonicals)."""
        return set(self._nodes_with_word) | set(self._attrs_with_word)

    def word_frequency(self, word: str) -> int:
        """Number of node + attribute matches for a word (selectivity)."""
        return len(self._nodes_with_word.get(word, {})) + len(
            self._attrs_with_word.get(word, {})
        )
