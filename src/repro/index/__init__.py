"""Path-pattern indexes (Section 3 of the paper)."""

from repro.index.builder import (
    DEFAULT_HEIGHT,
    PathIndexes,
    ResolvedQuery,
    build_indexes,
)
from repro.index.incremental import add_entity, add_relationship
from repro.index.entry import (
    PathEntry,
    combination_score_terms,
    entries_form_tree,
    subtree_from_entries,
)
from repro.index.interner import PatternInterner
from repro.index.lexicon import GraphLexicon
from repro.index.path_enum import (
    count_paths,
    interleaved_labels,
    iter_all_paths,
    iter_paths_from,
    iter_reverse_paths_to,
)
from repro.index.pattern_first import PatternFirstIndex
from repro.index.root_first import RootFirstIndex
from repro.index.serialize import load_indexes, save_indexes
from repro.index.stats import IndexStatistics, index_statistics
from repro.index.store import PostingList, PostingStore

__all__ = [
    "DEFAULT_HEIGHT",
    "GraphLexicon",
    "ResolvedQuery",
    "add_entity",
    "add_relationship",
    "IndexStatistics",
    "PathEntry",
    "PathIndexes",
    "PatternFirstIndex",
    "PatternInterner",
    "PostingList",
    "PostingStore",
    "RootFirstIndex",
    "build_indexes",
    "combination_score_terms",
    "count_paths",
    "entries_form_tree",
    "index_statistics",
    "interleaved_labels",
    "iter_all_paths",
    "iter_paths_from",
    "iter_reverse_paths_to",
    "load_indexes",
    "save_indexes",
    "subtree_from_entries",
]
