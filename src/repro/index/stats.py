"""Index size accounting (Figure 6 reports construction time and size).

``Theorem 2``: both indexes need space ``O(sum_p |p| * |text(p)|)``.  The
:func:`index_statistics` report includes that theoretical quantity (total
stored path nodes) alongside the columnar store's actual byte footprint
and its deduplication ratio (postings per stored physical path), so the
Figure 6 reproduction can report both a machine-independent size metric
and an engineering one.

All quantities are read straight from the
:class:`~repro.index.store.PostingStore` columns — no
:class:`~repro.index.entry.PathEntry` is materialized here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.index.builder import PathIndexes


@dataclass
class IndexStatistics:
    """Size and shape of a built :class:`PathIndexes`."""

    d: int
    num_words: int
    num_patterns: int
    num_entries: int
    total_path_nodes: int
    estimated_bytes: int
    build_seconds: float
    max_postings_per_word: int
    num_unique_paths: int = 0
    dedup_ratio: float = 1.0

    def format(self) -> str:
        return (
            f"d={self.d}: {self.num_entries} entries, "
            f"{self.num_unique_paths} unique paths "
            f"({self.dedup_ratio:.2f}x dedup), "
            f"{self.num_words} words, {self.num_patterns} patterns, "
            f"sum|p|={self.total_path_nodes}, "
            f"~{self.estimated_bytes / 1e6:.1f} MB, "
            f"built in {self.build_seconds:.2f}s"
        )


def index_statistics(indexes: "PathIndexes") -> IndexStatistics:
    """Compute :class:`IndexStatistics` for built indexes — store-native."""
    store = indexes.store
    per_word: Dict[str, int] = {
        word: store.num_postings(word) for word in store.words()
    }
    return IndexStatistics(
        d=indexes.d,
        num_words=len(per_word),
        num_patterns=indexes.num_patterns,
        num_entries=store.num_postings(),
        total_path_nodes=store.total_path_nodes(),
        estimated_bytes=store.nbytes(),
        build_seconds=indexes.build_seconds,
        max_postings_per_word=max(per_word.values(), default=0),
        num_unique_paths=store.num_paths,
        dedup_ratio=store.dedup_ratio(),
    )
