"""Index size accounting (Figure 6 reports construction time and size).

``Theorem 2``: both indexes need space ``O(sum_p |p| * |text(p)|)``.  The
:func:`index_statistics` report includes that theoretical quantity (total
stored path nodes) alongside an estimated in-memory byte count, so the
Figure 6 reproduction can report both a machine-independent size metric and
an engineering one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.index.builder import PathIndexes

# Rough CPython 64-bit costs used by the byte estimate: a PathEntry
# (NamedTuple) header, two inner tuples with their headers, one float boxed
# per entry on average, and two dict slots (pattern-first + root-first).
_ENTRY_FIXED_BYTES = 56 + 2 * 56 + 2 * 24 + 2 * 80
_PER_NODE_BYTES = 2 * 8  # one pointer in nodes, amortized one in attrs


@dataclass
class IndexStatistics:
    """Size and shape of a built :class:`PathIndexes`."""

    d: int
    num_words: int
    num_patterns: int
    num_entries: int
    total_path_nodes: int
    estimated_bytes: int
    build_seconds: float
    max_postings_per_word: int

    def format(self) -> str:
        return (
            f"d={self.d}: {self.num_entries} entries, "
            f"{self.num_words} words, {self.num_patterns} patterns, "
            f"sum|p|={self.total_path_nodes}, "
            f"~{self.estimated_bytes / 1e6:.1f} MB, "
            f"built in {self.build_seconds:.2f}s"
        )


def index_statistics(indexes: "PathIndexes") -> IndexStatistics:
    """Compute :class:`IndexStatistics` for built indexes."""
    num_entries = 0
    total_path_nodes = 0
    per_word: Dict[str, int] = {}
    for word, _pid, entry in indexes.root_first.iter_entries():
        num_entries += 1
        total_path_nodes += len(entry.nodes)
        per_word[word] = per_word.get(word, 0) + 1
    estimated = (
        num_entries * _ENTRY_FIXED_BYTES + total_path_nodes * _PER_NODE_BYTES
    )
    return IndexStatistics(
        d=indexes.d,
        num_words=len(per_word),
        num_patterns=indexes.num_patterns,
        num_entries=num_entries,
        total_path_nodes=total_path_nodes,
        estimated_bytes=estimated,
        build_seconds=indexes.build_seconds,
        max_postings_per_word=max(per_word.values(), default=0),
    )
