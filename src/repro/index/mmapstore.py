"""Memory-mapped (FORMAT_VERSION 3) backing for the columnar store.

The v2 envelope deserializes every posting column into Python ``array``
objects before the first query — cold start is O(index), and each forked
shard worker pays it again in copies.  The v3 format
(:mod:`repro.index.serialize`) lays the same columns out as flat
fixed-width arrays in one file with an offset table; this module opens
that file via :mod:`mmap` and exposes the columns as ``memoryview``
casts, so

* **cold start is O(1)** — opening an index maps pages, it does not read
  them; nothing is deserialized until a query touches it;
* **shard pages are copy-free** — a forked worker inherits the parent's
  mapping, so K shard stores share one physical copy of the file cache;
* **the index may exceed RAM** — untouched columns never become resident.

:class:`MappedPostingStore` subclasses :class:`PostingStore` in "backed"
mode: the path and posting columns are mapped views, and the finalized
view dicts (pattern-first, root-first, per-root counts) plus the
aggregate bound columns are *lazy per-word dicts* rebuilt from persisted
leaf extents — built exactly like the live store's version-guarded
caches, word by word on first access, so ``bounds.py``, ``context.py``,
and all four algorithms run unchanged and bit-identical.

Mutation is **O(delta)** via the LSM-style overlay in
:mod:`repro.index.delta`: ``append_path`` extends heap tails chained
onto the mapped path columns (:class:`~repro.index.delta.ChainColumn`),
``add_posting`` heap-copies just the touched word's posting columns
(per-word copy-on-write) and appends, and ``finalize`` re-merges only
the dirty words — untouched words keep serving zero-copy mapped views.
The mutator bumps ``store.version`` exactly as before, so the snapshot
protocol, version-guarded caches, and pool-rebuild triggers are
unchanged.  :func:`repro.index.serialize.compact_indexes` folds the
overlay into a fresh v3 file and atomically re-maps the store onto it
(:meth:`MappedPostingStore.remap`); the old generation's pages stay
referenced by pinned snapshots until they drop.  Wholesale thaw is an
explicit opt-in escape hatch (:meth:`MappedPostingStore.thaw`) — no
mutation triggers it.
"""

from __future__ import annotations

import mmap
import os
import pickle
import struct
from array import array
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.errors import PathIndexError
from repro.core.pattern import PathPattern
from repro.core.types import NodeId, PatternId
from repro.index.delta import ChainColumn, DeltaOverlay, build_word_views
from repro.index.interner import PatternInterner
from repro.index.store import (
    FLAG_TYPECODE,
    FLOAT_TYPECODE,
    ID_TYPECODE,
    OFFSET_TYPECODE,
    PostingList,
    PostingStore,
)
from repro.kg.graph import KnowledgeGraph

#: First bytes of every v3 index file (8 bytes, 8-byte aligned).
V3_MAGIC = b"RPIXv3\x00\x00"

_ALIGN = 8


def align8(offset: int) -> int:
    """Round ``offset`` up to the section alignment (8 bytes)."""
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


class MappedIndexReader:
    """One open v3 index file: parsed header + mapped section views.

    The mapping is opened read-only and shared (``ACCESS_READ``), so a
    forked worker inherits it without copying; it stays alive as long as
    any store/view/leaf built from it holds a reference to this reader.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        try:
            handle = open(self.path, "rb")
        except OSError as exc:
            raise PathIndexError(
                f"cannot open index file {str(self.path)!r}: {exc}"
            ) from exc
        with handle:
            magic = handle.read(len(V3_MAGIC))
            if magic != V3_MAGIC:
                raise PathIndexError(
                    f"{str(self.path)!r} is not a v3 index file"
                )
            raw_len = handle.read(8)
            if len(raw_len) != 8:
                raise PathIndexError(
                    f"{str(self.path)!r} is truncated (no v3 header)"
                )
            (header_len,) = struct.unpack("<Q", raw_len)
            handle.seek(0, os.SEEK_END)
            file_bytes = handle.tell()
            if len(V3_MAGIC) + 8 + header_len > file_bytes:
                raise PathIndexError(
                    f"{str(self.path)!r} is truncated (v3 header claims "
                    f"{header_len} bytes, file has {file_bytes})"
                )
            handle.seek(len(V3_MAGIC) + 8)
            header_bytes = handle.read(header_len)
            if len(header_bytes) != header_len:
                raise PathIndexError(
                    f"{str(self.path)!r} is truncated (short v3 header)"
                )
            try:
                header = pickle.loads(header_bytes)
            except Exception as exc:
                raise PathIndexError(
                    f"cannot read v3 header of {str(self.path)!r}: {exc}"
                ) from exc
            if not isinstance(header, dict) or "sections" not in header:
                raise PathIndexError(
                    f"{str(self.path)!r} has a malformed v3 header"
                )
            self.file_bytes = file_bytes
            # The mapping survives the fd close (POSIX semantics).
            self._mmap = mmap.mmap(
                handle.fileno(), 0, access=mmap.ACCESS_READ
            )
        self.header = header
        self.sections: Dict[str, Tuple[int, int]] = header["sections"]
        self.data_start = align8(len(V3_MAGIC) + 8 + header_len)
        end = max(
            (offset + nbytes for offset, nbytes in self.sections.values()),
            default=0,
        )
        if self.data_start + end > self.file_bytes:
            raise PathIndexError(
                f"{str(self.path)!r} is truncated: sections need "
                f"{self.data_start + end} bytes, file has {self.file_bytes}"
            )
        self._buffer = memoryview(self._mmap)

    def view(self, name: str, typecode: str) -> memoryview:
        """Section ``name`` as a typed ``memoryview`` over mapped pages."""
        offset, nbytes = self.sections[name]
        start = self.data_start + offset
        return self._buffer[start:start + nbytes].cast(typecode)

    def blob(self, name: str) -> bytes:
        """Section ``name`` as raw bytes (copied out of the mapping)."""
        offset, nbytes = self.sections[name]
        start = self.data_start + offset
        return self._buffer[start:start + nbytes].tobytes()


class _LazyWordDict(dict):
    """A word-keyed dict whose values build lazily on first access.

    The per-word value (one word's finalized view slice or bound map) is
    produced by ``build(word)`` and cached in the dict itself, so the
    second access is a plain dict hit.  Iteration, ``len``, membership,
    and the bulk accessors answer from the full word table — in index
    word order, matching a fully-built store — regardless of which words
    have materialized; ``items()``/``values()`` force every word (they
    are the full-scan accessors: ``groups()``, ``iter_entries``).
    """

    __slots__ = ("_words", "_build")

    def __init__(
        self, words: Dict[str, int], build: Callable[[str], object]
    ) -> None:
        super().__init__()
        self._words = words
        self._build = build

    def __missing__(self, word):
        if word not in self._words:
            raise KeyError(word)
        value = self._build(word)
        dict.__setitem__(self, word, value)
        return value

    def get(self, word, default=None):
        if dict.__contains__(self, word):
            return dict.__getitem__(self, word)
        if word in self._words:
            return self[word]
        return default

    def __contains__(self, word) -> bool:
        return word in self._words

    def __iter__(self):
        return iter(self._words)

    def __len__(self) -> int:
        return len(self._words)

    def __bool__(self) -> bool:
        return bool(self._words)

    def keys(self):
        return self._words.keys()

    def items(self):
        return [(word, self[word]) for word in self._words]

    def values(self):
        return [self[word] for word in self._words]

    def materialize(self) -> None:
        """Force every word's value (used by the copy-on-write thaw)."""
        for word in self._words:
            self[word]


class _MappedBaseViews:
    """One mapped *generation*: per-word base state + lazy view builder.

    Everything needed to rebuild a word's finalized views from the
    persisted leaf extents lives here — the base posting slices, the
    flat leaf columns, the word -> slot table, and the per-word view
    cache.  The store holds the current instance in ``_base`` and swaps
    in a fresh one on :meth:`MappedPostingStore.remap`; the lazy view
    dicts built for an older generation close over *their* instance, so
    a word that goes dirty (or a store that re-maps) after a snapshot
    pinned those dicts still lazily resolves to the old generation's
    correct content.
    """

    __slots__ = (
        "posting_ids",
        "posting_sims",
        "num_postings",
        "leaf_pids",
        "leaf_roots",
        "leaf_stops",
        "leaf_sizes",
        "leaf_floats",
        "leaf_starts",
        "word_slot",
        "cache",
    )

    def __init__(
        self, reader: MappedIndexReader, meta: Dict[str, object]
    ) -> None:
        prefix = meta["prefix"]
        view = reader.view
        words: List[str] = meta["words"]
        ids_col = view(prefix + "posting_ids", ID_TYPECODE)
        sims_col = view(prefix + "posting_sims", FLOAT_TYPECODE)
        posting_ids: Dict[str, memoryview] = {}
        posting_sims: Dict[str, memoryview] = {}
        offset = 0
        for word, count in zip(words, meta["posting_counts"]):
            posting_ids[word] = ids_col[offset:offset + count]
            posting_sims[word] = sims_col[offset:offset + count]
            offset += count
        self.posting_ids = posting_ids
        self.posting_sims = posting_sims
        self.num_postings = offset
        self.leaf_pids = view(prefix + "leaf_pids", ID_TYPECODE)
        self.leaf_roots = view(prefix + "leaf_roots", ID_TYPECODE)
        self.leaf_stops = view(prefix + "leaf_stops", OFFSET_TYPECODE)
        self.leaf_sizes = view(prefix + "leaf_sizes", OFFSET_TYPECODE)
        self.leaf_floats = view(prefix + "leaf_floats", FLOAT_TYPECODE)
        starts = [0]
        for count in meta["leaf_counts"]:
            starts.append(starts[-1] + count)
        self.leaf_starts = starts
        self.word_slot = {word: i for i, word in enumerate(words)}
        self.cache: Dict[str, tuple] = {}

    def views(self, store: "MappedPostingStore", word: str) -> tuple:
        """One word's finalized views, rebuilt from persisted extents.

        Returns ``(pattern_leaves, root_leaves, root_counts, root_bounds,
        pattern_bounds)`` — exactly what :meth:`PostingStore.finalize`
        and :meth:`PostingStore.bound_columns` produce for this word.
        Leaves are recovered in on-disk order, which is the finalized
        position order (pattern id, then root, ascending), so every dict
        insertion order — and with it every downstream iteration, float
        aggregation, and tie-break — matches the in-memory build.
        ``store`` is only threaded into the leaves for entry
        materialization (path ids are stable across generations, so the
        live store serves even old-generation leaves exactly).
        """
        cached = self.cache.get(word)
        if cached is not None:
            return cached
        MappedPostingStore.words_materialized += 1
        slot = self.word_slot[word]
        lo = self.leaf_starts[slot]
        hi = self.leaf_starts[slot + 1]
        ids = self.posting_ids[word]
        sims = self.posting_sims[word]
        leaf_pids = self.leaf_pids
        leaf_roots = self.leaf_roots
        leaf_stops = self.leaf_stops
        leaf_sizes = self.leaf_sizes
        leaf_floats = self.leaf_floats
        word_pf: Dict[PatternId, Dict[NodeId, PostingList]] = {}
        rf_leaves: List[Tuple[NodeId, PatternId, PostingList]] = []
        word_counts: Dict[NodeId, int] = {}
        word_root: Dict[NodeId, tuple] = {}
        word_pat: Dict[PatternId, Dict[NodeId, tuple]] = {}
        start = 0
        for j in range(lo, hi):
            stop = leaf_stops[j]
            pid = leaf_pids[j]
            root = leaf_roots[j]
            leaf = PostingList(store, ids, sims, start, stop)
            word_pf.setdefault(pid, {})[root] = leaf
            rf_leaves.append((root, pid, leaf))
            word_counts[root] = word_counts.get(root, 0) + (stop - start)
            s = 2 * j
            f = 4 * j
            bound = (
                stop - start,
                leaf_sizes[s],
                leaf_sizes[s + 1],
                leaf_floats[f],
                leaf_floats[f + 1],
                leaf_floats[f + 2],
                leaf_floats[f + 3],
            )
            word_pat.setdefault(pid, {})[root] = bound
            merged = word_root.get(root)
            if merged is None:
                word_root[root] = bound
            else:
                word_root[root] = (
                    merged[0] + bound[0],
                    min(merged[1], bound[1]),
                    max(merged[2], bound[2]),
                    min(merged[3], bound[3]),
                    max(merged[4], bound[4]),
                    min(merged[5], bound[5]),
                    max(merged[6], bound[6]),
                )
            start = stop
        word_rf: Dict[NodeId, Dict[PatternId, PostingList]] = {}
        rf_leaves.sort(key=lambda leaf: (leaf[0], leaf[1]))
        for root, pid, leaf in rf_leaves:
            word_rf.setdefault(root, {})[pid] = leaf
        views = (word_pf, word_rf, word_counts, word_root, word_pat)
        self.cache[word] = views
        return views


class MappedPostingStore(PostingStore):
    """A :class:`PostingStore` whose columns are views over mapped pages.

    Construction is O(words), not O(postings): columns become
    ``memoryview`` casts, the per-word posting dicts slice them (real
    dicts — :class:`~repro.index.store.StoreSnapshot` shallow-copies
    them), and the finalized view dicts plus bound columns are
    :class:`_LazyWordDict` instances rebuilding one word at a time from
    the persisted leaf extents — no posting is deserialized until a
    query touches its word.  All read accessors are inherited unchanged;
    mutators route into the delta overlay (see module docstring) and
    stay O(delta).
    """

    #: Process-wide count of backed stores whose columns were copied to
    #: the heap by the *explicit* :meth:`thaw` escape hatch.  Mutation
    #: never thaws; the serving benches assert this stays flat across
    #: read **and** update phases.
    backed_stores_thawed = 0
    #: Process-wide count of per-word view materializations across all
    #: backed stores — the unit of lazy deserialization work.
    words_materialized = 0

    def __init__(
        self,
        interner: PatternInterner,
        reader: MappedIndexReader,
        meta: Dict[str, object],
        generation: int = 0,
    ) -> None:
        super().__init__(interner)
        #: Compaction lineage: how many times this index content has been
        #: folded (base ⊕ overlay) into a fresh file.  0 for a cold load
        #: of a freshly built index; bumped by :meth:`remap`.
        self.generation = generation
        self._init_mapped_state(reader, meta)
        # Mirror a v2 load: from_payload bumps the version once per word,
        # and the load-time finalize pins _finalized_version to it —
        # every version-guarded cache key is reproduced exactly.
        self.version = len(self._base.word_slot)
        self._finalized_version = self.version
        self._install_generation(None)

    def _init_mapped_state(
        self, reader: MappedIndexReader, meta: Dict[str, object]
    ) -> None:
        """Point every column at ``reader``'s pages (init and re-map)."""
        self._reader = reader
        prefix = meta["prefix"]
        view = reader.view
        self._node_offsets = view(prefix + "node_offsets", OFFSET_TYPECODE)
        self._nodes = view(prefix + "nodes", ID_TYPECODE)
        self._attrs = view(prefix + "attrs", ID_TYPECODE)
        self._pids = view(prefix + "pids", ID_TYPECODE)
        self._roots = view(prefix + "roots", ID_TYPECODE)
        self._moe = view(prefix + "moe", FLAG_TYPECODE)
        self._prs = view(prefix + "prs", FLOAT_TYPECODE)
        base = _MappedBaseViews(reader, meta)
        self._base = base
        # Live dicts are *copies* of the base dicts: per-word
        # copy-on-write replaces live values while the base (and any
        # snapshot's shallow copy) keeps the mapped slices.
        self._posting_ids = dict(base.posting_ids)
        self._posting_sims = dict(base.posting_sims)
        self._base_num_postings = base.num_postings
        self._word_slot = base.word_slot
        self._vocab = base.word_slot
        self._path_ids = None
        self._overlay: Optional[DeltaOverlay] = None
        self._backed = True
        self._query_cache = None

    def _install_generation(self, gen_views: Optional[Dict[str, tuple]]) -> None:
        """(Re)build the lazy finalized-view dicts for the current version.

        ``gen_views`` is a pinned ``word -> 5-tuple`` dict of merged
        overlay views (``None`` for a pure mapped generation).  The
        build closures capture this generation's ``_MappedBaseViews``
        and the pinned ``gen_views`` locally: snapshots keep the dicts
        by reference, and a later :meth:`remap` swaps ``self._base``
        without disturbing what older generations resolve to.
        """
        base = self._base
        vocab = self._vocab
        store = self

        if gen_views:
            def make(i: int) -> Callable[[str], object]:
                def build(word: str, _i: int = i):
                    views = gen_views.get(word)
                    if views is None:
                        views = base.views(store, word)
                    return views[_i]
                return build
        else:
            def make(i: int) -> Callable[[str], object]:
                def build(word: str, _i: int = i):
                    return base.views(store, word)[_i]
                return build

        self._pattern_view = _LazyWordDict(vocab, make(0))
        self._root_view = _LazyWordDict(vocab, make(1))
        self._root_counts = _LazyWordDict(vocab, make(2))
        self._lazy_bounds = (
            _LazyWordDict(vocab, make(3)),
            _LazyWordDict(vocab, make(4)),
        )
        # Pre-seed the bound slot: bound_columns() checks the
        # (version, cache) tag *before* building anything, and
        # StoreSnapshot adopts a fresh slot by reference, so both the
        # live store and every snapshot serve the lazy dicts with zero
        # changes to either class.
        self._bound_cache = (self.version, self._lazy_bounds)

    def by_root_type_view(
        self, interner: PatternInterner
    ) -> Optional["_LazyWordDict"]:
        """Lazy ``word -> root_type -> [pid]`` grouping for the view layer.

        :meth:`~repro.index.pattern_first.PatternFirstIndex.finalize`
        derives this grouping eagerly over the whole vocabulary; in
        backed mode that would materialize every word at load.  Returns
        ``None`` once thawed — the view falls back to its eager build.
        """
        if not self._backed:
            return None
        pattern_view = self._pattern_view

        def build(word: str) -> Dict[int, List[PatternId]]:
            grouping: Dict[int, List[PatternId]] = {}
            for pid in pattern_view[word]:
                root_type = interner.pattern(pid).root_type
                grouping.setdefault(root_type, []).append(pid)
            return grouping

        # Key off the generation's own vocab (via the pinned pattern
        # view) — after a re-map or vocab growth, _word_slot may describe
        # a different generation than the view this grouping wraps.
        return _LazyWordDict(pattern_view._words, build)

    # ------------------------------------------------------- delta overlay

    def _ensure_overlay(self) -> DeltaOverlay:
        """The mutation ledger, created on first write since (re-)map.

        Creation also chains heap tails onto the seven mapped path
        columns: existing indices keep reading mapped pages, appends go
        to the tails, and the inherited ``append_path`` / accessors work
        unchanged on the chained columns.
        """
        overlay = self._overlay
        if overlay is None:
            overlay = self._overlay = DeltaOverlay(
                base_paths=self.num_paths,
                base_postings=self._base_num_postings,
            )
            self._node_offsets = ChainColumn(
                self._node_offsets, OFFSET_TYPECODE
            )
            self._nodes = ChainColumn(self._nodes, ID_TYPECODE)
            self._attrs = ChainColumn(self._attrs, ID_TYPECODE)
            self._pids = ChainColumn(self._pids, ID_TYPECODE)
            self._roots = ChainColumn(self._roots, ID_TYPECODE)
            self._moe = ChainColumn(self._moe, FLAG_TYPECODE)
            self._prs = ChainColumn(self._prs, FLOAT_TYPECODE)
        return overlay

    def append_path(self, nodes, attrs, matched_on_edge, pid, pr) -> int:
        if not self._backed:
            return PostingStore.append_path(
                self, nodes, attrs, matched_on_edge, pid, pr
            )
        overlay = self._ensure_overlay()
        path_id = PostingStore.append_path(
            self, nodes, attrs, matched_on_edge, pid, pr
        )
        overlay.paths += 1
        overlay.path_index[
            (tuple(nodes), tuple(attrs), bool(matched_on_edge))
        ] = path_id
        return path_id

    def add_path(self, nodes, attrs, matched_on_edge, pid, pr) -> int:
        if not self._backed:
            return PostingStore.add_path(
                self, nodes, attrs, matched_on_edge, pid, pr
            )
        # Intern against the overlay only — the inherited _path_index()
        # would box every base path (O(index) heap, exactly what the
        # overlay exists to avoid).  See DeltaOverlay.path_index for why
        # this is sufficient for the incremental-maintenance callers.
        key = (tuple(nodes), tuple(attrs), bool(matched_on_edge))
        existing = self._ensure_overlay().path_index.get(key)
        if existing is not None:
            return existing
        return self.append_path(nodes, attrs, matched_on_edge, pid, pr)

    def add_posting(self, word, path_id, sim) -> None:
        if not self._backed:
            return PostingStore.add_posting(self, word, path_id, sim)
        overlay = self._ensure_overlay()
        if word not in overlay.dirty and word in self._posting_ids:
            # Per-word copy-on-write: one O(word) heap copy, then every
            # further append is O(1).  Pinned snapshots keep the old
            # slices through their shallow-copied posting dicts.
            ids = array(ID_TYPECODE)
            ids.frombytes(self._posting_ids[word].tobytes())
            sims = array(FLOAT_TYPECODE)
            sims.frombytes(self._posting_sims[word].tobytes())
            self._posting_ids[word] = ids
            self._posting_sims[word] = sims
        if word not in self._vocab:
            overlay.vocab_grew = True
        PostingStore.add_posting(self, word, path_id, sim)
        overlay.dirty.add(word)
        overlay.pending[word] = None
        overlay.postings += 1

    def finalize(self) -> None:
        """Re-merge the dirty words and refresh the lazy view dicts.

        O(delta): only words touched since the last finalize are
        re-sorted (:func:`~repro.index.delta.build_word_views`); clean
        words keep their mapped extents behind fresh lazy dicts.  The
        previous generation's dicts (pinned by snapshots) are left
        untouched — this *replaces* ``_pattern_view`` & friends exactly
        like the inherited eager finalize does.
        """
        if not self._backed:
            return PostingStore.finalize(self)
        if self._finalized_version == self.version:
            return
        overlay = self._overlay
        gen_views: Optional[Dict[str, tuple]] = None
        if overlay is not None:
            for word in overlay.pending:
                overlay.views[word] = build_word_views(self, word)
            overlay.pending.clear()
            if overlay.vocab_grew:
                # New words extend the vocabulary in insertion order —
                # the same order from_payload/_v3_bytes persist, so a
                # compacted file round-trips the vocab verbatim.  A new
                # dict (never mutated in place): older generations keep
                # iterating their own vocab.
                self._vocab = {
                    word: slot
                    for slot, word in enumerate(self._posting_ids)
                }
                overlay.vocab_grew = False
            gen_views = dict(overlay.views)
        self._install_generation(gen_views)
        self._finalized_version = self.version

    def bound_columns(self):
        if not self._backed:
            return PostingStore.bound_columns(self)
        slot = self._bound_cache
        if slot is not None and slot[0] == self.version:
            return slot[1]
        # Stale: re-merge pending words and re-seed the lazy dicts — the
        # inherited eager rebuild would force every word in the index.
        self.finalize()
        self._bound_cache = (self.version, self._lazy_bounds)
        return self._lazy_bounds

    def release_query_columns(self) -> None:
        self._query_cache = None
        if self._backed and self._finalized_version == self.version:
            # The lazy bound dicts are the backed store's "cold" state
            # already — re-seed the slot instead of forcing the next
            # pruning query through a full eager rebuild.
            self._bound_cache = (self.version, self._lazy_bounds)
        else:
            self._bound_cache = None

    # --------------------------------------------------- re-map & escape

    def remap(self, reader: MappedIndexReader, meta: Dict[str, object]) -> None:
        """Adopt a freshly compacted v3 file as the new base generation.

        The caller holds ``self.lock`` and guarantees the file holds
        exactly the live store's current finalized content (it was just
        written under the same lock — see
        :func:`repro.index.serialize.compact_indexes`).  The overlay is
        dropped (its content is in the new base), every column becomes a
        mapped view again, and the old generation's pages stay alive for
        as long as pinned snapshot views reference them.  Path ids are
        stable across generations (the compacted file preserves column
        order), so old-generation leaves materializing entries through
        the live store remain exact.

        The version advances monotonically — never reset to the new
        file's word count, which could collide with a historical tag and
        let a version-keyed cache serve a stale entry — so every
        version-guarded consumer (view finalize, resolution caches, the
        fork and shard pools) rebuilds from the re-mapped generation on
        next access.
        """
        if not self._backed:
            raise PathIndexError("cannot re-map a thawed store")
        old_version = self.version
        self._init_mapped_state(reader, meta)
        self.version = old_version + 1
        self._finalized_version = self.version
        self._install_generation(None)
        self.generation = reader.header.get(
            "generation", self.generation + 1
        )

    def thaw(self) -> None:
        """Explicit escape hatch: copy every column to the heap.

        Mutation does **not** need this — mutators land in the delta
        overlay at O(delta) cost.  Thawing turns the store into a plain
        heap :class:`PostingStore` at O(index) time and memory, for
        callers that intend to rewrite most of the index in place.

        Order matters: the lazy per-word views are materialized *first*,
        over the still-valid mapped generation — pinned snapshots hold
        those dicts by reference.  If mutations are pending, the
        materialized views describe the last finalized generation and
        ``_finalized_version < version`` already holds, so the next
        accessor runs the inherited wholesale finalize over the heap
        columns.  The mapping itself stays referenced so pre-thaw leaves
        keep reading valid pages.
        """
        if not self._backed:
            return
        for lazy in (
            self._pattern_view,
            self._root_view,
            self._root_counts,
            self._lazy_bounds[0],
            self._lazy_bounds[1],
        ):
            lazy.materialize()

        def heap(typecode: str, column) -> array:
            out = array(typecode)
            out.frombytes(column.tobytes())
            return out

        self._node_offsets = heap(OFFSET_TYPECODE, self._node_offsets)
        self._nodes = heap(ID_TYPECODE, self._nodes)
        self._attrs = heap(ID_TYPECODE, self._attrs)
        self._pids = heap(ID_TYPECODE, self._pids)
        self._roots = heap(ID_TYPECODE, self._roots)
        self._moe = heap(FLAG_TYPECODE, self._moe)
        self._prs = heap(FLOAT_TYPECODE, self._prs)
        self._posting_ids = {
            word: ids if isinstance(ids, array) else heap(ID_TYPECODE, ids)
            for word, ids in self._posting_ids.items()
        }
        self._posting_sims = {
            word: sims
            if isinstance(sims, array)
            else heap(FLOAT_TYPECODE, sims)
            for word, sims in self._posting_sims.items()
        }
        self._backed = False
        self._overlay = None
        self._query_cache = None
        self._bound_cache = None
        MappedPostingStore.backed_stores_thawed += 1

    # ------------------------------------------------------- introspection

    @property
    def overlay_words(self) -> int:
        """Words with overlay postings since the last (re-)map."""
        overlay = self._overlay
        return len(overlay.dirty) if overlay is not None else 0

    @property
    def overlay_postings(self) -> int:
        """Postings absorbed by the overlay since the last (re-)map."""
        overlay = self._overlay
        return overlay.postings if overlay is not None else 0

    @property
    def overlay_paths(self) -> int:
        """Paths appended to the column tails since the last (re-)map."""
        overlay = self._overlay
        return overlay.paths if overlay is not None else 0

    @property
    def base_postings(self) -> int:
        """Postings in the mapped base generation (compaction ratio
        denominator)."""
        return self._base_num_postings

    def __repr__(self) -> str:
        state = "backed" if self._backed else "thawed"
        overlay = self._overlay
        delta = (
            f", overlay {overlay.postings}p/{len(overlay.dirty)}w"
            if overlay is not None
            else ""
        )
        return (
            f"MappedPostingStore({state}, gen {self.generation}, "
            f"{len(self._vocab)} words, {self.num_paths} paths{delta})"
        )


class MappedPatternInterner(PatternInterner):
    """A :class:`PatternInterner` decoding patterns from mapped columns.

    ``pattern(pid)`` decodes one pattern on demand (memoized) — the only
    interner access on the query path.  Everything keyed by pattern
    *value* (``intern``, ``lookup``, ``in``) needs the full bijection
    and triggers a one-time full decode, as does ``to_payload``.
    """

    def __init__(
        self, offsets: memoryview, labels: memoryview, flags: memoryview
    ) -> None:
        super().__init__()
        self._mapped_offsets = offsets
        self._mapped_labels = labels
        self._mapped_flags = flags
        self._count = len(flags)
        self._cache: Dict[PatternId, PathPattern] = {}
        self._full = False

    def _decode(self, pid: PatternId) -> PathPattern:
        offsets = self._mapped_offsets
        chain = tuple(self._mapped_labels[offsets[pid]:offsets[pid + 1]])
        return PathPattern(chain, bool(self._mapped_flags[pid]))

    def _ensure_full(self) -> None:
        if self._full:
            return
        self._full = True
        for pid in range(self._count):
            pattern = self._cache.get(pid)
            if pattern is None:
                pattern = self._decode(pid)
            PatternInterner.intern_pattern(self, pattern)
        self._cache.clear()

    def pattern(self, pid: PatternId) -> PathPattern:
        if self._full:
            return PatternInterner.pattern(self, pid)
        cached = self._cache.get(pid)
        if cached is not None:
            return cached
        if not 0 <= pid < self._count:
            raise PathIndexError(f"unknown pattern id {pid}")
        pattern = self._cache[pid] = self._decode(pid)
        return pattern

    def intern(self, labels, ends_at_edge) -> PatternId:
        self._ensure_full()
        return PatternInterner.intern(self, labels, ends_at_edge)

    def intern_pattern(self, pattern: PathPattern) -> PatternId:
        self._ensure_full()
        return PatternInterner.intern_pattern(self, pattern)

    def lookup(self, pattern: PathPattern) -> PatternId:
        self._ensure_full()
        return PatternInterner.lookup(self, pattern)

    def __contains__(self, pattern: PathPattern) -> bool:
        self._ensure_full()
        return PatternInterner.__contains__(self, pattern)

    def __len__(self) -> int:
        return len(self._patterns) if self._full else self._count

    def to_payload(self) -> Dict[str, bytes]:
        self._ensure_full()
        return PatternInterner.to_payload(self)


class _LazyObjects:
    """Memoized unpickler for the v3 file's small object-graph section.

    Holds the pickled graph/lexicon blob closed over by
    :class:`LazyGraph` and :class:`_LazyLexicon`; one ``get()`` decodes
    it for both (they share node/edge columns through the pickle memo).
    """

    __slots__ = ("_reader", "_value")

    def __init__(self, reader: MappedIndexReader) -> None:
        self._reader = reader
        self._value: Optional[dict] = None

    def get(self) -> dict:
        value = self._value
        if value is None:
            value = self._value = pickle.loads(self._reader.blob("objects"))
        return value


def _restore_graph(state: dict) -> KnowledgeGraph:
    """Unpickle target for :class:`LazyGraph` (restores a plain graph)."""
    graph = KnowledgeGraph.__new__(KnowledgeGraph)
    graph.__dict__.update(state)
    return graph


def _identity(obj):
    """Unpickle target for :class:`_LazyLexicon` (the real lexicon)."""
    return obj


class LazyGraph(KnowledgeGraph):
    """A :class:`KnowledgeGraph` that materializes from the v3 blob on
    first structural access.

    The query hot path needs exactly one graph column — ``node_type``
    (candidate-root grouping) — which v3 persists as a flat mapped
    array; it is served without touching the pickled object graph.
    Anything else (edges, texts, attribute lookups, mutation) loads the
    full graph from the file's ``objects`` section once and adopts its
    ``__dict__`` — after which this object *is* that graph, sharing its
    column lists with the lexicon's reference to it.
    """

    def __init__(self, node_types: memoryview, objects: _LazyObjects) -> None:
        # Deliberately no super().__init__(): columns come from the blob
        # on demand; until then only _node_types (mapped) exists.
        self._node_types = node_types
        self._lazy_objects = objects
        self._lazy_done = False

    def _materialize(self) -> None:
        if self._lazy_done:
            return
        real = self._lazy_objects.get()["graph"]
        state = dict(real.__dict__)
        self.__dict__.update(state)
        self._lazy_done = True

    def __getattr__(self, name: str):
        # Dunder probes (copy/pickle protocols) and our own guard
        # attributes must never force materialization — or recurse.
        if name.startswith("_lazy") or (
            name.startswith("__") and name.endswith("__")
        ):
            raise AttributeError(name)
        self._materialize()
        try:
            return self.__dict__[name]
        except KeyError:
            raise AttributeError(name) from None

    def add_node_typed(self, tid, text, is_entity=True):
        self._materialize()
        return KnowledgeGraph.add_node_typed(self, tid, text, is_entity)

    def add_edge_typed(self, source, attr, target):
        self._materialize()
        return KnowledgeGraph.add_edge_typed(self, source, attr, target)

    def __reduce__(self):
        # Re-pickling (e.g. saving a v3-loaded bundle back to v2)
        # produces a plain KnowledgeGraph; the pickle memo keeps its
        # column lists shared with the lexicon's graph reference.
        self._materialize()
        state = {
            key: value
            for key, value in self.__dict__.items()
            if not key.startswith("_lazy")
        }
        return (_restore_graph, (state,))


class _LazyLexicon:
    """Deferred :class:`~repro.index.lexicon.GraphLexicon` proxy.

    The lexicon's token tables are O(graph text) and only needed for
    (re)builds and incremental maintenance — never on the query path
    (queries resolve against the store's posting vocabulary).  Attribute
    access unpickles the real lexicon from the ``objects`` section and
    delegates; pickling writes the real lexicon.
    """

    __slots__ = ("_lazy_objects",)

    def __init__(self, objects: _LazyObjects) -> None:
        self._lazy_objects = objects

    def __getattr__(self, name: str):
        if name.startswith("_lazy") or (
            name.startswith("__") and name.endswith("__")
        ):
            raise AttributeError(name)
        return getattr(self._lazy_objects.get()["lexicon"], name)

    def __reduce__(self):
        return (_identity, (self._lazy_objects.get()["lexicon"],))
