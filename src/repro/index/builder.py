"""Index construction — Algorithm 1 of the paper.

For each node ``r`` and each simple path ``p`` from ``r`` with at most
``d`` nodes, every word contained at the path's endpoint (node text or node
type) yields a node-matched posting, and every word contained in the path's
final attribute type yields an edge-matched posting.  The physical path is
interned **once** into the shared columnar
:class:`~repro.index.store.PostingStore`; the pattern-first and root-first
indexes are views over that single store, so nothing is stored twice.

Score terms (path size, matched node's PageRank, keyword similarity) are
precomputed here and stored with the posting, as Section 3 prescribes —
the path-level terms (size, PageRank) live in the path columns, the
word-level term (similarity) with each posting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import PathIndexError, QueryError
from repro.core.types import Keyword
from repro.index.interner import PatternInterner
from repro.index.store import PostingStore, StoreSnapshot
from repro.index.lexicon import GraphLexicon
from repro.index.path_enum import interleaved_labels, iter_paths_from
from repro.index.pattern_first import PatternFirstIndex
from repro.index.root_first import RootFirstIndex
from repro.kg.graph import KnowledgeGraph
from repro.kg.pagerank import pagerank
from repro.kg.synonyms import SynonymTable
from repro.kg.text import DEFAULT_NORMALIZER, TextNormalizer

DEFAULT_HEIGHT = 3


class TermResolutionCache:
    """Version-guarded cache of query -> resolved keyword tuples.

    Keyword resolution (tokenize, stem, synonym-canonicalize against the
    index vocabulary) is pure given the store version — the vocabulary
    only changes when postings are added, which bumps
    :attr:`~repro.index.store.PostingStore.version`.  Before this cache
    only the stemmer's ``lru_cache`` memoized anything; the resolution
    above it was recomputed on every search, every shared-context sanity
    check, and every relaxation probe.  One entry per distinct query
    text, tagged with the version it was resolved against; a stale entry
    is recomputed in place.  Bounded FIFO; plain dict operations are
    GIL-atomic, so concurrent readers at worst duplicate a cheap
    resolution (counters are best-effort under races).
    """

    __slots__ = ("max_entries", "hits", "misses", "_data")

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._data: Dict[object, Tuple[int, Tuple[Keyword, ...]]] = {}

    def get(self, query, version: int) -> Optional[Tuple[Keyword, ...]]:
        slot = self._data.get(query)
        if slot is not None and slot[0] == version:
            self.hits += 1
            return slot[1]
        self.misses += 1
        return None

    def put(self, query, version: int, words: Tuple[Keyword, ...]) -> None:
        data = self._data
        if len(data) >= self.max_entries and query not in data:
            try:
                del data[next(iter(data))]
            except (StopIteration, KeyError):  # pragma: no cover - racy
                pass
        data[query] = (version, words)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


class ResolvedQuery(tuple):
    """A query already normalized against an index.

    Normalization is not idempotent (Porter stemming re-applied corrupts
    words: "databas" -> "databa"), so callers that re-issue subsets of an
    already-resolved query — e.g. :mod:`repro.search.relaxation` — wrap
    them in this marker; :meth:`PathIndexes.resolve_query` passes it
    through untouched.
    """

    __slots__ = ()


@dataclass
class PathIndexes:
    """Everything a search algorithm needs: graph, both indexes, metadata."""

    graph: KnowledgeGraph
    d: int
    normalizer: TextNormalizer
    lexicon: GraphLexicon
    interner: PatternInterner
    pattern_first: PatternFirstIndex
    root_first: RootFirstIndex
    pagerank_scores: List[float]
    build_seconds: float = 0.0
    synonyms: Optional[SynonymTable] = None
    store: Optional[PostingStore] = None
    resolution_cache: Optional[TermResolutionCache] = None
    #: Wall-clock seconds the deserializer spent producing this bundle
    #: (0.0 for freshly built bundles); set by ``load_indexes``.
    load_seconds: float = 0.0
    _notes: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Both views always share one store; default to the views' store so
        # hand-constructed bundles keep working.
        if self.store is None:
            self.store = self.root_first.store
        if self.resolution_cache is None:
            self.resolution_cache = TermResolutionCache()

    def resolve_query(self, query) -> Tuple[Keyword, ...]:
        """Parse and canonicalize a query against this index's vocabulary.

        Words are normalized with the index's own normalizer; a word absent
        from the index is replaced by its synonym-canonical form when that
        form *is* present (Section 3's synonym handling).  Unknown words are
        kept as-is — they simply retrieve nothing, which correctly yields an
        empty answer set.  A :class:`ResolvedQuery` is returned unchanged
        (normalization is not idempotent).

        Results are memoized in :attr:`resolution_cache` keyed by the
        query value and the store version (the vocabulary, and with it
        synonym canonicalization, can change under incremental updates).
        """
        if isinstance(query, ResolvedQuery):
            return tuple(query)
        cache = self.resolution_cache
        cacheable = cache is not None and isinstance(query, (str, tuple))
        if cacheable:
            version = self.store.version
            words = cache.get(query, version)
            if words is not None:
                return words
        words = self._resolve_uncached(query)
        # Only cache if the store did not move during resolution: a
        # racing writer could have changed the vocabulary mid-resolution,
        # and tagging that result with the pre-update version would serve
        # a stale resolution to version-pinned snapshots.  Skipping the
        # put just costs one recomputation.
        if cacheable and self.store.version == version:
            cache.put(query, version, words)
        return words

    def _resolve_uncached(self, query) -> Tuple[Keyword, ...]:
        """The raw resolution pipeline behind :meth:`resolve_query`."""
        words = self.normalizer.parse_query(query)
        if self.synonyms is None:
            return words
        resolved = []
        for word in words:
            if not self.root_first.has_word(word):
                canonical = self.synonyms.canonical(word)
                if self.root_first.has_word(canonical):
                    word = canonical
            resolved.append(word)
        # Canonicalization may collapse two query words into one.
        seen = set()
        unique = [w for w in resolved if not (w in seen or seen.add(w))]
        if not unique:
            raise QueryError(f"query {query!r} is empty after normalization")
        return tuple(unique)

    def snapshot(self) -> "PathIndexes":
        """A version-pinned, read-only view of this bundle for serving.

        Returns a :class:`PathIndexes` whose two index views are bound to
        a :class:`~repro.index.store.StoreSnapshot` pinned to the store's
        current version: concurrent readers keep a coherent vocabulary,
        grouping, and bound columns while incremental updates mutate the
        live bundle (see ``docs/serving.md``).  Graph, interner, PageRank
        vector, and the resolution cache are shared — all are append-only
        for existing ids, so pinned path ids keep resolving identically.

        Cheap (reference captures under the store lock); take a fresh one
        whenever ``store.version`` has moved.  Snapshotting a snapshot
        returns it unchanged.
        """
        store = self.store
        if isinstance(store, StoreSnapshot):
            return self
        with store.lock:
            store.finalize()
            snap_store = StoreSnapshot(store)
            pattern_first = PatternFirstIndex(self.interner, snap_store)
            root_first = RootFirstIndex(self.interner, snap_store)
            # Adopt the live view's grouping instead of rebuilding it:
            # PatternFirstIndex.finalize re-derives the per-word
            # root-type grouping over the whole vocabulary, which would
            # make every post-update snapshot O(vocabulary x patterns).
            # Bringing the live view up to date here is the same work
            # the next live query would do anyway, and under the store
            # lock it is race-free and guaranteed to land on the pinned
            # version.
            live_pf = self.pattern_first
            live_pf.finalize()
            pattern_first._data = live_pf._data
            pattern_first._by_root_type = live_pf._by_root_type
            pattern_first._built_version = snap_store.version
            root_first.finalize()  # reference assignment, pinned store
        return replace(
            self,
            pattern_first=pattern_first,
            root_first=root_first,
            store=snap_store,
        )

    @property
    def is_snapshot(self) -> bool:
        """Whether this bundle is a read-only :meth:`snapshot` view."""
        return isinstance(self.store, StoreSnapshot)

    @property
    def num_entries(self) -> int:
        """Stored path postings (per index; both view the same store)."""
        return self.root_first.num_entries()

    @property
    def num_unique_paths(self) -> int:
        """Distinct physical paths interned in the shared store."""
        return self.store.num_paths

    @property
    def num_patterns(self) -> int:
        return len(self.interner)


def build_indexes(
    graph: KnowledgeGraph,
    d: int = DEFAULT_HEIGHT,
    normalizer: Optional[TextNormalizer] = None,
    synonyms: Optional[SynonymTable] = None,
    pagerank_scores: Optional[Sequence[float]] = None,
    lexicon: Optional[GraphLexicon] = None,
    roots: Optional[Sequence[int]] = None,
) -> PathIndexes:
    """Run Algorithm 1: build both path indexes for height threshold ``d``.

    Parameters
    ----------
    graph:
        The knowledge graph.
    d:
        Height threshold: only paths with at most ``d`` nodes are stored.
    normalizer, synonyms:
        Text-processing configuration shared with query parsing.
    pagerank_scores:
        Node importance scores; computed with the paper's PageRank settings
        when omitted.  Pass :func:`repro.kg.pagerank.uniform_scores` to
        reproduce the paper's worked example.
    lexicon:
        A prebuilt :class:`GraphLexicon` (reused across d values in the
        Figure 6 experiment); built on demand when omitted.
    roots:
        Restrict path enumeration to these roots (testing hook).
    """
    if d < 1:
        raise PathIndexError(f"height threshold d must be >= 1, got {d}")
    started = time.perf_counter()
    if normalizer is None:
        normalizer = DEFAULT_NORMALIZER
    if lexicon is None:
        lexicon = GraphLexicon(graph, normalizer, synonyms)
    if pagerank_scores is None:
        pagerank_scores = pagerank(graph)
    elif len(pagerank_scores) != graph.num_nodes:
        raise PathIndexError(
            f"pagerank_scores has {len(pagerank_scores)} entries for a "
            f"{graph.num_nodes}-node graph"
        )

    interner = PatternInterner()
    store = PostingStore(interner)
    pattern_first = PatternFirstIndex(interner, store)
    root_first = RootFirstIndex(interner, store)

    root_iter = graph.nodes() if roots is None else roots
    for root in root_iter:
        for nodes, attrs in iter_paths_from(graph, root, d):
            labels = interleaved_labels(graph, nodes, attrs)
            endpoint = nodes[-1]
            node_word_sims = lexicon.node_matches(endpoint)
            if node_word_sims:
                pid = interner.intern(labels, ends_at_edge=False)
                pr = pagerank_scores[endpoint]
                path_id = store.append_path(nodes, attrs, False, pid, pr)
                for word, sim in node_word_sims:
                    store.add_posting(word, path_id, sim)
            if attrs:
                attr_word_sims = lexicon.attr_matches(attrs[-1])
                if attr_word_sims:
                    pid = interner.intern(labels[:-1], ends_at_edge=True)
                    pr = pagerank_scores[nodes[-2]]
                    path_id = store.append_path(nodes, attrs, True, pid, pr)
                    for word, sim in attr_word_sims:
                        store.add_posting(word, path_id, sim)

    pattern_first.finalize()
    root_first.finalize()
    return PathIndexes(
        graph=graph,
        d=d,
        normalizer=normalizer,
        lexicon=lexicon,
        interner=interner,
        pattern_first=pattern_first,
        root_first=root_first,
        pagerank_scores=list(pagerank_scores),
        build_seconds=time.perf_counter() - started,
        synonyms=synonyms,
        store=store,
    )
