"""Incremental index maintenance: grow the graph without a full rebuild.

The paper treats index construction as offline (Figure 6: minutes to hours)
and says nothing about updates, but a deployed knowledge base grows.  This
module adds entities and relationships to an existing
:class:`~repro.index.builder.PathIndexes` bundle in time proportional to
the *new* paths only:

* a new node contributes its singleton paths immediately;
* a new edge ``u -a-> v`` contributes exactly the bounded simple paths that
  traverse it — enumerated as (reverse simple paths ending at ``u``) x
  (forward simple paths starting at ``v``), node-disjoint, total length
  <= d.  Every such path gets its node-match and edge-match postings in
  both indexes, exactly as Algorithm 1 would have produced.

Caveat (documented, asserted in tests): **PageRank staleness**.  Stored
score terms keep the importance scores computed at build time; new nodes
get the teleport floor ``(1-a)/|V|``.  Scores therefore drift from a
from-scratch rebuild as the graph grows — call
:func:`repro.index.builder.build_indexes` to refresh when exactness
matters.  Structure (which patterns exist, which subtrees match) is always
identical to a rebuild, which the equivalence tests verify.

Concurrency: both update functions hold the store's mutation lock for
the whole update, so a concurrent :meth:`PathIndexes.snapshot
<repro.index.builder.PathIndexes.snapshot>` (what
:class:`~repro.search.service.SearchService` serves from) observes
either none or all of an update, never a half-applied one.  Readers on
existing snapshots are unaffected — see ``docs/serving.md``.  Updates
themselves are single-writer: run them from one thread.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import PathIndexError
from repro.core.types import AttrId, NodeId
from repro.index.builder import PathIndexes
from repro.index.path_enum import (
    interleaved_labels,
    iter_paths_from,
    iter_reverse_paths_to,
)


def add_entity(
    indexes: PathIndexes,
    type_name: str,
    text: str,
    is_entity: bool = True,
    pagerank: Optional[float] = None,
) -> NodeId:
    """Add a node to the graph and index its singleton paths.

    Returns the new node id.  ``pagerank`` defaults to the teleport floor
    ``0.15 / |V|`` (the rank of an unreferenced node).
    """
    graph = indexes.graph
    # One lock span for the whole update — graph, PageRank vector,
    # lexicon, store — so a concurrent snapshot observes none or all of
    # it (the none-or-all contract in the module docstring).
    with indexes.store.lock:
        node = graph.add_node(type_name, text, is_entity)
        if pagerank is None:
            pagerank = 0.15 / graph.num_nodes
        indexes.pagerank_scores.append(pagerank)
        word_sims = indexes.lexicon.register_node(node)

        if word_sims:
            labels = (graph.node_type(node),)
            pid = indexes.interner.intern(labels, ends_at_edge=False)
            path_id = indexes.store.add_path(
                (node,), (), False, pid, pagerank
            )
            for word, sim in word_sims:
                indexes.store.add_posting(word, path_id, sim)
            indexes.pattern_first.finalize()
            indexes.root_first.finalize()
    return node


def add_relationship(
    indexes: PathIndexes,
    source: NodeId,
    attr_name: str,
    target: NodeId,
) -> int:
    """Add edge ``source -attr-> target`` and index every new path.

    Returns the number of new path postings inserted.  Both endpoints must
    already exist (add them with :func:`add_entity` first).
    """
    graph = indexes.graph
    n = graph.num_nodes
    if not (0 <= source < n and 0 <= target < n):
        raise PathIndexError(
            f"edge endpoints ({source}, {target}) must be existing nodes"
        )
    d = indexes.d
    lexicon = indexes.lexicon
    ranks = indexes.pagerank_scores
    interner = indexes.interner
    store = indexes.store
    added = 0

    # All new bounded simple paths traverse the new edge exactly once and
    # decompose uniquely as prefix(root..source) + edge + suffix(target..).
    # The whole update — graph edge, lexicon, path enumeration, postings,
    # finalize — applies under one lock span: a concurrent snapshot sees
    # the index before or after this edge, never partway through.  (The
    # baseline's online graph walks are outside this protection; see the
    # baseline caveat in docs/serving.md.)
    with store.lock:
        attr = graph.intern_attr(attr_name)
        indexes.lexicon.register_attrs()
        graph.add_edge_typed(source, attr, target)
        prefixes = (
            list(iter_reverse_paths_to(graph, source, d - 1))
            if d >= 2 else []
        )
        suffixes = (
            list(iter_paths_from(graph, target, d - 1)) if d >= 2 else []
        )
        for prefix_nodes, prefix_attrs in prefixes:
            prefix_set = set(prefix_nodes)
            for suffix_nodes, suffix_attrs in suffixes:
                if len(prefix_nodes) + len(suffix_nodes) > d:
                    continue
                if prefix_set & set(suffix_nodes):
                    continue  # would repeat a node: not a simple path
                nodes = prefix_nodes + suffix_nodes
                attrs = prefix_attrs + (attr,) + suffix_attrs
                labels = interleaved_labels(graph, nodes, attrs)
                endpoint = nodes[-1]
                node_word_sims = lexicon.node_matches(endpoint)
                if node_word_sims:
                    pid = interner.intern(labels, ends_at_edge=False)
                    pr = ranks[endpoint]
                    path_id = store.add_path(nodes, attrs, False, pid, pr)
                    for word, sim in node_word_sims:
                        store.add_posting(word, path_id, sim)
                        added += 1
                attr_word_sims = lexicon.attr_matches(attrs[-1])
                if attr_word_sims:
                    pid = interner.intern(labels[:-1], ends_at_edge=True)
                    pr = ranks[nodes[-2]]
                    path_id = store.add_path(nodes, attrs, True, pid, pr)
                    for word, sim in attr_word_sims:
                        store.add_posting(word, path_id, sim)
                        added += 1
        if added:
            indexes.pattern_first.finalize()
            indexes.root_first.finalize()
    return added
