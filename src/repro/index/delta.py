"""Heap-resident delta overlay for mutating mapped stores in O(delta).

A :class:`~repro.index.mmapstore.MappedPostingStore` serves its columns
as zero-copy ``memoryview`` casts over mapped pages.  Before this module
the first mutation *thawed* the whole store — heap-copied every column,
O(index) time and memory, to apply a single row.  The delta overlay is
the LSM-style alternative: mutations land in small heap structures
layered over the immutable mapped base, and only the touched words ever
leave the mapping.

Three pieces, all owned by the mapped store:

* :class:`ChainColumn` — a path column as ``base ⊕ tail``: the mapped
  base view stays untouched (pinned snapshots keep reading it) and
  appends go to a heap ``array`` tail.  Indices are absolute, so every
  inherited accessor (``path_nodes``, ``matched_node``, the boxed query
  columns) works unchanged, and the append-only contract the snapshot
  protocol relies on is preserved by construction.
* :class:`DeltaOverlay` — the per-store mutation ledger: which words are
  dirty, which are pending a re-merge, the merged per-word views built
  so far, the overlay-only path-interning map, and the counters the
  serving tier surfaces (``overlay_words``/``overlay_postings``).
* :func:`build_word_views` — the per-word merge: re-sorts one dirty
  word's (base ⊕ overlay) posting columns into the exact order
  :meth:`~repro.index.store.PostingStore.finalize` produces and rebuilds
  that word's leaves, counts, and bound aggregates.  O(word), not
  O(index); untouched words keep their lazily-built mapped views.

Compaction (:func:`repro.index.serialize.compact_indexes`) folds the
overlay back into a fresh v3 file and re-maps, after which the overlay
is discarded and every column is a plain mapped view again.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from repro.core.types import AttrId, NodeId, PatternId
from repro.index.store import (
    FLOAT_TYPECODE,
    ID_TYPECODE,
    PostingList,
)


class ChainColumn:
    """A flat column as immutable base ⊕ growable heap tail.

    Supports exactly the operations :class:`~repro.index.store.
    PostingStore` performs on its path columns: integer and contiguous
    slice subscripts, iteration, ``len``, ``append``/``extend``,
    ``tobytes`` (base + tail in one pair of memcpys — serialization and
    the explicit thaw path), plus ``typecode``/``itemsize`` for byte
    accounting.  The base is never written; readers holding it (pinned
    snapshot leaves, the v3 reader) observe no change.
    """

    __slots__ = ("_base", "_tail", "_base_len", "typecode")

    def __init__(self, base, typecode: str) -> None:
        self._base = base
        self._tail = array(typecode)
        self._base_len = len(base)
        self.typecode = typecode

    @property
    def itemsize(self) -> int:
        return self._tail.itemsize

    def append(self, value) -> None:
        self._tail.append(value)

    def extend(self, values) -> None:
        self._tail.extend(values)

    def __len__(self) -> int:
        return self._base_len + len(self._tail)

    def __getitem__(self, index):
        base_len = self._base_len
        if isinstance(index, slice):
            start, stop, step = index.indices(base_len + len(self._tail))
            if step != 1:  # pragma: no cover - store slices are contiguous
                return [self[i] for i in range(start, stop, step)]
            if stop <= base_len:
                return list(self._base[start:stop])
            if start >= base_len:
                return list(self._tail[start - base_len:stop - base_len])
            return list(self._base[start:base_len]) + list(
                self._tail[:stop - base_len]
            )
        if index < 0:
            index += base_len + len(self._tail)
        if 0 <= index < base_len:
            return self._base[index]
        return self._tail[index - base_len]

    def __iter__(self):
        yield from self._base
        yield from self._tail

    def tobytes(self) -> bytes:
        return self._base.tobytes() + self._tail.tobytes()

    def __repr__(self) -> str:
        return (
            f"ChainColumn({self.typecode!r}, base={self._base_len}, "
            f"tail={len(self._tail)})"
        )


class DeltaOverlay:
    """The mutation ledger of one backed store since its last re-map.

    Created by the store's first mutation, discarded by
    :meth:`~repro.index.mmapstore.MappedPostingStore.remap` (compaction
    folds the overlay into the new base) and by the explicit
    :meth:`~repro.index.mmapstore.MappedPostingStore.thaw` escape hatch.

    * ``dirty`` — every word that has received an overlay posting; these
      are served from :attr:`views` (heap), never from the stale base
      leaf extents.  Cumulative across finalizes.
    * ``pending`` — dirty words with postings newer than their entry in
      :attr:`views`; the next finalize re-merges exactly these.
      (An insertion-ordered dict used as a set, for determinism.)
    * ``views`` — word -> the 5-tuple of merged finalized views (same
      shape as the store's lazy per-word build: pattern leaves, root
      leaves, root counts, root bounds, pattern bounds).
    * ``path_index`` — overlay-only path interning for ``add_path``:
      O(delta) memory, so re-adding a path that already exists in the
      *base* generation is not detected.  The incremental-maintenance
      callers (:mod:`repro.index.incremental`) only ever add paths that
      traverse a brand-new node or edge, which cannot exist in the base;
      hand construction that re-adds base paths must go through a
      thawed or freshly-built store.
    """

    __slots__ = (
        "base_paths",
        "base_postings",
        "paths",
        "postings",
        "dirty",
        "pending",
        "views",
        "path_index",
        "vocab_grew",
    )

    def __init__(self, base_paths: int, base_postings: int) -> None:
        self.base_paths = base_paths
        self.base_postings = base_postings
        self.paths = 0
        self.postings = 0
        self.dirty: set = set()
        self.pending: Dict[str, None] = {}
        self.views: Dict[str, tuple] = {}
        self.path_index: Dict[
            Tuple[Tuple[NodeId, ...], Tuple[AttrId, ...], bool], int
        ] = {}
        self.vocab_grew = False

    def __repr__(self) -> str:
        return (
            f"DeltaOverlay({len(self.dirty)} dirty words, "
            f"{self.postings} postings, {self.paths} paths over "
            f"base of {self.base_postings})"
        )


def build_word_views(store, word: str) -> tuple:
    """Merge one dirty word's base ⊕ overlay postings into final views.

    Reproduces :meth:`~repro.index.store.PostingStore.finalize` for a
    single word, bit for bit: postings sort by ``(pattern id, root,
    path-lexicographic rank)`` — here materialized as the tuple
    ``(pid, root, nodes, attrs, path_id)``, which orders identically to
    the global finalize's packed integer key (the path-id tiebreak
    matches the global sort's stability, and duplicate postings of one
    path keep insertion order under the stable sort) — the word's
    posting columns are **replaced** with newly sorted arrays (the
    snapshot invariant: pinned generations keep the old arrays), and
    leaves, per-root counts, and the min/max bound aggregates are
    rebuilt over the sorted order exactly as the eager builders do.

    Returns the 5-tuple ``(pattern_leaves, root_leaves, root_counts,
    root_bounds, pattern_bounds)`` — the same shape
    :meth:`MappedPostingStore._word_views
    <repro.index.mmapstore.MappedPostingStore>` recovers for clean
    words from the persisted extents.
    """
    ids = store._posting_ids[word]
    sims = store._posting_sims[word]
    n = len(ids)
    pids = store._pids
    roots = store._roots
    path_nodes = store.path_nodes
    path_attrs = store.path_attrs
    keys: Dict[int, tuple] = {}

    def key_of(path_id: int) -> tuple:
        key = keys.get(path_id)
        if key is None:
            key = keys[path_id] = (
                pids[path_id],
                roots[path_id],
                path_nodes(path_id),
                path_attrs(path_id),
                path_id,
            )
        return key

    permutation = sorted(range(n), key=lambda i: key_of(ids[i]))
    sorted_ids = array(ID_TYPECODE, (ids[i] for i in permutation))
    sorted_sims = array(FLOAT_TYPECODE, (sims[i] for i in permutation))
    store._posting_ids[word] = sorted_ids
    store._posting_sims[word] = sorted_sims

    path_size = store.path_size
    path_pr = store.path_pr
    word_pf: Dict[PatternId, Dict[NodeId, PostingList]] = {}
    rf_leaves: List[Tuple[NodeId, PatternId, PostingList]] = []
    word_counts: Dict[NodeId, int] = {}
    word_root: Dict[NodeId, tuple] = {}
    word_pat: Dict[PatternId, Dict[NodeId, tuple]] = {}
    start = 0
    for stop in range(1, n + 1):
        if stop < n and (
            pids[sorted_ids[stop]] == pids[sorted_ids[start]]
            and roots[sorted_ids[stop]] == roots[sorted_ids[start]]
        ):
            continue
        pid = pids[sorted_ids[start]]
        root = roots[sorted_ids[start]]
        leaf = PostingList(store, sorted_ids, sorted_sims, start, stop)
        word_pf.setdefault(pid, {})[root] = leaf
        rf_leaves.append((root, pid, leaf))
        word_counts[root] = word_counts.get(root, 0) + (stop - start)
        path_id = sorted_ids[start]
        size_lo = size_hi = path_size(path_id)
        pr_lo = pr_hi = path_pr(path_id)
        sim_lo = sim_hi = sorted_sims[start]
        for i in range(start + 1, stop):
            path_id = sorted_ids[i]
            size = path_size(path_id)
            if size < size_lo:
                size_lo = size
            elif size > size_hi:
                size_hi = size
            pr = path_pr(path_id)
            if pr < pr_lo:
                pr_lo = pr
            elif pr > pr_hi:
                pr_hi = pr
            sim = sorted_sims[i]
            if sim < sim_lo:
                sim_lo = sim
            elif sim > sim_hi:
                sim_hi = sim
        bound = (stop - start, size_lo, size_hi, pr_lo, pr_hi, sim_lo, sim_hi)
        word_pat.setdefault(pid, {})[root] = bound
        merged = word_root.get(root)
        if merged is None:
            word_root[root] = bound
        else:
            word_root[root] = (
                merged[0] + bound[0],
                min(merged[1], bound[1]),
                max(merged[2], bound[2]),
                min(merged[3], bound[3]),
                max(merged[4], bound[4]),
                min(merged[5], bound[5]),
                max(merged[6], bound[6]),
            )
        start = stop
    word_rf: Dict[NodeId, Dict[PatternId, PostingList]] = {}
    rf_leaves.sort(key=lambda leaf: (leaf[0], leaf[1]))
    for root, pid, leaf in rf_leaves:
        word_rf.setdefault(root, {})[pid] = leaf
    return (word_pf, word_rf, word_counts, word_root, word_pat)
