"""The pattern-first path index (Figure 4(a) / Figure 5(a)).

For each word ``w``, paths ending at a node/edge containing ``w`` are
grouped by *pattern first, then root*.  Access methods follow the paper:

* ``Patterns(w)`` — all patterns reaching ``w`` from some root;
* ``Roots(w, P)`` — roots reaching ``w`` through pattern ``P``;
* ``Paths(w, P, r)`` — the matching paths themselves.

PATTERNENUM (Algorithm 2) additionally needs patterns grouped by their root
*type* (line 3, ``Patterns_C(w)``); that grouping is precomputed in
:meth:`PatternFirstIndex.finalize`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.core.types import NodeId, PatternId, TypeId
from repro.index.entry import PathEntry
from repro.index.interner import PatternInterner

_EMPTY_DICT: Dict = {}
_EMPTY_LIST: List = []


class PatternFirstIndex:
    """word -> pattern -> root -> [PathEntry] with paper-named accessors."""

    def __init__(self, interner: PatternInterner) -> None:
        self.interner = interner
        self._data: Dict[str, Dict[PatternId, Dict[NodeId, List[PathEntry]]]] = {}
        self._by_root_type: Dict[str, Dict[TypeId, List[PatternId]]] = {}
        self._finalized = False

    # -------------------------------------------------------------- building

    def add(self, word: str, pid: PatternId, entry: PathEntry) -> None:
        by_pattern = self._data.get(word)
        if by_pattern is None:
            by_pattern = self._data[word] = {}
        by_root = by_pattern.get(pid)
        if by_root is None:
            by_root = by_pattern[pid] = {}
        entries = by_root.get(entry.nodes[0])
        if entries is None:
            by_root[entry.nodes[0]] = [entry]
        else:
            entries.append(entry)
        self._finalized = False

    def finalize(self) -> None:
        """Sort postings and precompute the per-root-type pattern grouping.

        Sorting (patterns by id, roots ascending, paths lexicographically)
        matches the paper's "sort and store paths sequentially in memory"
        and makes every downstream iteration order deterministic.
        """
        for word, by_pattern in self._data.items():
            sorted_patterns = dict(sorted(by_pattern.items()))
            for pid, by_root in sorted_patterns.items():
                sorted_roots = dict(sorted(by_root.items()))
                for entries in sorted_roots.values():
                    entries.sort(key=lambda e: (e.nodes, e.attrs))
                sorted_patterns[pid] = sorted_roots
            self._data[word] = sorted_patterns
            grouping: Dict[TypeId, List[PatternId]] = {}
            for pid in sorted_patterns:
                root_type = self.interner.pattern(pid).root_type
                grouping.setdefault(root_type, []).append(pid)
            self._by_root_type[word] = grouping
        self._finalized = True

    # ------------------------------------------------------------- accessors

    def words(self) -> Iterable[str]:
        return self._data.keys()

    def has_word(self, word: str) -> bool:
        return word in self._data

    def patterns(self, word: str) -> Sequence[PatternId]:
        """Patterns(w): all path patterns reaching ``w``."""
        return list(self._data.get(word, _EMPTY_DICT).keys())

    def roots(self, word: str, pid: PatternId) -> Dict[NodeId, List[PathEntry]]:
        """Roots(w, P) as a root -> entries mapping (keys are the roots).

        Returning the mapping rather than a key list lets callers intersect
        root sets and fetch paths without a second lookup.
        """
        return self._data.get(word, _EMPTY_DICT).get(pid, _EMPTY_DICT)

    def paths(self, word: str, pid: PatternId, root: NodeId) -> List[PathEntry]:
        """Paths(w, P, r)."""
        return (
            self._data.get(word, _EMPTY_DICT)
            .get(pid, _EMPTY_DICT)
            .get(root, _EMPTY_LIST)
        )

    def patterns_rooted_at(
        self, word: str, root_type: TypeId
    ) -> Sequence[PatternId]:
        """Patterns_C(w): patterns whose root has type ``root_type``."""
        if not self._finalized:
            self.finalize()
        return self._by_root_type.get(word, _EMPTY_DICT).get(
            root_type, _EMPTY_LIST
        )

    def root_types(self, word: str) -> Set[TypeId]:
        """All root types among ``word``'s patterns."""
        if not self._finalized:
            self.finalize()
        return set(self._by_root_type.get(word, _EMPTY_DICT).keys())

    # ------------------------------------------------------------------ size

    def num_entries(self, word: str = None) -> int:
        """Total stored paths (optionally for one word): the S_i of Thm 3/4."""
        words = [word] if word is not None else list(self._data)
        total = 0
        for w in words:
            for by_root in self._data.get(w, _EMPTY_DICT).values():
                for entries in by_root.values():
                    total += len(entries)
        return total

    def iter_entries(self) -> Iterable[Tuple[str, PatternId, PathEntry]]:
        """Every (word, pattern, entry) triple — used by stats/serialization."""
        for word, by_pattern in self._data.items():
            for pid, by_root in by_pattern.items():
                for entries in by_root.values():
                    for entry in entries:
                        yield word, pid, entry
