"""The pattern-first path index (Figure 4(a) / Figure 5(a)).

For each word ``w``, paths ending at a node/edge containing ``w`` are
grouped by *pattern first, then root*.  Access methods follow the paper:

* ``Patterns(w)`` — all patterns reaching ``w`` from some root;
* ``Roots(w, P)`` — roots reaching ``w`` through pattern ``P``;
* ``Paths(w, P, r)`` — the matching paths themselves.

PATTERNENUM (Algorithm 2) additionally needs patterns grouped by their root
*type* (line 3, ``Patterns_C(w)``); that grouping is precomputed in
:meth:`PatternFirstIndex.finalize`.

Since the columnar-store refactor this class is a thin *view*: postings
live in one shared :class:`~repro.index.store.PostingStore` (also behind
:class:`~repro.index.root_first.RootFirstIndex`), and the nested dicts
here hold only shared :class:`~repro.index.store.PostingList` flyweights,
rebuilt lazily whenever the store has grown.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.types import NodeId, PatternId, TypeId
from repro.index.entry import PathEntry
from repro.index.interner import PatternInterner
from repro.index.store import PostingList, PostingStore

_EMPTY_DICT: Dict = {}
_EMPTY_LIST: List = []


class PatternFirstIndex:
    """word -> pattern -> root -> postings with paper-named accessors."""

    def __init__(
        self,
        interner: PatternInterner,
        store: Optional[PostingStore] = None,
    ) -> None:
        """Create a view over ``store`` (or a private store when omitted).

        Pass the same store to :class:`~repro.index.root_first.\
RootFirstIndex` to share every posting between the two indexes.
        """
        self.interner = interner
        self.store = store if store is not None else PostingStore(interner)
        self._data: Dict[str, Dict[PatternId, Mapping[NodeId, PostingList]]] = {}
        self._by_root_type: Dict[str, Dict[TypeId, List[PatternId]]] = {}
        self._built_version = -1

    # -------------------------------------------------------------- building

    def add(self, word: str, pid: PatternId, entry: PathEntry) -> None:
        """Insert one posting (interning its path) into the backing store.

        When the store is shared with a root-first view, add through the
        store (or through exactly one view) — the posting is visible to
        both sides.
        """
        self.store.add_entry(word, pid, entry)

    def finalize(self) -> None:
        """(Re)build the nested view dicts from the store's grouping.

        Sorting (patterns by id, roots ascending, paths lexicographically)
        matches the paper's "sort and store paths sequentially in memory"
        and makes every downstream iteration order deterministic.  Cheap
        when nothing changed; safe to call repeatedly.
        """
        store = self.store
        if self._built_version == store.version:
            return
        data = store.pattern_view()  # shared with the store, not copied
        # Mapped stores (index/mmapstore.py) deserialize their views one
        # word at a time; eagerly grouping every word here would force the
        # whole vocabulary off disk, so they supply a lazy per-word
        # grouping instead.
        view_hook = getattr(store, "by_root_type_view", None)
        if view_hook is not None:
            lazy_grouping = view_hook(self.interner)
            if lazy_grouping is not None:
                self._data = data
                self._by_root_type = lazy_grouping
                self._built_version = store.version
                return
        by_root_type: Dict[str, Dict[TypeId, List[PatternId]]] = {}
        for word, by_pattern in data.items():
            grouping: Dict[TypeId, List[PatternId]] = {}
            for pid in by_pattern:
                root_type = self.interner.pattern(pid).root_type
                grouping.setdefault(root_type, []).append(pid)
            by_root_type[word] = grouping
        self._data = data
        self._by_root_type = by_root_type
        self._built_version = store.version

    def _ensure(self) -> None:
        if self._built_version != self.store.version:
            self.finalize()

    # ------------------------------------------------------------- accessors

    def words(self) -> Iterable[str]:
        return self.store.words()

    def has_word(self, word: str) -> bool:
        return self.store.has_word(word)

    def patterns(self, word: str) -> Sequence[PatternId]:
        """Patterns(w): all path patterns reaching ``w``."""
        self._ensure()
        return list(self._data.get(word, _EMPTY_DICT).keys())

    def roots(self, word: str, pid: PatternId) -> Mapping[NodeId, PostingList]:
        """Roots(w, P) as a root -> entries mapping (keys are the roots).

        Returning the mapping rather than a key list lets callers intersect
        root sets and fetch paths without a second lookup.
        """
        self._ensure()
        return self._data.get(word, _EMPTY_DICT).get(pid, _EMPTY_DICT)

    def paths(
        self, word: str, pid: PatternId, root: NodeId
    ) -> Sequence[PathEntry]:
        """Paths(w, P, r)."""
        self._ensure()
        return (
            self._data.get(word, _EMPTY_DICT)
            .get(pid, _EMPTY_DICT)
            .get(root, _EMPTY_LIST)
        )

    def patterns_rooted_at(
        self, word: str, root_type: TypeId
    ) -> Sequence[PatternId]:
        """Patterns_C(w): patterns whose root has type ``root_type``."""
        self._ensure()
        return self._by_root_type.get(word, _EMPTY_DICT).get(
            root_type, _EMPTY_LIST
        )

    def root_types(self, word: str) -> Set[TypeId]:
        """All root types among ``word``'s patterns."""
        self._ensure()
        return set(self._by_root_type.get(word, _EMPTY_DICT).keys())

    # ------------------------------------------------------------------ size

    def num_entries(self, word: Optional[str] = None) -> int:
        """Total stored postings (optionally for one word): S_i of Thm 3/4.

        O(1) per word — read from the store's posting columns.
        """
        return self.store.num_postings(word)

    def iter_entries(self) -> Iterable[Tuple[str, PatternId, PathEntry]]:
        """Every (word, pattern, entry) triple — used by stats/tests."""
        self._ensure()
        for word, by_pattern in self._data.items():
            for pid, by_root in by_pattern.items():
                for postings in by_root.values():
                    for entry in postings:
                        yield word, pid, entry
