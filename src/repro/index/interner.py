"""Interning of path patterns to dense integer ids.

Both indexes key their middle layer by path pattern; interning the
(labels, ends_at_edge) pairs to small integers makes pattern comparison and
tree-pattern dictionary keys cheap tuple-of-int operations.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Tuple

from repro.core.errors import PathIndexError
from repro.core.pattern import PathPattern
from repro.core.types import PatternId


class PatternInterner:
    """Bijection between path patterns and dense ids."""

    def __init__(self) -> None:
        self._ids: Dict[Tuple[Tuple[int, ...], bool], PatternId] = {}
        self._patterns: List[PathPattern] = []

    def intern(self, labels: Tuple[int, ...], ends_at_edge: bool) -> PatternId:
        """Id of the pattern, creating it on first sight."""
        key = (labels, ends_at_edge)
        pid = self._ids.get(key)
        if pid is None:
            pid = len(self._patterns)
            self._ids[key] = pid
            self._patterns.append(PathPattern(labels, ends_at_edge))
        return pid

    def intern_pattern(self, pattern: PathPattern) -> PatternId:
        return self.intern(pattern.labels, pattern.ends_at_edge)

    def pattern(self, pid: PatternId) -> PathPattern:
        try:
            return self._patterns[pid]
        except IndexError:
            raise PathIndexError(f"unknown pattern id {pid}") from None

    def lookup(self, pattern: PathPattern) -> PatternId:
        """Id of an existing pattern; raises when never interned."""
        key = (pattern.labels, pattern.ends_at_edge)
        pid = self._ids.get(key)
        if pid is None:
            raise PathIndexError(f"pattern {pattern} was never interned")
        return pid

    def __len__(self) -> int:
        return len(self._patterns)

    def __contains__(self, pattern: PathPattern) -> bool:
        return (pattern.labels, pattern.ends_at_edge) in self._ids

    # ---------------------------------------------------------- persistence

    def to_payload(self) -> Dict[str, bytes]:
        """Columnar serialization: label chains flattened with offsets.

        Part of the FORMAT_VERSION 2 envelope (``docs/index-format.md``);
        avoids pickling one :class:`PathPattern` object per pattern.
        """
        offsets = array("q", [0])
        labels = array("i")
        flags = array("b")
        for pattern in self._patterns:
            labels.extend(pattern.labels)
            offsets.append(len(labels))
            flags.append(1 if pattern.ends_at_edge else 0)
        return {
            "offsets": offsets.tobytes(),
            "labels": labels.tobytes(),
            "flags": flags.tobytes(),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, bytes]) -> "PatternInterner":
        """Rebuild an interner from :meth:`to_payload` output.

        Pattern ids are positional, so the bijection is restored exactly.
        """
        offsets = array("q")
        offsets.frombytes(payload["offsets"])
        labels = array("i")
        labels.frombytes(payload["labels"])
        flags = array("b")
        flags.frombytes(payload["flags"])
        interner = cls()
        for i, flag in enumerate(flags):
            chain = tuple(labels[offsets[i]:offsets[i + 1]])
            interner.intern(chain, ends_at_edge=bool(flag))
        return interner
