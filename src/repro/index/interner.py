"""Interning of path patterns to dense integer ids.

Both indexes key their middle layer by path pattern; interning the
(labels, ends_at_edge) pairs to small integers makes pattern comparison and
tree-pattern dictionary keys cheap tuple-of-int operations.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.errors import PathIndexError
from repro.core.pattern import PathPattern
from repro.core.types import PatternId


class PatternInterner:
    """Bijection between path patterns and dense ids."""

    def __init__(self) -> None:
        self._ids: Dict[Tuple[Tuple[int, ...], bool], PatternId] = {}
        self._patterns: List[PathPattern] = []

    def intern(self, labels: Tuple[int, ...], ends_at_edge: bool) -> PatternId:
        """Id of the pattern, creating it on first sight."""
        key = (labels, ends_at_edge)
        pid = self._ids.get(key)
        if pid is None:
            pid = len(self._patterns)
            self._ids[key] = pid
            self._patterns.append(PathPattern(labels, ends_at_edge))
        return pid

    def intern_pattern(self, pattern: PathPattern) -> PatternId:
        return self.intern(pattern.labels, pattern.ends_at_edge)

    def pattern(self, pid: PatternId) -> PathPattern:
        try:
            return self._patterns[pid]
        except IndexError:
            raise PathIndexError(f"unknown pattern id {pid}") from None

    def lookup(self, pattern: PathPattern) -> PatternId:
        """Id of an existing pattern; raises when never interned."""
        key = (pattern.labels, pattern.ends_at_edge)
        pid = self._ids.get(key)
        if pid is None:
            raise PathIndexError(f"pattern {pattern} was never interned")
        return pid

    def __len__(self) -> int:
        return len(self._patterns)

    def __contains__(self, pattern: PathPattern) -> bool:
        return (pattern.labels, pattern.ends_at_edge) in self._ids
