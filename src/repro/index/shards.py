"""Root-partitioned shards of one index bundle.

Scatter–gather serving (:mod:`repro.search.sharding`) splits the columnar
:class:`~repro.index.store.PostingStore` into K self-contained shards so a
pool of forked workers can each search a fraction of the candidate roots.
The partition must preserve one invariant for the gathered per-shard
top-k lists to merge **bit-identically** into the unsharded answer:

    **pattern containment** — every tree pattern's entire root set lives
    in exactly one shard.

A path pattern's first label is its root's *type* (see
:func:`repro.index.path_enum.interleaved_labels`), so two roots can only
ever share a pattern when they share a type.  Roots are therefore
assigned to shards by a stable hash of their type id — the finest
root-id partition that keeps patterns whole.  Hashing raw root ids
instead would split a pattern's roots across shards and break both exact
merging (pattern scores aggregate subtree scores *across* roots, in
ascending-root float order) and bound-driven shard skipping (a skipped
shard would silently drop its root contributions from patterns retained
elsewhere).  ``docs/sharding.md`` walks through the argument.

Within a shard, every index leaf — the ``(word, pattern, root)`` posting
group — is byte-for-byte the global leaf: leaves never span shards, the
copied columns preserve per-path values, and the shard store's own
``finalize()`` reproduces the global (pattern, root, path-lex) order
restricted to the shard's paths.  A shard therefore computes *exact
global* scores for its patterns with the unsharded float operation
order, which is what makes the coordinator's merge a pure top-k union.

The hash is deliberately not Python's ``hash()`` (salted per process):
workers, coordinator, and persisted shard files must all agree on the
assignment across process boundaries and releases.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.core.errors import PathIndexError
from repro.core.types import NodeId, TypeId
from repro.index.builder import PathIndexes
from repro.index.pattern_first import PatternFirstIndex
from repro.index.root_first import RootFirstIndex
from repro.index.store import PostingStore

_MASK64 = (1 << 64) - 1


def shard_of_type(type_id: TypeId, num_shards: int) -> int:
    """Stable shard assignment for one root type.

    SplitMix64's finalizer: deterministic across processes and platforms
    (unlike the salted builtin ``hash``), and avalanching, so consecutive
    type ids spread evenly over small shard counts.
    """
    x = (int(type_id) + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x % num_shards


@dataclass
class ShardedIndexes:
    """One index bundle partitioned into pattern-disjoint shards.

    ``base`` is the unpartitioned bundle the shards were derived from
    (live or snapshot); the coordinator keeps it for planning, bounds,
    inline failover, and answer reconstruction.  Every shard is a full
    :class:`~repro.index.builder.PathIndexes` over its own
    :class:`~repro.index.store.PostingStore`, sharing the base's graph,
    interner (so pattern ids are globally meaningful), lexicon, PageRank
    vector, and synonym table.
    """

    base: PathIndexes
    shards: List[PathIndexes]
    store_version: int
    _type_shards: Dict[TypeId, int] = field(default_factory=dict)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_of_root(self, root: NodeId) -> int:
        """The shard owning ``root`` (via its type; cached per type)."""
        type_id = self.base.graph.node_type(root)
        shard = self._type_shards.get(type_id)
        if shard is None:
            shard = self._type_shards[type_id] = shard_of_type(
                type_id, len(self.shards)
            )
        return shard

    def partition_roots(
        self, roots: Sequence[NodeId]
    ) -> List[List[NodeId]]:
        """Split a (sorted) root list into per-shard lists, order kept."""
        parts: List[List[NodeId]] = [[] for _ in self.shards]
        for root in roots:
            parts[self.shard_of_root(root)].append(root)
        return parts


def partition_indexes(
    indexes: PathIndexes, num_shards: int
) -> ShardedIndexes:
    """Partition ``indexes`` into ``num_shards`` self-contained shards.

    Pure column transfer — no graph re-enumeration: each stored path is
    appended to its root type's shard store (ascending global path id,
    so relative path order is preserved), each posting follows its path,
    and the shard stores finalize into exactly the global leaf grouping
    restricted to their paths.  Shards may be empty when the graph has
    fewer populated types than shards; an empty shard is a valid bundle
    that answers every query with no candidates.
    """
    if num_shards < 1:
        raise PathIndexError(
            f"num_shards must be >= 1, got {num_shards}"
        )
    base = indexes
    store = base.store
    graph = base.graph
    store.finalize()
    version = store.version

    shard_stores = [PostingStore(base.interner) for _ in range(num_shards)]
    num_paths = store.num_paths
    # Per global path: owning shard and shard-local id.  Plain lists — the
    # mapping is partition-scoped scaffolding, not resident state.
    shard_of_path: List[int] = [0] * num_paths
    local_ids: List[int] = [0] * num_paths
    type_shards: Dict[TypeId, int] = {}
    for path_id in range(num_paths):
        type_id = graph.node_type(store.path_root(path_id))
        shard = type_shards.get(type_id)
        if shard is None:
            shard = type_shards[type_id] = shard_of_type(type_id, num_shards)
        shard_of_path[path_id] = shard
        local_ids[path_id] = shard_stores[shard].append_path(
            store.path_nodes(path_id),
            store.path_attrs(path_id),
            store.path_matched_on_edge(path_id),
            store.path_pattern(path_id),
            store.path_pr(path_id),
        )
    for word in store.words():
        for path_id, sim in store.postings(word):
            shard_stores[shard_of_path[path_id]].add_posting(
                word, local_ids[path_id], sim
            )

    return wrap_shard_stores(base, shard_stores, store_version=version)


def wrap_shard_stores(
    base: PathIndexes,
    shard_stores: Sequence[PostingStore],
    store_version: Optional[int] = None,
) -> ShardedIndexes:
    """Wrap per-shard stores into full bundles around ``base``.

    The tail of :func:`partition_indexes`, shared with
    :func:`repro.index.serialize.load_sharded_indexes` so deserialized
    shard stores get identical view construction.
    """
    shards = []
    for shard_store in shard_stores:
        shard_store.finalize()
        pattern_first = PatternFirstIndex(base.interner, shard_store)
        root_first = RootFirstIndex(base.interner, shard_store)
        pattern_first.finalize()
        root_first.finalize()
        shards.append(
            replace(
                base,
                pattern_first=pattern_first,
                root_first=root_first,
                store=shard_store,
                resolution_cache=None,  # __post_init__ gives each its own
            )
        )
    if store_version is None:
        store_version = base.store.version
    return ShardedIndexes(
        base=base, shards=shards, store_version=store_version
    )
