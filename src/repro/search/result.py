"""Search result containers and instrumentation counters.

Every algorithm returns a :class:`SearchResult`: the ranked tree-pattern
answers plus a :class:`SearchStats` block whose counters back the paper's
performance discussions (empty patterns wasted by PATTERNENUM, roots
expanded by LINEARENUM, subtrees enumerated, ...).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.core.pattern import PathPattern, TreePattern
from repro.core.subtree import ValidSubtree
from repro.core.table import TableAnswer, compose_table
from repro.core.types import PatternId
from repro.index.entry import PathEntry, subtree_from_entries

if TYPE_CHECKING:  # pragma: no cover
    from repro.index.builder import PathIndexes
    from repro.index.store import PostingStore

#: A valid subtree in its compact index form: one entry per query keyword.
#: Since the id-based enumeration refactor the search algorithms retain
#: :class:`ComboRef` objects (path ids + sims, entries materialized on
#: first access); a plain tuple of :class:`PathEntry` remains a valid
#: combo and compares equal to a :class:`ComboRef` over the same paths.
EntryCombo = Sequence[PathEntry]


class ComboRef(Sequence):
    """One valid subtree held as store-native scalars.

    The id-based enumeration loops never build :class:`PathEntry` objects;
    when a subtree must be *kept* (``keep_subtrees=True``) it is captured
    as this reference — the backing :class:`~repro.index.store.PostingStore`
    plus parallel ``(path_id, sim)`` tuples — and the entries are
    reconstructed lazily (and cached) on first element access.  Equality
    and hashing are by materialized entry values, so combos from different
    stores (built vs loaded, index vs baseline scratch) and plain entry
    tuples all compare interchangeably.
    """

    __slots__ = ("_store", "pairs", "_entries", "_hash")

    def __init__(
        self,
        store: "PostingStore",
        pairs: Tuple[Tuple[int, float], ...],
    ) -> None:
        self._store = store
        self.pairs = pairs
        self._entries: Optional[Tuple[PathEntry, ...]] = None
        self._hash: Optional[int] = None

    @property
    def path_ids(self) -> Tuple[int, ...]:
        return tuple(pair[0] for pair in self.pairs)

    @property
    def sims(self) -> Tuple[float, ...]:
        return tuple(pair[1] for pair in self.pairs)

    def entries(self) -> Tuple[PathEntry, ...]:
        """The materialized entry tuple (built once, then cached)."""
        entries = self._entries
        if entries is None:
            make = self._store.make_entry
            entries = self._entries = tuple(
                make(path_id, sim) for path_id, sim in self.pairs
            )
        return entries

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.entries())

    def __getitem__(self, index):
        return self.entries()[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, ComboRef):
            if self._store is other._store and self.pairs == other.pairs:
                return True
            return self.entries() == other.entries()
        if isinstance(other, (tuple, list)):
            return list(self.entries()) == list(other)
        return NotImplemented

    def __hash__(self) -> int:
        result = self._hash
        if result is None:
            result = self._hash = hash(self.entries())
        return result

    def __repr__(self) -> str:
        return f"ComboRef({self.pairs!r})"


@dataclass
class SearchStats:
    """Instrumentation shared by all algorithms (fields unused by an
    algorithm stay at their defaults)."""

    algorithm: str
    elapsed_seconds: float = 0.0
    candidate_roots: int = 0
    roots_expanded: int = 0
    patterns_checked: int = 0
    empty_patterns: int = 0
    nonempty_patterns: int = 0
    subtrees_enumerated: int = 0
    tree_check_rejections: int = 0
    sampled_types: int = 0
    rescored_patterns: int = 0
    #: Bound-driven pruning counters (0 / None when pruning is off or
    #: never triggered; semantics in ``docs/pruning.md``).
    roots_skipped: int = 0
    prefixes_skipped: int = 0
    pairs_skipped: int = 0
    #: k-th-score trajectory: the threshold when the top-k queue first
    #: filled, and the final one.  None when the queue never filled (or
    #: pruning was off).
    threshold_first: Optional[float] = None
    threshold_last: Optional[float] = None
    #: Set by :class:`~repro.search.service.SearchService` when the result
    #: was served from the result cache rather than executed; the service
    #: stamps a stats *copy*, so the cached original (whose counters
    #: describe the actual execution) is never mutated.
    from_result_cache: bool = False
    #: Scatter–gather counters, written only by
    #: :class:`~repro.search.sharding.ShardedSearchService` (all-zero on
    #: single-store runs).  ``shards_skipped`` counts shards never sent
    #: the query because their score upper bound fell below the running
    #: k-th score; ``shard_dispatch_order`` is the best-bound-first visit
    #: order; ``shard_failovers`` counts worker deaths recovered by
    #: inline re-execution.
    shards_total: int = 0
    shards_skipped: int = 0
    shard_dispatch_order: Tuple[int, ...] = ()
    shard_failovers: int = 0

    def format(self) -> str:
        parts = [f"{self.algorithm}: {self.elapsed_seconds * 1000:.1f} ms"]
        if self.from_result_cache:
            parts.append("(cached)")
        for label, value in (
            ("roots", self.candidate_roots),
            ("expanded", self.roots_expanded),
            ("patterns", self.patterns_checked),
            ("empty", self.empty_patterns),
            ("nonempty", self.nonempty_patterns),
            ("subtrees", self.subtrees_enumerated),
            ("non-tree", self.tree_check_rejections),
            ("sampled-types", self.sampled_types),
            ("rescored", self.rescored_patterns),
            ("roots-skipped", self.roots_skipped),
            ("prefixes-skipped", self.prefixes_skipped),
            ("pairs-skipped", self.pairs_skipped),
        ):
            if value:
                parts.append(f"{label}={value}")
        if self.shards_total:
            parts.append(
                f"shards={self.shards_total - self.shards_skipped}"
                f"/{self.shards_total}"
            )
            if self.shard_failovers:
                parts.append(f"shard-failovers={self.shard_failovers}")
        if self.threshold_first is not None:
            parts.append(
                f"kth={self.threshold_first:.6g}->{self.threshold_last:.6g}"
            )
        return " ".join(parts)


class Stopwatch:
    """Tiny helper so every algorithm times itself uniformly."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self._start


@dataclass
class PatternAnswer:
    """One ranked answer: a tree pattern with its score and subtrees.

    ``subtrees`` holds compact entry combos; :meth:`materialize` converts
    them to :class:`ValidSubtree` objects and :meth:`to_table` renders the
    paper's table answer.  When a search ran with ``keep_subtrees=False``
    the combos are absent but ``num_subtrees`` and ``score`` remain exact.
    """

    pattern_key: Tuple[PatternId, ...]
    pattern: TreePattern
    score: float
    num_subtrees: int
    subtrees: List[EntryCombo] = field(default_factory=list)
    estimated_score: Optional[float] = None

    def materialize(self) -> List[ValidSubtree]:
        trees = []
        for combo in self.subtrees:
            tree = subtree_from_entries(combo)
            if tree is not None:
                trees.append(tree)
        return trees

    def to_table(self, graph, max_rows: Optional[int] = None) -> TableAnswer:
        subtrees = self.materialize()
        if max_rows is not None:
            subtrees = subtrees[:max_rows]
        return compose_table(self.pattern, subtrees, graph, score=self.score)


@dataclass
class SearchResult:
    """Ranked tree-pattern answers for one query."""

    query: Tuple[str, ...]
    k: int
    d: int
    answers: List[PatternAnswer]
    stats: SearchStats

    @property
    def num_answers(self) -> int:
        return len(self.answers)

    def scores(self) -> List[float]:
        return [answer.score for answer in self.answers]

    def pattern_keys(self) -> List[Tuple[PatternId, ...]]:
        return [answer.pattern_key for answer in self.answers]

    def tables(self, graph, max_rows: Optional[int] = None) -> List[TableAnswer]:
        return [answer.to_table(graph, max_rows) for answer in self.answers]

    def format(self, graph, max_tables: int = 3, max_rows: int = 5) -> str:
        """Readable digest: per-answer pattern, score, and a table preview."""
        lines = [
            f"query={' '.join(self.query)!r} k={self.k} d={self.d} "
            f"answers={self.num_answers}",
            self.stats.format(),
        ]
        for rank, answer in enumerate(self.answers[:max_tables], start=1):
            lines.append(
                f"#{rank} score={answer.score:.4f} "
                f"rows={answer.num_subtrees}"
            )
            lines.append(answer.pattern.format(graph, self.query))
            if answer.subtrees:
                lines.append(answer.to_table(graph, max_rows).to_ascii(max_rows))
        return "\n".join(lines)


def pattern_from_key(
    indexes: "PathIndexes", key: Tuple[PatternId, ...]
) -> TreePattern:
    """Reconstruct a :class:`TreePattern` from interned pattern ids."""
    return TreePattern(
        tuple(indexes.interner.pattern(pid) for pid in key)
    )


def canonical_pattern_key(pattern: TreePattern) -> Tuple:
    """Engine-independent sort key for a tree pattern (raw labels)."""
    return tuple((p.labels, p.ends_at_edge) for p in pattern.paths)


def _quantize(score: float) -> float:
    """Collapse last-ulp noise: 12 significant digits.

    The engines compute identical scores through different summation
    orders; quantizing before ordering keeps near-identical scores from
    ranking differently across engines.
    """
    return float(f"{score:.12g}")


def order_answers(answers: List[PatternAnswer]) -> List[PatternAnswer]:
    """Final deterministic ranking: score desc, canonical pattern key asc.

    Every engine applies this to its retained top-k so that (near-)tied
    patterns — isomorphic answers are common — rank identically regardless
    of each algorithm's enumeration order.
    """
    answers.sort(
        key=lambda a: (-_quantize(a.score), canonical_pattern_key(a.pattern))
    )
    return answers


def pattern_from_labels(
    labels_key: Tuple[Tuple[Tuple[int, ...], bool], ...]
) -> TreePattern:
    """Reconstruct a :class:`TreePattern` from raw (labels, flag) pairs.

    The baseline has no interner; it keys its dictionary by raw label
    tuples.
    """
    return TreePattern(
        tuple(PathPattern(labels, flag) for labels, flag in labels_key)
    )
