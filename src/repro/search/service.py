"""Long-lived search serving: the *execute* side of the plan/execute split.

:class:`~repro.search.engine.TableAnswerEngine` is a per-process facade:
every ``search()`` call resolves keywords, rebuilds root maps and
candidate intersections, and enumerates from scratch — fine for scripts,
wasteful for a service answering a query stream in which spellings repeat
and keywords overlap.  :class:`SearchService` wraps one index bundle in
the layered, store-version-guarded caches a production deployment needs
(Section 6 of the paper measures exactly this interactive regime), and
makes concurrent serving safe while the incremental index mutates:

* **snapshot tier** — every request executes against a version-pinned
  :meth:`~repro.index.builder.PathIndexes.snapshot`; a writer bumping
  ``store.version`` triggers a new snapshot and flushes every cache
  below, exactly like the store's own query-acceleration and bound
  columns invalidate;
* **term-resolution tier** — query text -> resolved keywords, shared
  with the engine through the index's
  :class:`~repro.index.builder.TermResolutionCache`;
* **fragment tier** — per-keyword-tuple
  :class:`~repro.search.context.EnumerationContext` objects (root maps,
  candidate intersection, type partition, query bounds) plus per-keyword-
  *set* candidate-root lists, shared across queries with overlapping
  keywords in any order, across algorithms, and across ``k``;
* **result tier** — a bounded LRU of full
  :class:`~repro.search.result.SearchResult` objects keyed by
  :attr:`~repro.search.plan.QueryPlan.cache_key`.

Every cache entry is tagged with the store version it was computed at
and ignored when it does not match the version being served, so a writer
racing a reader can at worst cause recomputation, never a stale answer.

Batch execution (:meth:`SearchService.search_many`) plans every query
up front, deduplicates equal plans, and executes the remainder on a
thread pool over one shared snapshot (CPython threads interleave rather
than parallelize CPU-bound work, but the shared snapshot and caches are
what matter; pass ``processes=N`` on fork-capable platforms for true
parallel execution — kept subtrees cross back as portable
``PathEntry`` tuples).

Everything served is **bit-identical** to a cold
``TableAnswerEngine.search()`` — caches only ever short-circuit pure
recomputation — which the differential tests in
``tests/search/test_service.py`` enforce.  See ``docs/serving.md``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.errors import SearchError, StalePlanError
from repro.index.builder import PathIndexes, build_indexes
from repro.kg.graph import KnowledgeGraph
from repro.scoring.function import PAPER_DEFAULT, ScoringFunction
from repro.search.context import EnumerationContext
from repro.search.plan import (
    QueryPlan,
    execute_plan,
    plan_search,
    reject_plan_overrides,
)
from repro.search.result import SearchResult


@dataclass
class ServiceStats:
    """Per-tier cache counters for one :class:`SearchService`.

    Counters are updated through :meth:`bump`, which serializes on the
    stats object's own lock: the threaded ``search_many`` path and the
    async HTTP front-end (:mod:`repro.serve.http`) increment these from
    many threads at once, and a bare ``+=`` is a read-modify-write that
    can drop updates between bytecodes.  Reads stay lock-free — a report
    racing a writer can at worst be one increment behind.
    """

    searches: int = 0
    #: Result-cache tier.
    result_hits: int = 0
    result_misses: int = 0
    #: Fragment tier (shared EnumerationContext per keyword tuple).
    context_hits: int = 0
    context_misses: int = 0
    #: Candidate-root fragments reused across word orders.
    candidate_hits: int = 0
    #: Term-resolution tier (mirrored from the index's cache).
    resolution_hits: int = 0
    resolution_misses: int = 0
    #: Snapshot tier.
    snapshots_taken: int = 0
    invalidations: int = 0
    #: Batch execution.
    batches: int = 0
    batch_queries: int = 0
    batch_deduped: int = 0
    #: Cold-start: wall-clock seconds the deserializer spent on the served
    #: bundle (0.0 when it was built in-process rather than loaded).
    load_seconds: float = 0.0
    #: Execution backend self-description: ``inline`` (plain service),
    #: ``sharded`` (scatter–gather worker pool), or ``fork-pool`` /
    #: ``fork-pool+sharded`` (the HTTP process-pool bridge).  Workers is
    #: the configured parallel width (0 = no pool).
    execution_backend: str = "inline"
    execution_workers: int = 0
    #: Pool-backed services: dead-worker inline failovers and
    #: version-driven pool rebuilds.
    worker_failovers: int = 0
    pool_rebuilds: int = 0
    #: Delta-overlay compactions run through this service (explicit
    #: :meth:`SearchService.compact` calls + ratio-triggered
    #: auto-compacts).
    compactions: int = 0
    #: Guards counter increments (see class docstring); excluded from
    #: equality so two stats blocks with equal counters compare equal.
    lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump(self, **deltas: int) -> None:
        """Atomically add ``deltas`` to the named counters."""
        with self.lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    @staticmethod
    def _rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    def result_hit_rate(self) -> float:
        return self._rate(self.result_hits, self.result_misses)

    def context_hit_rate(self) -> float:
        return self._rate(self.context_hits, self.context_misses)

    def resolution_hit_rate(self) -> float:
        return self._rate(self.resolution_hits, self.resolution_misses)

    def format(self) -> str:
        cold_start = (
            f"cold start {self.load_seconds * 1000.0:.1f} ms, "
            if self.load_seconds
            else ""
        )
        backend = self.execution_backend
        if self.execution_workers:
            backend += f" x{self.execution_workers}"
        if self.worker_failovers:
            backend += f", {self.worker_failovers} worker failovers"
        compactions = (
            f", {self.compactions} compactions" if self.compactions else ""
        )
        return (
            f"service: {cold_start}backend {backend}, "
            f"{self.searches} searches, "
            f"result cache {self.result_hits}/"
            f"{self.result_hits + self.result_misses} hits "
            f"({self.result_hit_rate():.0%}), "
            f"context cache {self.context_hits}/"
            f"{self.context_hits + self.context_misses} hits "
            f"({self.context_hit_rate():.0%}), "
            f"resolution cache {self.resolution_hit_rate():.0%}, "
            f"{self.snapshots_taken} snapshots "
            f"({self.invalidations} invalidations{compactions})"
        )


#: Module global for fork-based batch execution: workers inherit the
#: service (snapshot, caches, and all) through the forked address space;
#: nothing is pickled on the way in.
_FORK_SERVICE: Optional["SearchService"] = None


def _fork_execute(plan: QueryPlan) -> SearchResult:
    result = _FORK_SERVICE.execute(plan)
    for answer in result.answers:
        # Kept subtree combos are ComboRef views holding a store
        # reference; materialize them to value-equal PathEntry tuples in
        # the child — the same portable-row form the shard and HTTP fork
        # pools ship — so the result can be pickled back to the parent.
        answer.subtrees = [tuple(combo) for combo in answer.subtrees]
    return result


class SearchService:
    """Load once, serve many: cached, snapshot-consistent query serving."""

    def __init__(
        self,
        indexes: PathIndexes,
        scoring: ScoringFunction = PAPER_DEFAULT,
        max_cached_results: int = 256,
        max_cached_contexts: int = 128,
        auto_compact_ratio: float = 0.0,
    ) -> None:
        if indexes.is_snapshot:
            raise SearchError(
                "SearchService owns the live index bundle and takes its "
                "own snapshots; pass the live PathIndexes, not a snapshot"
            )
        self.indexes = indexes
        self.scoring = scoring
        self.max_cached_results = max_cached_results
        self.max_cached_contexts = max_cached_contexts
        #: Where the served bundle came off disk (set by ``from_file``) —
        #: the default compaction target.
        self.index_path: Optional[Path] = None
        #: When > 0, :meth:`maybe_compact` folds the delta overlay back
        #: into the index file once ``overlay_postings >= ratio *
        #: base_postings`` (checked on writer ticks — ``invalidate``).
        self.auto_compact_ratio = auto_compact_ratio
        #: Serializes compactions: a second trigger skips rather than
        #: queueing behind the O(index) streaming write.
        self._compact_lock = threading.Lock()
        self.stats = ServiceStats(
            load_seconds=getattr(indexes, "load_seconds", 0.0)
        )
        #: Guards snapshot swaps and cache-structure mutations.  Never
        #: held across an execution — searches run lock-free against the
        #: snapshot they grabbed.
        self._lock = threading.Lock()
        self._snapshot: Optional[PathIndexes] = None
        # Cache values are (store_version, payload): an entry whose tag
        # does not match the serving snapshot's version is a miss, so a
        # writer racing these dicts can only cause recomputation.
        self._results: "OrderedDict[Tuple, Tuple[int, SearchResult]]" = (
            OrderedDict()
        )
        self._contexts: "OrderedDict[Tuple[str, ...], Tuple[int, EnumerationContext]]" = (
            OrderedDict()
        )
        # Bounded like the context tier (it grows at the same rate: one
        # entry per distinct keyword set served).
        self._candidates: "OrderedDict[FrozenSet[str], Tuple[int, List[int]]]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------ lifecycle

    @classmethod
    def from_graph(cls, graph: KnowledgeGraph, d: int = 3, **kwargs):
        """Build indexes for ``graph`` and serve them."""
        scoring = kwargs.pop("scoring", PAPER_DEFAULT)
        return cls(build_indexes(graph, d=d, **kwargs), scoring=scoring)

    @classmethod
    def from_file(cls, path, **kwargs) -> "SearchService":
        """Load a persisted index bundle (``repro build``) and serve it."""
        from repro.index.serialize import load_indexes

        service = cls(load_indexes(path), **kwargs)
        service.index_path = Path(path)
        return service

    def snapshot(self) -> PathIndexes:
        """The current serving snapshot, refreshed if the store moved.

        Comparing the pinned version against the live ``store.version``
        is the entire invalidation protocol: writers (incremental
        updates) bump it, the next request notices, re-snapshots, and
        flushes every version-dependent cache tier.  In-flight searches
        keep the snapshot they grabbed and stay consistent.
        """
        live_version = self.indexes.store.version
        snap = self._snapshot
        if snap is not None and snap.store.version == live_version:
            return snap
        with self._lock:
            snap = self._snapshot
            if snap is not None and snap.store.version == live_version:
                return snap  # another thread refreshed while we waited
            if snap is not None:
                self.stats.bump(invalidations=1)
            self._snapshot = self.indexes.snapshot()
            self.stats.bump(snapshots_taken=1)
            self._results.clear()
            self._contexts.clear()
            self._candidates.clear()
            return self._snapshot

    def close(self) -> None:
        """Release serving resources; a no-op here, overridden by
        :class:`~repro.search.sharding.ShardedSearchService` (worker
        pool).  Callers that may hold either flavor (the CLI) can call
        it unconditionally."""

    def __enter__(self) -> "SearchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def invalidate(self) -> None:
        """Drop the snapshot and every cache tier (next request rebuilds).

        Writer ticks land here, so this is also where ratio-triggered
        auto-compaction is checked — off the query path, after the lock
        is released (the compaction itself serializes on the store
        lock, not on the cache-structure lock)."""
        with self._lock:
            if self._snapshot is not None:
                self.stats.bump(invalidations=1)
            self._snapshot = None
            self._results.clear()
            self._contexts.clear()
            self._candidates.clear()
        self.maybe_compact()

    # ----------------------------------------------------------- compaction

    def _compact_shards(self) -> int:
        """How many shards a compaction of this service should write
        (overridden by the partitioned serving backends, so the
        compacted file preserves their K and the fresh mapped partition
        is adopted without a re-partition)."""
        return 0

    def _adopt_compaction(self, outcome: dict) -> None:
        """Subclass hook: absorb the compaction outcome (e.g. adopt the
        fresh mapped shard partition) before the version-guard protocol
        rebuilds pools and caches."""

    def compact(self, path=None) -> dict:
        """Fold the mapped store's delta overlay into a fresh v3 file.

        Streams base ⊕ overlay to ``path`` (default: the file the
        service was loaded from) and atomically re-maps the live store
        (:func:`~repro.index.serialize.compact_indexes`).  The re-map's
        version bump rides the existing invalidation protocol: the next
        request re-snapshots and flushes every cache tier, and
        pool-backed services re-fork their workers from the re-mapped
        generation — never from a heap copy.  Returns the compaction
        outcome ``{"bytes", "generation", "sharded"}``.
        """
        from repro.index.serialize import compact_indexes

        target = Path(path) if path is not None else self.index_path
        if target is None:
            raise SearchError(
                "compact() needs a target path: this service was not "
                "loaded from a file (pass path=...)"
            )
        outcome = compact_indexes(
            self.indexes, target, num_shards=self._compact_shards()
        )
        self._adopt_compaction(outcome)
        self.stats.bump(compactions=1)
        return outcome

    def maybe_compact(self) -> bool:
        """Auto-compaction trigger: compact when the overlay has grown
        past ``auto_compact_ratio`` of the mapped base.

        The check is O(1) (two counters on the store) and a no-op for
        heap-resident or overlay-free stores; at most one compaction
        runs at a time — a racing trigger skips instead of queueing.
        Returns whether a compaction ran.
        """
        ratio = self.auto_compact_ratio
        if not ratio or self.index_path is None:
            return False
        store = self.indexes.store

        def due() -> bool:
            overlay = getattr(store, "overlay_postings", 0)
            base = getattr(store, "base_postings", 0)
            return overlay >= ratio * max(1, base)

        if not due():
            return False
        if not self._compact_lock.acquire(blocking=False):
            return False
        try:
            if not due():  # the racing winner already compacted
                return False
            self.compact()
            return True
        finally:
            self._compact_lock.release()

    # ------------------------------------------------------------- planning

    def plan(self, query, k: Optional[int] = None,
             algorithm: Optional[str] = None,
             scoring: Optional[ScoringFunction] = None, **params) -> QueryPlan:
        """Plan ``query`` against the current snapshot.

        Resolution goes through the shared term-resolution cache; the
        service mirrors its counters into :attr:`stats`.
        """
        return self._plan_on(self.snapshot(), query, k, algorithm,
                             scoring, params)

    def _plan_on(self, snap: PathIndexes, query, k, algorithm,
                 scoring, params) -> QueryPlan:
        cache = snap.resolution_cache
        before = (cache.hits, cache.misses) if cache is not None else (0, 0)
        plan = plan_search(
            snap, query, k=k, algorithm=algorithm,
            scoring=scoring if scoring is not None else self.scoring,
            **params,
        )
        if cache is not None:
            self.stats.bump(
                resolution_hits=cache.hits - before[0],
                resolution_misses=cache.misses - before[1],
            )
        return plan

    # ------------------------------------------------------------ searching

    def search(self, query=None, k: Optional[int] = None,
               algorithm: Optional[str] = None,
               scoring: Optional[ScoringFunction] = None,
               plan: Optional[QueryPlan] = None, **params) -> SearchResult:
        """Serve one query through every cache tier.

        Same signature and bit-identical answers as
        :meth:`TableAnswerEngine.search <repro.search.engine.\
TableAnswerEngine.search>`; on a result-cache hit the returned object
        shares the cached answers but carries a stats copy flagged
        ``from_result_cache``.
        """
        snap = self.snapshot()
        if plan is None:
            if query is None:
                raise SearchError("search needs a query (or a plan)")
            plan = self._plan_on(snap, query, k, algorithm, scoring, params)
        else:
            reject_plan_overrides(k, algorithm, scoring, params)
        self.stats.bump(searches=1)
        self._check_version(plan, snap)
        cached = self._cached_result(plan)
        if cached is not None:
            return cached
        result = self._execute_on(snap, plan)
        self._store_result(plan, result)
        return result

    def execute(self, plan: QueryPlan) -> SearchResult:
        """Execute a plan against the snapshot, bypassing the result cache
        (but still sharing the fragment tier)."""
        snap = self.snapshot()
        self._check_version(plan, snap)
        return self._execute_on(snap, plan)

    def _check_version(self, plan: QueryPlan, snap: PathIndexes) -> None:
        if plan.store_version != snap.store.version:
            raise StalePlanError(
                f"plan was built against store version {plan.store_version},"
                f" but the service now serves {snap.store.version}; replan"
            )

    def _execute_on(self, snap: PathIndexes, plan: QueryPlan) -> SearchResult:
        context = self._context_for(snap, plan)
        result = execute_plan(snap, plan, context=context)
        self._remember_candidates(plan, context)
        return result

    def search_many(
        self,
        queries: Sequence,
        k: Optional[int] = None,
        algorithm: Optional[str] = None,
        scoring: Optional[ScoringFunction] = None,
        threads: int = 0,
        processes: int = 0,
        **params,
    ) -> List[SearchResult]:
        """Answer a batch of queries, returning results in input order.

        All queries are planned up front against one shared snapshot,
        equal plans are deduplicated (executed once, fanned out), result-
        cache hits are served immediately, and the remaining unique plans
        execute on a thread pool of ``threads`` workers (``0``/``1`` =
        inline).  ``processes=N`` (N >= 1; always forks, so ``1`` is a
        single isolated worker, not inline) instead forks workers for
        genuinely parallel execution on a platform with ``fork``; kept
        subtrees come back as materialized, value-equal
        :class:`~repro.index.entry.PathEntry` tuples (combos are
        portable-ized in the child before crossing the pipe).
        """
        if processes and threads:
            raise SearchError("pass threads= or processes=, not both")
        self.stats.bump(batches=1, batch_queries=len(queries))
        snap = self.snapshot()
        plans = [
            self._plan_on(snap, query, k, algorithm, scoring, params)
            for query in queries
        ]
        self.stats.bump(searches=len(plans))

        # Dedup equal plans and peel off result-cache hits.
        slots: List[Optional[SearchResult]] = [None] * len(plans)
        unique: "OrderedDict[Tuple, List[int]]" = OrderedDict()
        for i, plan in enumerate(plans):
            cached = self._cached_result(plan)
            if cached is not None:
                slots[i] = cached
                continue
            key = plan.cache_key if plan.cacheable else ("#uncached", i)
            unique.setdefault(key, []).append(i)
        pending = [plans[positions[0]] for positions in unique.values()]
        self.stats.bump(batch_deduped=sum(
            len(positions) - 1 for positions in unique.values()
        ))

        if pending:
            run = lambda plan: self._execute_on(snap, plan)  # noqa: E731
            if processes > 0 or threads > 1:
                # One-time per-snapshot column builds happen before the
                # fan-out: forked children would each rebuild them, and
                # threads would race the same (idempotent) work.
                snap.store.warm_query_caches()
            if processes > 0:
                results = self._execute_forked(pending, processes)
            elif threads > 1:
                with ThreadPoolExecutor(max_workers=threads) as pool:
                    results = list(pool.map(run, pending))
            else:
                results = [run(plan) for plan in pending]
            for plan, result, positions in zip(
                pending, results, unique.values()
            ):
                self._store_result(plan, result)
                slots[positions[0]] = result
                for position in positions[1:]:
                    slots[position] = self._flag_cached(result)
        return slots

    def _execute_forked(
        self, pending: List[QueryPlan], processes: int
    ) -> List[SearchResult]:
        import multiprocessing

        global _FORK_SERVICE
        try:
            fork = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-fork platform
            raise SearchError(f"processes= requires fork: {exc}") from exc
        _FORK_SERVICE = self
        try:
            with fork.Pool(processes=processes) as pool:
                return pool.map(_fork_execute, pending)
        finally:
            _FORK_SERVICE = None

    # -------------------------------------------------------------- caching

    def _cached_result(self, plan: QueryPlan) -> Optional[SearchResult]:
        if not plan.cacheable:
            self.stats.bump(result_misses=1)
            return None
        key = plan.cache_key
        with self._lock:
            slot = self._results.get(key)
            if slot is None or slot[0] != plan.store_version:
                self.stats.bump(result_misses=1)
                return None
            self._results.move_to_end(key)
            self.stats.bump(result_hits=1)
            result = slot[1]
        return self._flag_cached(result)

    @staticmethod
    def _flag_cached(result: SearchResult) -> SearchResult:
        """A served copy: shared answers, stats copy flagged as cached."""
        return replace(
            result, stats=replace(result.stats, from_result_cache=True)
        )

    def _store_result(self, plan: QueryPlan, result: SearchResult) -> None:
        if not plan.cacheable or self.max_cached_results <= 0:
            return
        if self.indexes.store.version != plan.store_version:
            # A writer ran while this result was being computed.  Index-
            # backed algorithms stayed consistent (pinned snapshot), but
            # the baseline walks the live graph and may have observed a
            # mid-update state — and either way the entry would be
            # evicted by the version flush momentarily.  Skip caching;
            # the cost is one recomputation.
            return
        with self._lock:
            self._results[plan.cache_key] = (plan.store_version, result)
            self._results.move_to_end(plan.cache_key)
            while len(self._results) > self.max_cached_results:
                self._results.popitem(last=False)

    def _context_for(
        self, snap: PathIndexes, plan: QueryPlan
    ) -> EnumerationContext:
        """The fragment tier: one shared context per resolved keyword tuple.

        Contexts memoize root maps, the candidate intersection, the type
        partition, and query bounds — everything per-query that does not
        depend on k, algorithm, or pruning flags — so repeat keywords pay
        the setup once per snapshot.  For an unseen keyword *order*, the
        candidate intersection is seeded from any previously-served
        permutation of the same keyword set.
        """
        words = plan.words
        version = snap.store.version
        candidates = None
        with self._lock:
            slot = self._contexts.get(words)
            if slot is not None and slot[0] == version:
                self._contexts.move_to_end(words)
                self.stats.bump(context_hits=1)
                return slot[1]
            self.stats.bump(context_misses=1)
            fragment = self._candidates.get(frozenset(words))
            if fragment is not None and fragment[0] == version:
                candidates = fragment[1]
                self.stats.bump(candidate_hits=1)
        context = EnumerationContext(
            snap, plan.resolved_query(), candidate_roots=candidates
        )
        with self._lock:
            slot = self._contexts.get(words)
            if slot is not None and slot[0] == version:
                return slot[1]  # lost a benign race; share the winner
            self._contexts[words] = (version, context)
            self._contexts.move_to_end(words)
            while len(self._contexts) > self.max_cached_contexts:
                self._contexts.popitem(last=False)
        return context

    def _remember_candidates(
        self, plan: QueryPlan, context: EnumerationContext
    ) -> None:
        """Publish the context's candidate intersection for other word
        orders of the same keyword set (computed by now: every algorithm
        walks the candidate roots)."""
        candidates = context._candidates
        if candidates is None:
            return
        key = frozenset(plan.words)
        with self._lock:
            slot = self._candidates.get(key)
            if slot is None or slot[0] != plan.store_version:
                self._candidates[key] = (plan.store_version, candidates)
                self._candidates.move_to_end(key)
                while len(self._candidates) > self.max_cached_contexts:
                    self._candidates.popitem(last=False)

    # ------------------------------------------------------------ reporting

    def cache_sizes(self) -> Dict[str, int]:
        return {
            "results": len(self._results),
            "contexts": len(self._contexts),
            "candidate_fragments": len(self._candidates),
            "resolutions": (
                len(self.indexes.resolution_cache)
                if self.indexes.resolution_cache is not None
                else 0
            ),
        }

    def __repr__(self) -> str:
        snap = self._snapshot
        version = snap.store.version if snap is not None else None
        return (
            f"SearchService(store_version={version}, "
            f"cached_results={len(self._results)}, "
            f"cached_contexts={len(self._contexts)})"
        )
