"""PATTERNENUM / PETopK — Algorithm 2 of the paper.

Enumerates candidate tree patterns as combinations of per-keyword path
patterns from the *pattern-first* index: for each root type ``C``, take the
cross product of ``Patterns_C(w_i)``; for every combination intersect the
pattern's root sets (``Roots(w_i, P_i)``) to test emptiness; for non-empty
patterns, join the paths at each shared root to produce the valid subtrees,
score, and maintain a size-k queue.

Engineering refinements over the pseudo-code:

* the cross product is walked depth-first with *incremental* root-set
  intersection, so combinations sharing a pattern prefix share the
  prefix's intersection work and a dead prefix prunes its whole subtree
  (counted as checked-and-empty, keeping the statistics comparable).
  Worst-case behaviour is unchanged — the Section 4.1 adversarial graph
  still forces Theta(p^m) emptiness checks, which the tests assert — it
  is the constant factor that drops;
* the per-root path join is id-based: posting lists are iterated as
  ``(path_id, sim)`` scalar pairs, validity and scoring go through the
  columnar store, and no :class:`~repro.index.entry.PathEntry` is
  materialized during enumeration;
* with ``prune=True`` (default), admissible score upper bounds drive
  top-k early termination: root types are visited in descending
  upper-bound order (so the k-th score tightens fast) and skipped
  outright once their bound falls below it, and inside the depth-first
  pattern walk every prefix carries an upper bound over all its
  completions — a failing prefix prunes its whole subtree of pattern
  combinations before any path join runs.  Pruned and unpruned searches
  return bit-identical answers (``docs/pruning.md``; differential tests
  in ``tests/search/test_pruning.py``).

Fast in practice (no online aggregation dictionary; subtrees of a pattern
are produced all at once) but worst-case exponential, unlike LINEARENUM.
"""

from __future__ import annotations

from itertools import product
from typing import List, Mapping, Optional, Sequence

from repro.core.topk import TopKQueue, TopKThreshold
from repro.index.builder import PathIndexes
from repro.search.bounds import SAFETY
from repro.search.context import EnumerationContext, ensure_context
from repro.scoring.function import PAPER_DEFAULT, ScoringFunction
from repro.search.expand import pair_rows, pair_scorer
from repro.search.result import (
    ComboRef,
    PatternAnswer,
    SearchResult,
    SearchStats,
    Stopwatch,
    order_answers,
    pattern_from_key,
)


#: Queries whose estimated subtree count (N_R, from posting counts alone)
#: stays below this run unpruned: bound bookkeeping would dominate.
_PRUNE_MIN_SUBTREES = 256


def pattern_enum_search(
    indexes: PathIndexes,
    query,
    k: int = 100,
    scoring: ScoringFunction = PAPER_DEFAULT,
    keep_subtrees: bool = True,
    prune: bool = True,
    context: Optional[EnumerationContext] = None,
) -> SearchResult:
    """Find the top-k d-height tree patterns by pattern enumeration.

    ``prune=True`` (default) enables bound-driven top-k early
    termination; answers are bit-identical either way, only the work (and
    the stats counters) differ.  ``prune=False`` reproduces the
    exhaustive walk — the shape the worst-case analyses and the
    entry-based reference oracle count.
    """
    watch = Stopwatch()
    stats = SearchStats(algorithm="pattern_enum")
    context = ensure_context(indexes, query, context)
    words = context.words
    store = context.store
    pattern_first = indexes.pattern_first
    form_tree = store.pairs_checker()
    score = pair_scorer(store, scoring)
    m = len(words)

    # Root types viable for *all* keywords; equivalent to the paper's loop
    # over every type (types missing for some keyword yield no patterns).
    viable_types = context.viable_types()

    queue: TopKQueue = TopKQueue(k)
    threshold = TopKThreshold(queue)
    bounds = context.query_bounds(scoring) if prune else None
    if bounds is not None:
        # Adaptive gate: below a few hundred candidate subtrees (the
        # paper's N_R estimate, counts only) the whole query costs less
        # than the bound bookkeeping — run exhaustively.
        total_work = 0
        for root in context.candidate_roots:
            per_root = 1
            for i in range(m):
                per_root *= context.path_count(i, root)
            total_work += per_root
            if total_work >= _PRUNE_MIN_SUBTREES:
                break
        if total_work < _PRUNE_MIN_SUBTREES:
            bounds = None
    seen_roots = set()

    def evaluate_leaf(
        pid_combo: Sequence[int],
        root_maps: Sequence[Mapping[int, Sequence]],
        roots: Sequence[int],
    ) -> None:
        stats.patterns_checked += 1
        seen_roots.update(roots)
        aggregate = scoring.running()
        trees = [] if keep_subtrees else None
        for root in sorted(roots):
            pair_lists = [
                pair_rows(root_map[root]) for root_map in root_maps
            ]
            for pair_combo in product(*pair_lists):
                stats.subtrees_enumerated += 1
                if not form_tree(pair_combo):
                    stats.tree_check_rejections += 1
                    continue
                aggregate.add(score(pair_combo))
                if trees is not None:
                    trees.append(ComboRef(store, pair_combo))
        if aggregate.count == 0:
            # All path combinations failed the tree-validity check.
            stats.empty_patterns += 1
            return
        stats.nonempty_patterns += 1
        key = tuple(pid_combo)
        canonical = tuple(
            (indexes.interner.pattern(pid).labels,
             indexes.interner.pattern(pid).ends_at_edge)
            for pid in key
        )
        queue.push(
            aggregate.value(),
            (key, aggregate.count, trees if trees is not None else []),
            tie_key=canonical,
        )

    if bounds is not None:
        # Visit types best-first so the k-th score tightens fast; once a
        # type's bound falls below it, every pattern of that type is out.
        by_type = context.roots_by_type(indexes.graph)
        type_uppers = {
            root_type: SAFETY * sum(
                bounds.root_mass(root)
                for root in by_type.get(root_type, ())
            )
            for root_type in viable_types
        }
        type_order = sorted(
            viable_types, key=lambda t: (-type_uppers[t], t)
        )
    else:
        type_order = sorted(viable_types)

    for root_type in type_order:
        if bounds is not None and not threshold.admits(
            type_uppers[root_type]
        ):
            stats.roots_skipped += len(by_type.get(root_type, ()))
            continue
        per_word_patterns = [
            pattern_first.patterns_rooted_at(word, root_type)
            for word in words
        ]
        if any(not patterns for patterns in per_word_patterns):
            continue
        # Number of full combinations below a pruned prefix: suffix
        # products of the per-word pattern counts, recomputed per root
        # type.
        suffix_combos = [1] * (m + 1)
        for i in range(m - 1, -1, -1):
            suffix_combos[i] = suffix_combos[i + 1] * len(per_word_patterns[i])

        pid_combo: List[int] = [0] * m
        root_maps: List[Mapping[int, Sequence]] = [{}] * m
        root_mass = bounds.root_mass if bounds is not None else None

        def descend(depth: int, roots) -> None:
            if depth == m:
                evaluate_leaf(pid_combo, root_maps, roots)
                return
            word = words[depth]
            for pid in per_word_patterns[depth]:
                pruning = root_mass is not None and queue.is_full
                if pruning and not threshold.admits(
                    bounds.pid_upper(depth, pid)
                ):
                    # No pattern through this path pattern can reach the
                    # k-th score: the whole product slice dies before the
                    # intersection is even computed.
                    stats.prefixes_skipped += suffix_combos[depth + 1]
                    continue
                root_map = pattern_first.roots(word, pid)
                if pruning:
                    # Fold the cheap per-root mass bound into the
                    # intersection pass itself: one cached lookup and one
                    # add per surviving root.
                    new_roots = []
                    mass = 0.0
                    for root in (root_map if depth == 0 else roots):
                        if depth == 0 or root in root_map:
                            new_roots.append(root)
                            mass += root_mass(root)
                elif depth == 0:
                    new_roots = list(root_map)
                else:
                    new_roots = [r for r in roots if r in root_map]
                if not new_roots:
                    # Every completion of this prefix is an empty pattern;
                    # account for them all to stay comparable with the
                    # paper's "p^m combinations checked".
                    skipped = suffix_combos[depth + 1]
                    stats.patterns_checked += skipped
                    stats.empty_patterns += skipped
                    continue
                pid_combo[depth] = pid
                if pruning:
                    # Cheap admissible bound over *every* completion of
                    # this prefix: below the k-th score, the whole
                    # subtree of pattern combinations is dead (counted,
                    # not checked).
                    if not threshold.admits(mass * SAFETY):
                        stats.prefixes_skipped += suffix_combos[depth + 1]
                        continue
                    if depth + 1 == m:
                        # The join is imminent: pay one tight per-keyword
                        # bound to skip it when the pattern cannot reach
                        # the k-th score.
                        upper = bounds.pattern_upper_at_roots(
                            pid_combo, m, new_roots
                        )
                        if not threshold.admits(upper):
                            stats.prefixes_skipped += 1
                            continue
                root_maps[depth] = root_map
                descend(depth + 1, new_roots)

        descend(0, None)

    if bounds is not None:
        threshold.write_stats(stats)
    stats.candidate_roots = len(seen_roots)
    answers = []
    for score, (pid_combo_key, count, trees) in queue.ranked():
        answers.append(
            PatternAnswer(
                pattern_key=pid_combo_key,
                pattern=pattern_from_key(indexes, pid_combo_key),
                score=score,
                num_subtrees=count,
                subtrees=trees,
            )
        )
    order_answers(answers)
    stats.elapsed_seconds = watch.elapsed()
    return SearchResult(
        query=words, k=k, d=indexes.d, answers=answers, stats=stats
    )
