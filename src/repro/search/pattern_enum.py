"""PATTERNENUM / PETopK — Algorithm 2 of the paper.

Enumerates candidate tree patterns as combinations of per-keyword path
patterns from the *pattern-first* index: for each root type ``C``, take the
cross product of ``Patterns_C(w_i)``; for every combination intersect the
pattern's root sets (``Roots(w_i, P_i)``) to test emptiness; for non-empty
patterns, join the paths at each shared root to produce the valid subtrees,
score, and maintain a size-k queue.

Engineering refinements over the pseudo-code:

* the cross product is walked depth-first with *incremental* root-set
  intersection, so combinations sharing a pattern prefix share the
  prefix's intersection work and a dead prefix prunes its whole subtree
  (counted as checked-and-empty, keeping the statistics comparable).
  Worst-case behaviour is unchanged — the Section 4.1 adversarial graph
  still forces Theta(p^m) emptiness checks, which the tests assert — it
  is the constant factor that drops;
* the per-root path join is id-based: posting lists are iterated as
  ``(path_id, sim)`` scalar pairs, validity and scoring go through the
  columnar store, and no :class:`~repro.index.entry.PathEntry` is
  materialized during enumeration.

Fast in practice (no online aggregation dictionary; subtrees of a pattern
are produced all at once) but worst-case exponential, unlike LINEARENUM.
"""

from __future__ import annotations

from itertools import product
from typing import List, Mapping, Optional, Sequence

from repro.core.topk import TopKQueue
from repro.index.builder import PathIndexes
from repro.search.context import EnumerationContext, ensure_context
from repro.scoring.function import PAPER_DEFAULT, ScoringFunction
from repro.search.expand import pair_rows, pair_scorer
from repro.search.result import (
    ComboRef,
    PatternAnswer,
    SearchResult,
    SearchStats,
    Stopwatch,
    order_answers,
    pattern_from_key,
)


def pattern_enum_search(
    indexes: PathIndexes,
    query,
    k: int = 100,
    scoring: ScoringFunction = PAPER_DEFAULT,
    keep_subtrees: bool = True,
    context: Optional[EnumerationContext] = None,
) -> SearchResult:
    """Find the top-k d-height tree patterns by pattern enumeration."""
    watch = Stopwatch()
    stats = SearchStats(algorithm="pattern_enum")
    context = ensure_context(indexes, query, context)
    words = context.words
    store = context.store
    pattern_first = indexes.pattern_first
    form_tree = store.pairs_checker()
    score = pair_scorer(store, scoring)
    m = len(words)

    # Root types viable for *all* keywords; equivalent to the paper's loop
    # over every type (types missing for some keyword yield no patterns).
    viable_types = context.viable_types()

    queue: TopKQueue = TopKQueue(k)
    seen_roots = set()

    def evaluate_leaf(
        pid_combo: Sequence[int],
        root_maps: Sequence[Mapping[int, Sequence]],
        roots: Sequence[int],
    ) -> None:
        stats.patterns_checked += 1
        seen_roots.update(roots)
        aggregate = scoring.running()
        trees = [] if keep_subtrees else None
        for root in sorted(roots):
            pair_lists = [
                pair_rows(root_map[root]) for root_map in root_maps
            ]
            for pair_combo in product(*pair_lists):
                stats.subtrees_enumerated += 1
                if not form_tree(pair_combo):
                    stats.tree_check_rejections += 1
                    continue
                aggregate.add(score(pair_combo))
                if trees is not None:
                    trees.append(ComboRef(store, pair_combo))
        if aggregate.count == 0:
            # All path combinations failed the tree-validity check.
            stats.empty_patterns += 1
            return
        stats.nonempty_patterns += 1
        key = tuple(pid_combo)
        canonical = tuple(
            (indexes.interner.pattern(pid).labels,
             indexes.interner.pattern(pid).ends_at_edge)
            for pid in key
        )
        queue.push(
            aggregate.value(),
            (key, aggregate.count, trees if trees is not None else []),
            tie_key=canonical,
        )

    for root_type in sorted(viable_types):
        per_word_patterns = [
            pattern_first.patterns_rooted_at(word, root_type)
            for word in words
        ]
        if any(not patterns for patterns in per_word_patterns):
            continue
        # Number of full combinations below a pruned prefix: suffix
        # products of the per-word pattern counts, recomputed per root
        # type.
        suffix_combos = [1] * (m + 1)
        for i in range(m - 1, -1, -1):
            suffix_combos[i] = suffix_combos[i + 1] * len(per_word_patterns[i])

        pid_combo: List[int] = [0] * m
        root_maps: List[Mapping[int, Sequence]] = [{}] * m

        def descend(depth: int, roots) -> None:
            if depth == m:
                evaluate_leaf(pid_combo, root_maps, roots)
                return
            word = words[depth]
            for pid in per_word_patterns[depth]:
                root_map = pattern_first.roots(word, pid)
                if depth == 0:
                    new_roots = list(root_map)
                else:
                    new_roots = [r for r in roots if r in root_map]
                if not new_roots:
                    # Every completion of this prefix is an empty pattern;
                    # account for them all to stay comparable with the
                    # paper's "p^m combinations checked".
                    skipped = suffix_combos[depth + 1]
                    stats.patterns_checked += skipped
                    stats.empty_patterns += skipped
                    continue
                pid_combo[depth] = pid
                root_maps[depth] = root_map
                descend(depth + 1, new_roots)

        descend(0, None)

    stats.candidate_roots = len(seen_roots)
    answers = []
    for score, (pid_combo_key, count, trees) in queue.ranked():
        answers.append(
            PatternAnswer(
                pattern_key=pid_combo_key,
                pattern=pattern_from_key(indexes, pid_combo_key),
                score=score,
                num_subtrees=count,
                subtrees=trees,
            )
        )
    order_answers(answers)
    stats.elapsed_seconds = watch.elapsed()
    return SearchResult(
        query=words, k=k, d=indexes.d, answers=answers, stats=stats
    )
