"""The enumeration-aggregation baseline (Section 2.3).

Adapts backward search on database graphs (Bhalotia et al., BANKS) to our
setting: starting from every keyword occurrence, reverse edges are walked
to discover each root that reaches all keywords, valid subtrees are
enumerated one by one (time linear in tree size, "the best we can expect"),
and then — the bottleneck the paper calls out — subtrees are *grouped by
their tree patterns* in an in-memory dictionary and ranked.

The baseline deliberately does not touch the path indexes of Section 3; it
uses only the keyword-match tables and precomputed PageRank ("proper
preprocessing").  It does, however, share the id-based enumeration loop
with the index-backed algorithms: the paths its backward walks discover
(at candidate roots) are interned into a *query-local scratch*
:class:`~repro.index.store.PostingStore`, and expansion then runs on
integer path ids exactly like everyone else.  Kept subtrees are
materialized at the result boundary — unlike the index-backed
algorithms' lazy ComboRefs — so the scratch store is freed when the
query returns; with ``keep_subtrees=False`` no
:class:`~repro.index.entry.PathEntry` is built at all.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.errors import SearchError
from repro.core.topk import TopKQueue
from repro.index.builder import PathIndexes
from repro.index.path_enum import interleaved_labels, iter_reverse_paths_to
from repro.index.store import PostingStore
from repro.scoring.aggregate import RunningAggregate
from repro.search.context import EnumerationContext, ensure_context
from repro.scoring.function import PAPER_DEFAULT, ScoringFunction
from repro.search.expand import expand_root, pair_scorer
from repro.search.result import (
    ComboRef,
    PatternAnswer,
    SearchResult,
    SearchStats,
    Stopwatch,
    order_answers,
    pattern_from_labels,
)

#: Baseline pattern key: per-keyword (labels, ends_at_edge) pairs.
RawKey = Tuple[Tuple[Tuple[int, ...], bool], ...]

#: A scratch posting: integer path id into the query-local store + sim.
PairRow = Tuple[int, float]

#: A discovered-but-not-yet-interned path: the walk's raw output plus the
#: similarity of the keyword match that produced it.
RawRow = Tuple[Tuple[int, ...], Tuple[int, ...], bool, float, float]


def _backward_root_maps(
    indexes: PathIndexes, word: str, d: int
) -> Dict[int, Dict[object, List[RawRow]]]:
    """All root-to-``word`` paths found by reverse walks, grouped by root.

    Returns ``root -> ((labels, flag) -> [raw rows])`` — the same shape
    the root-first index would give, but computed online per query.  Rows
    stay raw ``(nodes, attrs, matched_on_edge, pr, sim)`` tuples here:
    most discovered roots do not survive the per-keyword intersection, so
    interning into the scratch store is deferred until the candidate
    roots are known (see :func:`_intern_candidates`).
    """
    graph = indexes.graph
    lexicon = indexes.lexicon
    ranks = indexes.pagerank_scores
    out: Dict[int, Dict[object, List[RawRow]]] = {}

    for node, sim in lexicon.nodes_with_word(word).items():
        pr = ranks[node]
        for nodes, attrs in iter_reverse_paths_to(graph, node, d):
            key = (interleaved_labels(graph, nodes, attrs), False)
            out.setdefault(nodes[0], {}).setdefault(key, []).append(
                (nodes, attrs, False, pr, sim)
            )

    if d >= 2:
        for attr, sim in lexicon.attrs_with_word(word).items():
            for source, target in graph.edges_with_attr(attr):
                pr = ranks[source]
                for nodes, attrs in iter_reverse_paths_to(graph, source, d - 1):
                    if target in nodes:
                        continue  # keep the whole path simple
                    key = (
                        interleaved_labels(graph, nodes, attrs) + (attr,),
                        True,
                    )
                    out.setdefault(nodes[0], {}).setdefault(key, []).append(
                        (nodes + (target,), attrs + (attr,), True, pr, sim)
                    )
    return out


def _intern_candidates(
    scratch: PostingStore,
    per_word_raw: List[Dict[int, Dict[object, List[RawRow]]]],
) -> Tuple[List[Dict[int, Dict[object, List[PairRow]]]], List[int]]:
    """Intern only the paths rooted at candidate roots into ``scratch``.

    Candidates are the roots present in every keyword's map; everything
    else was discovered by a walk but can never join a subtree, so it is
    dropped before paying the store append (and the store's query-column
    pre-shaping, which is linear in interned paths).  Returns the
    filtered per-word maps plus the sorted candidate list (so the walk
    context need not re-derive the intersection).  Row order within each
    pattern key is preserved, so enumeration order — and therefore every
    stats counter — matches interning everything.

    append_path (no intern lookup): the reverse walks enumerate each
    simple path at most once per keyword, and a path shared by two
    keywords may harmlessly occupy two scratch ids — the per-word maps
    never mix them.
    """
    candidates = set(per_word_raw[0])
    for raw_map in per_word_raw[1:]:
        candidates &= set(raw_map)
    append_path = scratch.append_path
    per_word: List[Dict[int, Dict[object, List[PairRow]]]] = []
    for raw_map in per_word_raw:
        root_map: Dict[int, Dict[object, List[PairRow]]] = {}
        for root, raw_patterns in raw_map.items():
            if root not in candidates:
                continue
            root_map[root] = {
                key: [
                    (append_path(nodes, attrs, moe, 0, pr), sim)
                    for nodes, attrs, moe, pr, sim in rows
                ]
                for key, rows in raw_patterns.items()
            }
        per_word.append(root_map)
    return per_word, sorted(candidates)


def baseline_search(
    indexes: PathIndexes,
    query,
    k: int = 100,
    scoring: ScoringFunction = PAPER_DEFAULT,
    keep_subtrees: bool = True,
    d: Optional[int] = None,
    context: Optional[EnumerationContext] = None,
) -> SearchResult:
    """Enumerate all valid subtrees, group by pattern, rank, return top-k.

    ``d`` defaults to the index's height threshold so results are
    comparable with the index-based algorithms; a smaller ``d`` may be
    passed (a larger one cannot be checked against the index and is
    allowed — the baseline does not read the index).  A shared ``context``
    contributes only the resolved keywords: the baseline builds its own
    scratch enumeration context from its backward walks.
    """
    watch = Stopwatch()
    stats = SearchStats(algorithm="baseline")
    if d is None:
        d = indexes.d
    if d < 1:
        raise SearchError(f"height threshold d must be >= 1, got {d}")
    words = ensure_context(indexes, query, context).words

    per_word_raw = [_backward_root_maps(indexes, w, d) for w in words]
    scratch = PostingStore.scratch()
    per_word, candidates = _intern_candidates(scratch, per_word_raw)
    # indexes=None: the scratch maps' counts and raw pattern keys must
    # never be answered from the real index views.
    walk_context = EnumerationContext.from_root_maps(
        scratch, words, per_word, candidate_roots=candidates
    )
    stats.candidate_roots = len(walk_context.candidate_roots)

    tree_dict: Dict[RawKey, Tuple[RunningAggregate, List]] = {}
    score = pair_scorer(scratch, scoring)

    def sink(key_combo, pairs) -> None:
        slot = tree_dict.get(key_combo)
        if slot is None:
            slot = tree_dict[key_combo] = (scoring.running(), [])
        slot[0].add(score(pairs))
        if keep_subtrees:
            slot[1].append(ComboRef(scratch, pairs))

    form_tree = scratch.pairs_checker()
    for root in walk_context.candidate_roots:
        stats.roots_expanded += 1
        expand_root(
            scratch, walk_context.pattern_maps(root), sink, stats, form_tree
        )

    stats.nonempty_patterns = len(tree_dict)
    queue: TopKQueue = TopKQueue(k)
    for key in sorted(tree_dict):
        aggregate, trees = tree_dict[key]
        queue.push(
            aggregate.value(), (key, aggregate.count, trees), tie_key=key
        )

    answers = []
    for score, (key, count, trees) in queue.ranked():
        answers.append(
            PatternAnswer(
                pattern_key=key,
                pattern=pattern_from_labels(key),
                score=score,
                num_subtrees=count,
                # Materialize at the boundary: a lazy ComboRef would pin
                # the whole query-local scratch store (every candidate
                # path) for the result's lifetime, while the k surviving
                # answers' entry tuples are self-contained — the same
                # memory profile as the pre-refactor baseline.
                subtrees=[combo.entries() for combo in trees],
            )
        )
    order_answers(answers)
    stats.elapsed_seconds = watch.elapsed()
    return SearchResult(
        query=words, k=k, d=d, answers=answers, stats=stats
    )
