"""The enumeration-aggregation baseline (Section 2.3).

Adapts backward search on database graphs (Bhalotia et al., BANKS) to our
setting: starting from every keyword occurrence, reverse edges are walked
to discover each root that reaches all keywords, valid subtrees are
enumerated one by one (time linear in tree size, "the best we can expect"),
and then — the bottleneck the paper calls out — subtrees are *grouped by
their tree patterns* in an in-memory dictionary and ranked.

The baseline deliberately does not touch the path indexes of Section 3; it
uses only the keyword-match tables and precomputed PageRank ("proper
preprocessing").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.errors import SearchError
from repro.core.topk import TopKQueue
from repro.index.builder import PathIndexes
from repro.index.entry import PathEntry
from repro.index.path_enum import interleaved_labels, iter_reverse_paths_to
from repro.scoring.aggregate import RunningAggregate
from repro.scoring.function import PAPER_DEFAULT, ScoringFunction
from repro.search.expand import combo_score, expand_root
from repro.search.result import (
    PatternAnswer,
    SearchResult,
    SearchStats,
    Stopwatch,
    order_answers,
    pattern_from_labels,
)

#: Baseline pattern key: per-keyword (labels, ends_at_edge) pairs.
RawKey = Tuple[Tuple[Tuple[int, ...], bool], ...]


def _backward_root_maps(
    indexes: PathIndexes, word: str, d: int
) -> Dict[int, Dict[object, List[PathEntry]]]:
    """All root-to-``word`` paths found by reverse walks, grouped by root.

    Returns ``root -> ((labels, flag) -> [PathEntry])``, the same shape the
    root-first index would give, but computed online per query.
    """
    graph = indexes.graph
    lexicon = indexes.lexicon
    ranks = indexes.pagerank_scores
    out: Dict[int, Dict[object, List[PathEntry]]] = {}

    for node, sim in lexicon.nodes_with_word(word).items():
        pr = ranks[node]
        for nodes, attrs in iter_reverse_paths_to(graph, node, d):
            entry = PathEntry(nodes, attrs, False, pr, sim)
            key = (interleaved_labels(graph, nodes, attrs), False)
            out.setdefault(nodes[0], {}).setdefault(key, []).append(entry)

    if d >= 2:
        for attr, sim in lexicon.attrs_with_word(word).items():
            for source, target in graph.edges_with_attr(attr):
                pr = ranks[source]
                for nodes, attrs in iter_reverse_paths_to(graph, source, d - 1):
                    if target in nodes:
                        continue  # keep the whole path simple
                    full_nodes = nodes + (target,)
                    full_attrs = attrs + (attr,)
                    entry = PathEntry(full_nodes, full_attrs, True, pr, sim)
                    key = (
                        interleaved_labels(graph, nodes, attrs) + (attr,),
                        True,
                    )
                    out.setdefault(nodes[0], {}).setdefault(key, []).append(
                        entry
                    )
    return out


def baseline_search(
    indexes: PathIndexes,
    query,
    k: int = 100,
    scoring: ScoringFunction = PAPER_DEFAULT,
    keep_subtrees: bool = True,
    d: Optional[int] = None,
) -> SearchResult:
    """Enumerate all valid subtrees, group by pattern, rank, return top-k.

    ``d`` defaults to the index's height threshold so results are
    comparable with the index-based algorithms; a smaller ``d`` may be
    passed (a larger one cannot be checked against the index and is
    allowed — the baseline does not read the index).
    """
    watch = Stopwatch()
    stats = SearchStats(algorithm="baseline")
    if d is None:
        d = indexes.d
    if d < 1:
        raise SearchError(f"height threshold d must be >= 1, got {d}")
    words = indexes.resolve_query(query)

    per_word = [_backward_root_maps(indexes, w, d) for w in words]

    candidates = set(per_word[0])
    for root_map in per_word[1:]:
        candidates &= set(root_map)
    stats.candidate_roots = len(candidates)

    tree_dict: Dict[RawKey, Tuple[RunningAggregate, List]] = {}

    def sink(key_combo, entry_combo) -> None:
        slot = tree_dict.get(key_combo)
        if slot is None:
            slot = tree_dict[key_combo] = (scoring.running(), [])
        slot[0].add(combo_score(scoring, entry_combo))
        if keep_subtrees:
            slot[1].append(entry_combo)

    for root in sorted(candidates):
        stats.roots_expanded += 1
        expand_root([root_map[root] for root_map in per_word], sink, stats)

    stats.nonempty_patterns = len(tree_dict)
    queue: TopKQueue = TopKQueue(k)
    for key in sorted(tree_dict):
        aggregate, trees = tree_dict[key]
        queue.push(
            aggregate.value(), (key, aggregate.count, trees), tie_key=key
        )

    answers = []
    for score, (key, count, trees) in queue.ranked():
        answers.append(
            PatternAnswer(
                pattern_key=key,
                pattern=pattern_from_labels(key),
                score=score,
                num_subtrees=count,
                subtrees=trees,
            )
        )
    order_answers(answers)
    stats.elapsed_seconds = watch.elapsed()
    return SearchResult(
        query=words, k=k, d=d, answers=answers, stats=stats
    )
