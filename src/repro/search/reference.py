"""Entry-based reference enumeration — the differential-test oracle.

This module preserves, verbatim, the pre-refactor enumeration pipeline in
which every hot loop materialized :class:`~repro.index.entry.PathEntry`
tuples and checked/scored them with the entry-level helpers
(:func:`~repro.index.entry.entries_form_tree`,
:func:`~repro.search.expand.combo_score`).  The production algorithms now
enumerate integer path ids against the columnar store
(``docs/enumeration.md``); the differential property tests in
``tests/search/test_id_enumeration.py`` assert that, for every algorithm,
both pipelines produce **identical** answers, scores, and stats counters
on randomized graphs.

Nothing here is exported through :mod:`repro.search`; do not use it
outside tests — it exists to keep the refactored hot path honest, so its
control flow and accounting must stay frozen in the entry-based shape.
"""

from __future__ import annotations

import heapq
import math
import random
from itertools import product
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import SearchError
from repro.core.topk import TopKQueue
from repro.index.builder import PathIndexes
from repro.index.entry import PathEntry, entries_form_tree
from repro.index.path_enum import interleaved_labels, iter_reverse_paths_to
from repro.scoring.aggregate import RunningAggregate
from repro.scoring.function import PAPER_DEFAULT, ScoringFunction
from repro.search.expand import combo_score
from repro.search.result import (
    PatternAnswer,
    SearchResult,
    SearchStats,
    Stopwatch,
    order_answers,
    pattern_from_key,
    pattern_from_labels,
)

EntrySink = Callable[[Tuple[object, ...], Tuple[PathEntry, ...]], None]


def expand_root_entries(
    pattern_maps: Sequence[Mapping[object, Sequence[PathEntry]]],
    sink: EntrySink,
    stats: SearchStats,
) -> None:
    """The pre-refactor EXPANDROOT: enumerate materialized entry combos."""
    if any(not pattern_map for pattern_map in pattern_maps):
        return
    key_lists = [list(pattern_map.keys()) for pattern_map in pattern_maps]
    for key_combo in product(*key_lists):
        stats.patterns_checked += 1
        entry_lists = [
            pattern_maps[i][key] for i, key in enumerate(key_combo)
        ]
        emitted = False
        for entry_combo in product(*entry_lists):
            stats.subtrees_enumerated += 1
            if entries_form_tree(entry_combo):
                sink(key_combo, entry_combo)
                emitted = True
            else:
                stats.tree_check_rejections += 1
        if not emitted:
            stats.empty_patterns += 1


def join_pattern_roots_entries(
    root_maps: Sequence[Mapping[int, Sequence[PathEntry]]],
    scoring: ScoringFunction,
    keep_subtrees: bool,
    stats: SearchStats,
):
    """The pre-refactor per-pattern root join (Algorithm 2, lines 5-8)."""
    smallest = min(root_maps, key=len)
    roots = [
        root
        for root in smallest
        if all(root in root_map for root_map in root_maps)
    ]
    if not roots:
        stats.empty_patterns += 1
        return None, [], []
    aggregate = scoring.running()
    trees: List[Tuple[PathEntry, ...]] = []
    for root in sorted(roots):
        entry_lists = [root_map[root] for root_map in root_maps]
        for entry_combo in product(*entry_lists):
            stats.subtrees_enumerated += 1
            if not entries_form_tree(entry_combo):
                stats.tree_check_rejections += 1
                continue
            aggregate.add(combo_score(scoring, entry_combo))
            if keep_subtrees:
                trees.append(entry_combo)
    if aggregate.count == 0:
        stats.empty_patterns += 1
        return None, [], roots
    return aggregate, trees, roots


# --------------------------------------------------------------- algorithms


def reference_pattern_enum_search(
    indexes: PathIndexes,
    query,
    k: int = 100,
    scoring: ScoringFunction = PAPER_DEFAULT,
    keep_subtrees: bool = True,
) -> SearchResult:
    """Entry-based PATTERNENUM (Algorithm 2), pre-refactor control flow."""
    watch = Stopwatch()
    stats = SearchStats(algorithm="pattern_enum")
    words = indexes.resolve_query(query)
    pattern_first = indexes.pattern_first
    m = len(words)

    viable_types = None
    for word in words:
        types = pattern_first.root_types(word)
        viable_types = types if viable_types is None else viable_types & types
        if not viable_types:
            break

    queue: TopKQueue = TopKQueue(k)
    seen_roots = set()

    def evaluate_leaf(pid_combo, root_maps, roots) -> None:
        stats.patterns_checked += 1
        seen_roots.update(roots)
        aggregate = scoring.running()
        trees = [] if keep_subtrees else None
        for root in sorted(roots):
            entry_lists = [root_map[root] for root_map in root_maps]
            for entry_combo in product(*entry_lists):
                stats.subtrees_enumerated += 1
                if not entries_form_tree(entry_combo):
                    stats.tree_check_rejections += 1
                    continue
                aggregate.add(combo_score(scoring, entry_combo))
                if trees is not None:
                    trees.append(entry_combo)
        if aggregate.count == 0:
            stats.empty_patterns += 1
            return
        stats.nonempty_patterns += 1
        key = tuple(pid_combo)
        canonical = tuple(
            (indexes.interner.pattern(pid).labels,
             indexes.interner.pattern(pid).ends_at_edge)
            for pid in key
        )
        queue.push(
            aggregate.value(),
            (key, aggregate.count, trees if trees is not None else []),
            tie_key=canonical,
        )

    for root_type in sorted(viable_types or ()):
        per_word_patterns = [
            pattern_first.patterns_rooted_at(word, root_type)
            for word in words
        ]
        if any(not patterns for patterns in per_word_patterns):
            continue
        suffix_combos = [1] * (m + 1)
        for i in range(m - 1, -1, -1):
            suffix_combos[i] = suffix_combos[i + 1] * len(per_word_patterns[i])

        pid_combo: List[int] = [0] * m
        root_maps: List[Mapping[int, Sequence[PathEntry]]] = [{}] * m

        def descend(depth: int, roots) -> None:
            if depth == m:
                evaluate_leaf(pid_combo, root_maps, roots)
                return
            word = words[depth]
            for pid in per_word_patterns[depth]:
                root_map = pattern_first.roots(word, pid)
                if depth == 0:
                    new_roots = list(root_map)
                else:
                    new_roots = [r for r in roots if r in root_map]
                if not new_roots:
                    skipped = suffix_combos[depth + 1]
                    stats.patterns_checked += skipped
                    stats.empty_patterns += skipped
                    continue
                pid_combo[depth] = pid
                root_maps[depth] = root_map
                descend(depth + 1, new_roots)

        descend(0, None)

    stats.candidate_roots = len(seen_roots)
    answers = []
    for score, (pid_combo_key, count, trees) in queue.ranked():
        answers.append(
            PatternAnswer(
                pattern_key=pid_combo_key,
                pattern=pattern_from_key(indexes, pid_combo_key),
                score=score,
                num_subtrees=count,
                subtrees=trees,
            )
        )
    order_answers(answers)
    stats.elapsed_seconds = watch.elapsed()
    return SearchResult(
        query=words, k=k, d=indexes.d, answers=answers, stats=stats
    )


def reference_linear_enum_search(
    indexes: PathIndexes,
    query,
    k: int = 100,
    scoring: ScoringFunction = PAPER_DEFAULT,
    keep_subtrees: bool = True,
) -> SearchResult:
    """Entry-based LINEARENUM + ranking (the Section 4.2.1 naive method)."""
    watch = Stopwatch()
    stats = SearchStats(algorithm="linear_enum")
    words = indexes.resolve_query(query)
    root_first = indexes.root_first

    root_maps = [root_first.roots(word) for word in words]
    smallest = min(root_maps, key=len)
    candidates = sorted(
        root
        for root in smallest
        if all(root in root_map for root_map in root_maps)
    )
    stats.candidate_roots = len(candidates)

    trees_by_pattern: Dict[Tuple, List[Tuple[PathEntry, ...]]] = {}
    aggregates: Dict[Tuple, RunningAggregate] = {}

    def sink(key_combo, entry_combo) -> None:
        aggregate = aggregates.get(key_combo)
        if aggregate is None:
            aggregate = aggregates[key_combo] = scoring.running()
            trees_by_pattern[key_combo] = []
        aggregate.add(combo_score(scoring, entry_combo))
        if keep_subtrees:
            trees_by_pattern[key_combo].append(entry_combo)

    for root in candidates:
        stats.roots_expanded += 1
        expand_root_entries(
            [root_first.pattern_map(word, root) for word in words],
            sink,
            stats,
        )

    stats.nonempty_patterns = len(aggregates)
    queue: TopKQueue = TopKQueue(k)
    for key in sorted(aggregates):
        aggregate = aggregates[key]
        canonical = tuple(
            (indexes.interner.pattern(pid).labels,
             indexes.interner.pattern(pid).ends_at_edge)
            for pid in key
        )
        queue.push(
            aggregate.value(),
            (key, aggregate.count, trees_by_pattern.get(key, [])),
            tie_key=canonical,
        )
    answers = []
    for score, (key, count, trees) in queue.ranked():
        answers.append(
            PatternAnswer(
                pattern_key=key,
                pattern=pattern_from_key(indexes, key),
                score=score,
                num_subtrees=count,
                subtrees=trees,
            )
        )
    order_answers(answers)
    stats.elapsed_seconds = watch.elapsed()
    return SearchResult(
        query=words, k=k, d=indexes.d, answers=answers, stats=stats
    )


def reference_linear_topk_search(
    indexes: PathIndexes,
    query,
    k: int = 100,
    scoring: ScoringFunction = PAPER_DEFAULT,
    sampling_threshold: float = math.inf,
    sampling_rate: float = 1.0,
    seed: Optional[int] = 0,
    keep_subtrees: bool = True,
) -> SearchResult:
    """Entry-based LINEARENUM-TOPK(Λ, ρ) (Algorithm 4), pre-refactor."""
    if not 0.0 < sampling_rate <= 1.0:
        raise SearchError(
            f"sampling rate must be in (0, 1], got {sampling_rate}"
        )
    if sampling_threshold < 0:
        raise SearchError(
            f"sampling threshold must be >= 0, got {sampling_threshold}"
        )
    watch = Stopwatch()
    stats = SearchStats(algorithm="linear_topk")
    rng = random.Random(seed)
    words = indexes.resolve_query(query)
    root_first = indexes.root_first
    graph = indexes.graph

    root_maps = [root_first.roots(word) for word in words]
    smallest = min(root_maps, key=len)
    candidates = [
        root
        for root in smallest
        if all(root in root_map for root_map in root_maps)
    ]
    stats.candidate_roots = len(candidates)

    by_type: Dict[int, List[int]] = {}
    for root in candidates:
        by_type.setdefault(graph.node_type(root), []).append(root)

    queue: TopKQueue = TopKQueue(k)
    for root_type in sorted(by_type):
        roots = sorted(by_type[root_type])

        subtree_count = 0
        for root in roots:
            per_root = 1
            for word in words:
                per_root *= root_first.path_count(word, root)
            subtree_count += per_root
        rate = sampling_rate if subtree_count >= sampling_threshold else 1.0
        if rate < 1.0:
            stats.sampled_types += 1

        aggregates: Dict[Tuple, RunningAggregate] = {}
        trees_by_pattern: Dict[Tuple, List[Tuple[PathEntry, ...]]] = {}
        store_trees = keep_subtrees and rate >= 1.0

        def sink(key_combo, entry_combo) -> None:
            aggregate = aggregates.get(key_combo)
            if aggregate is None:
                aggregate = aggregates[key_combo] = scoring.running()
                if store_trees:
                    trees_by_pattern[key_combo] = []
            aggregate.add(combo_score(scoring, entry_combo))
            if store_trees:
                trees_by_pattern[key_combo].append(entry_combo)

        for root in roots:
            if rate < 1.0 and rng.random() >= rate:
                continue
            stats.roots_expanded += 1
            expand_root_entries(
                [root_first.pattern_map(word, root) for word in words],
                sink,
                stats,
            )
        if not aggregates:
            continue
        stats.nonempty_patterns += len(aggregates)

        estimated = heapq.nlargest(
            min(k, len(aggregates)),
            ((agg.estimate(rate), key) for key, agg in aggregates.items()),
        )
        for estimate, key in estimated:
            if rate >= 1.0:
                aggregate = aggregates[key]
                exact = aggregate.value()
                count = aggregate.count
                trees = trees_by_pattern.get(key, [])
            else:
                stats.rescored_patterns += 1
                pattern_roots = [
                    indexes.pattern_first.roots(word, pid)
                    for word, pid in zip(words, key)
                ]
                aggregate, trees, _roots = join_pattern_roots_entries(
                    pattern_roots, scoring, keep_subtrees, stats
                )
                if aggregate is None:  # pragma: no cover - non-empty by constr.
                    continue
                exact = aggregate.value()
                count = aggregate.count
            if queue.would_accept(exact):
                canonical = tuple(
                    (indexes.interner.pattern(pid).labels,
                     indexes.interner.pattern(pid).ends_at_edge)
                    for pid in key
                )
                queue.push(
                    exact,
                    (key, count, trees, estimate if rate < 1.0 else None),
                    tie_key=canonical,
                )

    answers = []
    for score, (key, count, trees, estimate) in queue.ranked():
        answers.append(
            PatternAnswer(
                pattern_key=key,
                pattern=pattern_from_key(indexes, key),
                score=score,
                num_subtrees=count,
                subtrees=trees,
                estimated_score=estimate,
            )
        )
    order_answers(answers)
    stats.elapsed_seconds = watch.elapsed()
    return SearchResult(
        query=words, k=k, d=indexes.d, answers=answers, stats=stats
    )


def _backward_root_maps_entries(
    indexes: PathIndexes, word: str, d: int
) -> Dict[int, Dict[object, List[PathEntry]]]:
    """Pre-refactor backward walks: materialized entries, no scratch store."""
    graph = indexes.graph
    lexicon = indexes.lexicon
    ranks = indexes.pagerank_scores
    out: Dict[int, Dict[object, List[PathEntry]]] = {}

    for node, sim in lexicon.nodes_with_word(word).items():
        pr = ranks[node]
        for nodes, attrs in iter_reverse_paths_to(graph, node, d):
            entry = PathEntry(nodes, attrs, False, pr, sim)
            key = (interleaved_labels(graph, nodes, attrs), False)
            out.setdefault(nodes[0], {}).setdefault(key, []).append(entry)

    if d >= 2:
        for attr, sim in lexicon.attrs_with_word(word).items():
            for source, target in graph.edges_with_attr(attr):
                pr = ranks[source]
                for nodes, attrs in iter_reverse_paths_to(graph, source, d - 1):
                    if target in nodes:
                        continue
                    entry = PathEntry(
                        nodes + (target,), attrs + (attr,), True, pr, sim
                    )
                    key = (
                        interleaved_labels(graph, nodes, attrs) + (attr,),
                        True,
                    )
                    out.setdefault(nodes[0], {}).setdefault(key, []).append(
                        entry
                    )
    return out


def reference_baseline_search(
    indexes: PathIndexes,
    query,
    k: int = 100,
    scoring: ScoringFunction = PAPER_DEFAULT,
    keep_subtrees: bool = True,
    d: Optional[int] = None,
) -> SearchResult:
    """Entry-based enumeration-aggregation baseline (Section 2.3)."""
    watch = Stopwatch()
    stats = SearchStats(algorithm="baseline")
    if d is None:
        d = indexes.d
    if d < 1:
        raise SearchError(f"height threshold d must be >= 1, got {d}")
    words = indexes.resolve_query(query)

    per_word = [
        _backward_root_maps_entries(indexes, w, d) for w in words
    ]

    candidates = set(per_word[0])
    for root_map in per_word[1:]:
        candidates &= set(root_map)
    stats.candidate_roots = len(candidates)

    tree_dict: Dict[Tuple, Tuple[RunningAggregate, List]] = {}

    def sink(key_combo, entry_combo) -> None:
        slot = tree_dict.get(key_combo)
        if slot is None:
            slot = tree_dict[key_combo] = (scoring.running(), [])
        slot[0].add(combo_score(scoring, entry_combo))
        if keep_subtrees:
            slot[1].append(entry_combo)

    for root in sorted(candidates):
        stats.roots_expanded += 1
        expand_root_entries(
            [root_map[root] for root_map in per_word], sink, stats
        )

    stats.nonempty_patterns = len(tree_dict)
    queue: TopKQueue = TopKQueue(k)
    for key in sorted(tree_dict):
        aggregate, trees = tree_dict[key]
        queue.push(
            aggregate.value(), (key, aggregate.count, trees), tie_key=key
        )

    answers = []
    for score, (key, count, trees) in queue.ranked():
        answers.append(
            PatternAnswer(
                pattern_key=key,
                pattern=pattern_from_labels(key),
                score=score,
                num_subtrees=count,
                subtrees=trees,
            )
        )
    order_answers(answers)
    stats.elapsed_seconds = watch.elapsed()
    return SearchResult(
        query=words, k=k, d=d, answers=answers, stats=stats
    )
