"""Query planning: the *plan* half of the plan/execute split.

Until this refactor :class:`~repro.search.engine.TableAnswerEngine.search`
resolved keywords, picked an algorithm, and ran it in one opaque call —
nothing in between could be cached, compared, or explained.  This module
splits that into an explicit :class:`QueryPlan` (what will run: resolved
terms, canonical algorithm, k, the full execution parameter set, and the
store version it was planned against) and :func:`execute_plan` (run it).
Production keyword-search services are architected the same way — e.g.
Pimplikar & Sarawagi's column-keyword table search (arXiv:1207.0132)
separates query interpretation from ranked execution — because the plan
is the natural **cache key**: two requests whose plans are equal must
return identical results, however their raw query strings were spelled.

The plan is hashable and canonical:

* keywords are resolved (tokenize -> stem -> synonym-canonicalize)
  through the index's version-guarded term-resolution cache;
* algorithm aliases collapse (``petopk`` -> ``pattern_enum``, ``linear``/
  ``letopk`` -> ``linear_topk`` with exactness-forcing defaults);
* every execution parameter is present with its default applied, so
  ``search(q)`` and ``search(q, prune=True)`` produce equal plans;
* unknown algorithms and parameters fail *at plan time*, before any
  enumeration work.

:class:`~repro.search.service.SearchService` keys all of its cache tiers
off plans; ``repro plan`` and ``repro search --explain`` print them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.core.errors import SearchError, StalePlanError
from repro.index.builder import PathIndexes, ResolvedQuery
from repro.scoring.function import PAPER_DEFAULT, ScoringFunction
from repro.search.baseline import baseline_search
from repro.search.context import EnumerationContext
from repro.search.linear_enum import linear_enum_search
from repro.search.linear_topk import linear_topk_search
from repro.search.pattern_enum import pattern_enum_search
from repro.search.result import SearchResult


@dataclass(frozen=True)
class AlgorithmSpec:
    """One executable algorithm: entry point + canonical parameter set."""

    name: str
    runner: Callable[..., SearchResult]
    defaults: Tuple[Tuple[str, object], ...]

    def canonical_params(
        self, overrides: Mapping[str, object]
    ) -> Tuple[Tuple[str, object], ...]:
        """The full parameter tuple with defaults applied, sorted by name.

        Rejects unknown parameter names — planning is where a typo like
        ``samplig_rate=...`` should fail, not deep inside an algorithm's
        hot loop as a :class:`TypeError`.
        """
        params = dict(self.defaults)
        for key, value in overrides.items():
            if key not in params:
                raise SearchError(
                    f"algorithm {self.name!r} does not accept parameter "
                    f"{key!r}; expected one of "
                    f"{sorted(name for name, _ in self.defaults)}"
                )
            params[key] = value
        return tuple(sorted(params.items()))


#: Canonical algorithm registry — the single dispatch table behind the
#: engine facade, the service, and the CLI.  ``linear`` maps to
#: ``linear_topk`` with sampling forced off by default (Λ=inf, ρ=1 — the
#: exact variant), which is precisely what the engine's old ``exact_linear``
#: wrapper did; collapsing the alias lets differently-spelled requests
#: share one cache entry.
_SPECS: Dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in (
        AlgorithmSpec(
            name="pattern_enum",
            runner=pattern_enum_search,
            defaults=(("keep_subtrees", True), ("prune", True)),
        ),
        AlgorithmSpec(
            name="linear_topk",
            runner=linear_topk_search,
            defaults=(
                ("keep_subtrees", True),
                ("prune", True),
                ("sampling_threshold", math.inf),
                ("sampling_rate", 1.0),
                ("seed", 0),
            ),
        ),
        AlgorithmSpec(
            name="linear_full",
            runner=linear_enum_search,
            defaults=(("keep_subtrees", True),),
        ),
        AlgorithmSpec(
            name="baseline",
            runner=baseline_search,
            defaults=(("keep_subtrees", True), ("d", None)),
        ),
    )
}

#: Accepted algorithm names (the paper's labels are aliases).
ALGORITHM_ALIASES: Dict[str, str] = {
    "pattern_enum": "pattern_enum",
    "petopk": "pattern_enum",
    "linear": "linear_topk",
    "letopk": "linear_topk",
    "linear_topk": "linear_topk",
    "linear_full": "linear_full",
    "baseline": "baseline",
}


def canonical_algorithm(name: str) -> str:
    """Resolve an algorithm name or paper alias to its canonical form."""
    canonical = ALGORITHM_ALIASES.get(name.lower())
    if canonical is None:
        raise SearchError(
            f"unknown algorithm {name!r}; expected one of "
            f"{tuple(ALGORITHM_ALIASES)}"
        )
    return canonical


def algorithm_param_names(algorithm: str) -> frozenset:
    """The execution parameters ``algorithm`` (or an alias) accepts.

    The single source of truth every front-end validates against: the
    ``serve`` REPL warns about (and drops) inapplicable flags on
    ``:algorithm`` switches, and the HTTP parameter parser rejects them —
    both through :mod:`repro.serve.params`, so the two surfaces cannot
    drift apart.
    """
    spec = _SPECS[canonical_algorithm(algorithm)]
    return frozenset(name for name, _ in spec.defaults)


@dataclass(frozen=True)
class QueryPlan:
    """Everything about a search decided before execution starts.

    Hashable and canonical: :attr:`cache_key` identifies the *result* —
    two plans with equal keys executed against the same store version
    return bit-identical answers, which is what makes the plan the cache
    key for every tier of :class:`~repro.search.service.SearchService`.
    ``query_text`` (the raw spelling) and :attr:`store_version` (what the
    plan was resolved against) ride along for explainability and
    staleness checks but are deliberately *not* part of the key.
    """

    words: Tuple[str, ...]
    algorithm: str
    k: int
    d: int
    scoring: ScoringFunction
    params: Tuple[Tuple[str, object], ...]
    store_version: int
    query_text: str

    @property
    def cache_key(self) -> Tuple:
        """Result identity: everything except spelling and store version."""
        return (self.words, self.algorithm, self.k, self.scoring, self.params)

    @property
    def cacheable(self) -> bool:
        """Whether equal plans are guaranteed equal results.

        The only nondeterministic configuration is LETopK with an
        unseeded RNG *and* sampling actually able to trigger; everything
        else in the repo is deterministic by construction.
        """
        if self.algorithm != "linear_topk":
            return True
        params = dict(self.params)
        return not (
            params.get("seed") is None
            and params.get("sampling_threshold", math.inf) != math.inf
            and params.get("sampling_rate", 1.0) < 1.0
        )

    def resolved_query(self) -> ResolvedQuery:
        """The plan's keywords as a re-resolution-proof query object."""
        return ResolvedQuery(self.words)

    def describe(self, indexes: Optional[PathIndexes] = None) -> str:
        """Human-readable plan, one fact per line (``repro plan``).

        With ``indexes`` given, adds per-keyword index reach (posting,
        root, and pattern counts — O(1) probes against the columnar
        store, no enumeration).
        """
        lines = [
            f"plan: algorithm={self.algorithm} k={self.k} d={self.d}",
            f"query: {self.query_text!r} -> {' '.join(self.words)!r}",
            f"planned against store version {self.store_version}",
            "scoring: "
            f"z1={self.scoring.z1:g} z2={self.scoring.z2:g} "
            f"z3={self.scoring.z3:g} aggregator={self.scoring.aggregator}",
            "params: "
            + " ".join(f"{name}={value!r}" for name, value in self.params),
            f"cacheable: {self.cacheable}",
        ]
        if indexes is not None:
            for word in self.words:
                lines.append(
                    f"  {word!r}: "
                    f"postings={indexes.root_first.num_entries(word)} "
                    f"roots={len(indexes.root_first.roots(word))} "
                    f"patterns={len(indexes.pattern_first.patterns(word))}"
                )
        return "\n".join(lines)


#: Request-level defaults, applied here and nowhere else — the engine
#: and service facades pass ``None`` through so there is one source of
#: truth for what an unspecified k or algorithm means.
DEFAULT_K = 100
DEFAULT_ALGORITHM = "pattern_enum"


def plan_search(
    indexes: PathIndexes,
    query,
    k: Optional[int] = None,
    algorithm: Optional[str] = None,
    scoring: Optional[ScoringFunction] = None,
    **params,
) -> QueryPlan:
    """Build the :class:`QueryPlan` for one search request.

    Cheap (keyword resolution through the index's term-resolution cache
    plus parameter canonicalization) and side-effect free; raises
    :class:`~repro.core.errors.SearchError` on unknown algorithms or
    parameters, so malformed requests die before execution.  ``None``
    for ``k``/``algorithm``/``scoring`` means the defaults
    (:data:`DEFAULT_K`, :data:`DEFAULT_ALGORITHM`, the paper's scoring).
    """
    if k is None:
        k = DEFAULT_K
    if algorithm is None:
        algorithm = DEFAULT_ALGORITHM
    if scoring is None:
        scoring = PAPER_DEFAULT
    canonical = canonical_algorithm(algorithm)
    spec = _SPECS[canonical]
    words = indexes.resolve_query(query)
    return QueryPlan(
        words=tuple(words),
        algorithm=canonical,
        k=k,
        d=indexes.d,
        scoring=scoring,
        params=spec.canonical_params(params),
        store_version=indexes.store.version,
        query_text=query if isinstance(query, str) else " ".join(words),
    )


def reject_plan_overrides(k, algorithm, scoring, params) -> None:
    """A prebuilt plan already fixes k/algorithm/scoring/params.

    Accepting them alongside ``plan=`` and silently preferring the
    plan's values would hand back the wrong answer count or algorithm
    with no diagnostic, so every override is an error (the engine and
    the service both call this on their ``plan=`` path).
    """
    overrides = sorted(params)
    if k is not None:
        overrides.append("k")
    if algorithm is not None:
        overrides.append("algorithm")
    if scoring is not None:
        overrides.append("scoring")
    if overrides:
        raise SearchError(
            "a prebuilt plan already fixes the search parameters; got "
            f"conflicting {overrides} (set them at plan time instead)"
        )


def execute_plan(
    indexes: PathIndexes,
    plan: QueryPlan,
    context: Optional[EnumerationContext] = None,
    allow_stale: bool = False,
) -> SearchResult:
    """Run a plan against ``indexes`` and return its :class:`SearchResult`.

    The *execute* half of the split: pure dispatch into the algorithm's
    entry point with the plan's canonical parameters; keywords are passed
    pre-resolved (:class:`~repro.index.builder.ResolvedQuery`), so no
    per-call stemming or synonym work happens here.

    A plan is only guaranteed valid against the store version it was
    planned at — the vocabulary (and therefore keyword resolution) may
    have changed since.  Executing a stale plan raises unless
    ``allow_stale=True`` (callers that know the vocabulary change cannot
    affect them, e.g. benchmarks replaying plans).
    """
    if plan.store_version != indexes.store.version and not allow_stale:
        raise StalePlanError(
            f"plan was built against store version {plan.store_version}, "
            f"but the index is now at {indexes.store.version}; replan "
            "(or pass allow_stale=True)"
        )
    spec = _SPECS[plan.algorithm]
    return spec.runner(
        indexes,
        plan.resolved_query(),
        k=plan.k,
        scoring=plan.scoring,
        context=context,
        **dict(plan.params),
    )
