"""Sharded scatter–gather top-k serving with bound-driven shard skipping.

:class:`ShardedSearchService` extends the single-store
:class:`~repro.search.service.SearchService` with the fork-based scale-out
path ``docs/serving.md`` promised: the posting store is partitioned into K
pattern-disjoint shards (:mod:`repro.index.shards`), each owned by one
long-lived forked worker process that pre-warms its shard's query and
bound columns at pool start.  A query's canonical
:class:`~repro.search.plan.QueryPlan` is scattered to the workers over
``multiprocessing`` pipes, the per-shard top-k lists are gathered, and the
coordinator merges them under a single global
:class:`~repro.core.topk.TopKQueue`/:class:`~repro.core.topk.TopKThreshold`
with canonical tie keys — answers are **bit-identical** to the unsharded
engine (the differential tests in ``tests/search/test_sharding.py``
enforce this for all shardable algorithms at several K).

The perf win on any core count is *bound-driven shard skipping*: before a
shard is dispatched, its precomputed score upper bound (the same
``SAFETY * sum(root_mass)`` form LETopK's type-skip uses, summed over the
shard's slice of the candidate roots) is checked against the running k-th
score.  Shards are visited best-bound-first, so the global threshold
tightens as fast as possible and trailing shards whose bound falls below
it are never sent the query at all — their postings are never scanned by
anyone.  ``SearchStats`` records ``shards_total`` / ``shards_skipped`` /
``shard_dispatch_order``; ``benchmarks/smoke_sharding.py`` turns the
counters into a postings-not-scanned work-reduction figure (BENCH_5).

Exactness is inherited from the partition (pattern containment: a whole
pattern, with every root that contributes to its score, lives in exactly
one shard — see :mod:`repro.index.shards`) plus two facts: a pattern in
the global top-k is necessarily in its own shard's local top-k (the shard
run faces a subset of the competitors), and a skipped shard only holds
patterns with score ``<= bound < k-th`` which therefore cannot be
retained (bound equality is always admitted, matching ``docs/pruning.md``).

Three plans bypass the shards and execute inline on the coordinator,
exactly as the plain service would run them: the ``baseline`` (walks the
live graph, not the store), sampled LETopK (its RNG stream is drawn over
the *global* candidate ordering — per-shard streams would diverge), and
that is all; ``pattern_enum``, exact ``linear_topk``, and ``linear_full``
all shard.  Kept subtrees cross the pipe as materialized
:class:`~repro.index.entry.PathEntry` tuples (value-equal to the
unsharded ``ComboRef`` combos), so — unlike ``search_many(processes=N)``
— the sharded path supports ``keep_subtrees=True``.

Worker death (crash, OOM-kill) is detected by poll timeout / liveness
checks on the pipe; the coordinator re-executes the lost shard inline
from its own copy of the shard bundle, respawns the worker, and counts a
``shard_failover`` — one query degrades to local execution of one shard,
nothing is lost.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.core.errors import SearchError
from repro.core.topk import TopKQueue, TopKThreshold
from repro.index.builder import PathIndexes
from repro.index.shards import ShardedIndexes, partition_indexes
from repro.scoring.function import PAPER_DEFAULT, ScoringFunction
from repro.search.bounds import SAFETY
from repro.search.plan import QueryPlan, execute_plan
from repro.search.result import (
    PatternAnswer,
    SearchResult,
    SearchStats,
    Stopwatch,
    canonical_pattern_key,
    order_answers,
    pattern_from_key,
)
from repro.search.service import SearchService

DEFAULT_NUM_SHARDS = 4

#: Algorithms whose per-shard runs merge exactly (store-reading, no
#: cross-shard state).  ``baseline`` walks the live graph instead of the
#: store, so sharding the store cannot split its work.
SHARDABLE_ALGORITHMS = frozenset(
    {"pattern_enum", "linear_topk", "linear_full"}
)

#: Counters that sum meaningfully across per-shard runs.
_ADDITIVE_COUNTERS = (
    "roots_expanded",
    "patterns_checked",
    "empty_patterns",
    "nonempty_patterns",
    "subtrees_enumerated",
    "tree_check_rejections",
    "sampled_types",
    "rescored_patterns",
    "roots_skipped",
    "prefixes_skipped",
    "pairs_skipped",
)


def _sampling_active(plan: QueryPlan) -> bool:
    """Whether this plan's LETopK sampling can actually trigger."""
    if plan.algorithm != "linear_topk":
        return False
    params = dict(plan.params)
    return (
        params.get("sampling_threshold", float("inf")) != float("inf")
        and params.get("sampling_rate", 1.0) < 1.0
    )


def plan_shardable(plan: QueryPlan) -> bool:
    """Whether scatter–gather reproduces this plan bit-identically.

    Sampled LETopK is excluded even though the algorithm shards: its
    sampling decisions are pre-drawn from one seeded RNG stream over the
    globally-ordered candidate types, so K per-shard streams would make
    different keep/drop choices than the single run.
    """
    return plan.algorithm in SHARDABLE_ALGORITHMS and not _sampling_active(
        plan
    )


def execute_shard_plan(
    shard: PathIndexes, plan: QueryPlan
) -> Tuple[list, SearchStats]:
    """Run a plan on one shard bundle, returning *portable* answers.

    The worker-side (and inline-failover) execution step.  Answers are
    flattened to plain picklable tuples
    ``(score, pattern_key, num_subtrees, combos, estimated_score)``:
    pattern ids are global (the shards share the base interner), and kept
    subtrees are materialized to :class:`~repro.index.entry.PathEntry`
    tuples because a ``ComboRef`` holds a store reference that must not
    cross the pipe.  ``allow_stale=True`` because the shard store keeps
    its own version counter, intentionally different from the base
    version the plan was resolved against (the coordinator already
    version-checked the plan against the serving snapshot).
    """
    result = execute_plan(shard, plan, allow_stale=True)
    portable = [
        (
            answer.score,
            answer.pattern_key,
            answer.num_subtrees,
            [tuple(combo) for combo in answer.subtrees],
            answer.estimated_score,
        )
        for answer in result.answers
    ]
    return portable, result.stats


def shard_upper_bounds(
    sharded: ShardedIndexes, context, scoring
) -> List[float]:
    """Per-shard admissible score upper bounds for one resolved query.

    The shard bound is LETopK's type bound lifted one level: an
    admissible (under all four aggregators) cap on any pattern score
    confined to the shard's slice of the candidate roots —
    ``SAFETY * sum(root_mass(r))``, computed from the *global*
    :class:`~repro.search.bounds.QueryBounds` (identical values to the
    unsharded run, since a root's postings travel to its shard whole).
    ``inf`` per non-empty shard when the scoring function is outside the
    bounded class — every shard is then dispatched, sharding stays
    exact, nothing skips.
    """
    parts = sharded.partition_roots(context.candidate_roots)
    bounds = context.query_bounds(scoring)
    if bounds is None:
        return [float("inf") if part else 0.0 for part in parts]
    return [
        SAFETY * sum(bounds.root_mass(root) for root in part)
        for part in parts
    ]


def execute_sharded_plan(
    snap: PathIndexes,
    plan: QueryPlan,
    sharded: ShardedIndexes,
    uppers: List[float],
    run_shard,
    candidate_roots: int = 0,
) -> SearchResult:
    """The scatter–gather merge loop, parameterized over shard execution.

    ``run_shard(shard_id)`` returns the portable
    ``(answers, stats)`` pair of :func:`execute_shard_plan` — from a
    worker pipe (:class:`ShardedSearchService`), inline failover, or an
    in-process loop (the fork-pool workers of :mod:`repro.serve.pool`
    run their inherited partition through this same function, so the
    two execution spines cannot drift).  Shards are visited
    best-bound-first and skipped once the running k-th score disproves
    their upper bound; answers merge under a single global
    :class:`~repro.core.topk.TopKQueue` with canonical tie keys —
    bit-identical to the unsharded engine.
    """
    watch = Stopwatch()
    queue: TopKQueue[PatternAnswer] = TopKQueue(plan.k)
    threshold = TopKThreshold(queue)
    stats = SearchStats(
        algorithm=plan.algorithm,
        candidate_roots=candidate_roots,
    )
    stats.shards_total = sharded.num_shards
    # Best-bound-first: the strongest shard fills the queue and
    # tightens the global threshold before weaker shards are
    # considered, maximizing skips.  Shard id breaks bound ties
    # so the dispatch order is deterministic.
    order = sorted(
        range(sharded.num_shards), key=lambda s: (-uppers[s], s)
    )
    dispatched: List[int] = []
    for shard_id in order:
        upper = uppers[shard_id]
        # upper == 0.0 means no candidate root lives there; a
        # bound below the running k-th score cannot change the
        # queue (equality always admitted — docs/pruning.md).
        if upper <= 0.0 or not threshold.admits(upper):
            stats.shards_skipped += 1
            continue
        dispatched.append(shard_id)
        portable, shard_stats = run_shard(shard_id)
        for name in _ADDITIVE_COUNTERS:
            setattr(
                stats,
                name,
                getattr(stats, name) + getattr(shard_stats, name),
            )
        for score, key, count, combos, estimated in portable:
            pattern = pattern_from_key(snap, key)
            answer = PatternAnswer(
                pattern_key=key,
                pattern=pattern,
                score=score,
                num_subtrees=count,
                subtrees=list(combos),
                estimated_score=estimated,
            )
            queue.push(
                score, answer, tie_key=canonical_pattern_key(pattern)
            )
    stats.shard_dispatch_order = tuple(dispatched)
    threshold.write_stats(stats)
    answers = order_answers([answer for _, answer in queue.ranked()])
    stats.elapsed_seconds = watch.elapsed()
    return SearchResult(
        query=plan.words,
        k=plan.k,
        d=plan.d,
        answers=answers,
        stats=stats,
    )


def _shard_worker_main(shard: PathIndexes, conn) -> None:
    """One worker process: pre-warm, handshake, then serve plans forever.

    Protocol (all tuples):  receives ``("execute", tag, plan)`` and
    answers ``("ok", tag, (portable_answers, stats))`` or
    ``("error", tag, message)``; ``("stop",)`` exits cleanly;
    ``("exit",)`` hard-kills the process mid-protocol (the fault-injection
    hook the robustness tests use).  The tag is echoed so the coordinator
    can discard a stale response left in the pipe by a timed-out query.
    """
    try:
        shard.store.warm_query_caches()
        conn.send(("ready",))
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "stop":
                break
            if kind == "exit":
                os._exit(1)
            if kind == "execute":
                _, tag, plan = message
                try:
                    payload = execute_shard_plan(shard, plan)
                except Exception as exc:  # noqa: BLE001 - report, don't die
                    conn.send(("error", tag, f"{type(exc).__name__}: {exc}"))
                else:
                    conn.send(("ok", tag, payload))
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # coordinator went away; nothing to report to
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass


class ShardWorkerError(SearchError):
    """A shard worker died or stopped responding mid-query."""


class _Worker:
    __slots__ = ("process", "conn")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn


class ShardWorkerPool:
    """K long-lived forked workers, one per shard, spoken to over pipes.

    Fork-only by design: the shard bundles are inherited through the
    forked address space (nothing index-sized is pickled), exactly like
    the plain service's batch fork pool.  Startup blocks until every
    worker has warmed its shard's query/bound columns and sent its
    ``("ready",)`` handshake, so the first query never pays the one-time
    column builds.
    """

    def __init__(
        self, sharded: ShardedIndexes, timeout: float = 30.0
    ) -> None:
        import multiprocessing

        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-fork platform
            raise SearchError(
                f"sharded serving requires the fork start method: {exc}"
            ) from exc
        self.sharded = sharded
        self.timeout = timeout
        self._tag = 0
        self._workers: List[Optional[_Worker]] = [None] * sharded.num_shards
        self.closed = False
        try:
            for shard_id in range(sharded.num_shards):
                self._workers[shard_id] = self._spawn(shard_id)
            for shard_id in range(sharded.num_shards):
                self._await_ready(shard_id)
        except BaseException:
            self.close()
            raise

    # ----------------------------------------------------------- lifecycle

    def _spawn(self, shard_id: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(self.sharded.shards[shard_id], child_conn),
            daemon=True,
            name=f"repro-shard-{shard_id}",
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def _await_ready(self, shard_id: int) -> None:
        worker = self._workers[shard_id]
        message = self._recv(worker, self.timeout, shard_id)
        if message != ("ready",):
            raise ShardWorkerError(
                f"shard worker {shard_id} sent {message!r} instead of the "
                "ready handshake"
            )

    def respawn(self, shard_id: int) -> None:
        """Replace a dead (or wedged) worker with a fresh one."""
        self._discard(shard_id)
        self._workers[shard_id] = self._spawn(shard_id)
        self._await_ready(shard_id)

    def _discard(self, shard_id: int) -> None:
        worker = self._workers[shard_id]
        if worker is None:
            return
        self._workers[shard_id] = None
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5.0)
        if worker.process.is_alive():  # pragma: no cover - stuck in syscall
            worker.process.kill()
            worker.process.join(timeout=5.0)

    def kill_worker(self, shard_id: int) -> None:
        """Hard-kill one worker (SIGKILL) — the fault-injection hook."""
        worker = self._workers[shard_id]
        if worker is not None and worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=5.0)

    def close(self) -> None:
        """Stop every worker; idempotent."""
        if self.closed:
            return
        self.closed = True
        for worker in self._workers:
            if worker is None:
                continue
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for shard_id in range(len(self._workers)):
            self._discard(shard_id)

    # ----------------------------------------------------------- execution

    def execute(self, shard_id: int, plan: QueryPlan):
        """Run ``plan`` on one shard's worker; raises
        :class:`ShardWorkerError` when the worker is dead or silent past
        the pool timeout (the coordinator then fails over inline)."""
        worker = self._workers[shard_id]
        if worker is None or not worker.process.is_alive():
            raise ShardWorkerError(f"shard worker {shard_id} is not alive")
        self._tag += 1
        tag = self._tag
        try:
            worker.conn.send(("execute", tag, plan))
        except (BrokenPipeError, OSError) as exc:
            raise ShardWorkerError(
                f"shard worker {shard_id} pipe is broken: {exc}"
            ) from exc
        while True:
            message = self._recv(worker, self.timeout, shard_id)
            if message[0] == "ok" and message[1] == tag:
                return message[2]
            if message[0] == "error" and message[1] == tag:
                raise SearchError(
                    f"shard {shard_id} failed executing the plan: "
                    f"{message[2]}"
                )
            # A stale response from a query that timed out earlier:
            # discard and keep waiting for our tag.

    def _recv(self, worker: _Worker, timeout: float, shard_id: int):
        """One message from a worker, with liveness-aware waiting."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                if worker.conn.poll(0.05):
                    return worker.conn.recv()
            except (EOFError, OSError) as exc:
                raise ShardWorkerError(
                    f"shard worker {shard_id} hung up: {exc}"
                ) from exc
            if not worker.process.is_alive():
                raise ShardWorkerError(
                    f"shard worker {shard_id} died (exit code "
                    f"{worker.process.exitcode})"
                )
            if time.monotonic() >= deadline:
                raise ShardWorkerError(
                    f"shard worker {shard_id} did not answer within "
                    f"{timeout:g}s"
                )


class ShardedSearchService(SearchService):
    """Scatter–gather serving over a partitioned store (module docstring).

    Drop-in for :class:`~repro.search.service.SearchService` — same
    caches, same snapshot protocol, bit-identical answers — with
    shardable plans executed by the worker pool instead of inline.  The
    pool is built lazily on the first shardable query and rebuilt
    whenever the store version moves (the shards are as version-pinned
    as the snapshot they were cut from).  Call :meth:`close` (or use as
    a context manager) to reap the workers.
    """

    def __init__(
        self,
        indexes: PathIndexes,
        num_shards: int = DEFAULT_NUM_SHARDS,
        scoring: ScoringFunction = PAPER_DEFAULT,
        worker_timeout: float = 30.0,
        sharded: Optional[ShardedIndexes] = None,
        **kwargs,
    ) -> None:
        super().__init__(indexes, scoring=scoring, **kwargs)
        if num_shards < 1:
            raise SearchError(f"num_shards must be >= 1, got {num_shards}")
        if sharded is not None:
            if sharded.base is not indexes:
                raise SearchError(
                    "preloaded ShardedIndexes must wrap the same live "
                    "bundle the service serves"
                )
            if sharded.num_shards != num_shards:
                raise SearchError(
                    f"preloaded partition has {sharded.num_shards} shards, "
                    f"service asked for {num_shards}"
                )
        self.num_shards = num_shards
        self.worker_timeout = worker_timeout
        self.stats.execution_backend = "sharded"
        self.stats.execution_workers = num_shards
        self._preloaded = sharded
        self._sharded: Optional[ShardedIndexes] = None
        self._pool: Optional[ShardWorkerPool] = None
        #: Serializes scatter–gather *and* pool lifecycle: the pipes are
        #: plain duplex connections, not multiplexed channels, so one
        #: in-flight query per pool.  Non-shardable plans never take it.
        self._scatter_lock = threading.Lock()
        #: (words, scoring) -> (store_version, per-shard uppers): the
        #: precomputed per-shard score upper bounds per resolved keyword
        #: set, shared across k / algorithm / repeats.
        self._shard_uppers: Dict[Tuple, Tuple[int, List[float]]] = {}

    # ----------------------------------------------------------- lifecycle

    @classmethod
    def from_file(
        cls, path, num_shards: Optional[int] = None, **kwargs
    ) -> "ShardedSearchService":
        """Serve a persisted bundle, honoring a stored partition.

        A file written by
        :func:`~repro.index.serialize.save_sharded_indexes` restores its
        shards directly (no repartition) when ``num_shards`` is absent or
        agrees; asking for a different K — or loading a plain index
        file — partitions from the base on first use.
        """
        from pathlib import Path

        from repro.core.errors import PathIndexError
        from repro.index.serialize import load_indexes, load_sharded_indexes

        try:
            sharded = load_sharded_indexes(path)
        except PathIndexError:
            sharded = None
        if sharded is None:
            service = cls(
                load_indexes(path),
                num_shards=num_shards or DEFAULT_NUM_SHARDS,
                **kwargs,
            )
        elif num_shards is not None and num_shards != sharded.num_shards:
            service = cls(sharded.base, num_shards=num_shards, **kwargs)
        else:
            service = cls(
                sharded.base,
                num_shards=sharded.num_shards,
                sharded=sharded,
                **kwargs,
            )
        service.index_path = Path(path)
        return service

    def close(self) -> None:
        """Reap the worker pool (the service remains usable; the next
        shardable query builds a fresh pool)."""
        with self._scatter_lock:
            if self._pool is not None:
                self._pool.close()
                self._pool = None
            self._sharded = None

    def __enter__(self) -> "ShardedSearchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _compact_shards(self) -> int:
        """Compactions write the service's partition into the file, so a
        restart re-maps the shards for free and the live pool adopts the
        fresh mapped partition without a re-partition."""
        return self.num_shards

    def _adopt_compaction(self, outcome: dict) -> None:
        """Adopt the compaction's fresh mapped partition: its
        ``store_version`` is the post-re-map live version, so the next
        shardable query's pool rebuild forks workers holding re-mapped
        shard extents — never heap copies."""
        if outcome["sharded"] is not None:
            self._preloaded = outcome["sharded"]

    def _ensure_pool(
        self, snap: PathIndexes
    ) -> Tuple[ShardedIndexes, ShardWorkerPool]:
        """The partition + pool for the serving version (caller holds
        :attr:`_scatter_lock`); rebuilt when the store moved."""
        version = snap.store.version
        if (
            self._pool is not None
            and not self._pool.closed
            and self._sharded is not None
            and self._sharded.store_version == version
        ):
            return self._sharded, self._pool
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        sharded = self._preloaded
        if sharded is None or sharded.store_version != version:
            sharded = partition_indexes(snap, self.num_shards)
        self._sharded = sharded
        self._shard_uppers.clear()
        self._pool = ShardWorkerPool(sharded, timeout=self.worker_timeout)
        self.stats.bump(pool_rebuilds=1)
        return sharded, self._pool

    # ----------------------------------------------------------- execution

    def _execute_forked(self, pending, processes):
        raise SearchError(
            "search_many(processes=N) is disabled on ShardedSearchService: "
            "forked batch children would share the shard workers' pipes; "
            "the shard worker pool is the parallel path (threads= remains "
            "available for batch overlap)"
        )

    def _execute_on(self, snap: PathIndexes, plan: QueryPlan) -> SearchResult:
        if not plan_shardable(plan):
            return super()._execute_on(snap, plan)
        context = self._context_for(snap, plan)
        failovers = [0]
        with self._scatter_lock:
            sharded, pool = self._ensure_pool(snap)
            uppers = self._shard_bounds(snap, plan, context, sharded)

            def run_shard(shard_id: int):
                try:
                    return pool.execute(shard_id, plan)
                except ShardWorkerError:
                    failovers[0] += 1
                    pool.respawn(shard_id)
                    return execute_shard_plan(sharded.shards[shard_id], plan)

            result = execute_sharded_plan(
                snap,
                plan,
                sharded,
                uppers,
                run_shard,
                candidate_roots=len(context.candidate_roots),
            )
        if failovers[0]:
            result.stats.shard_failovers = failovers[0]
            self.stats.bump(worker_failovers=failovers[0])
        self._remember_candidates(plan, context)
        return result

    def _shard_bounds(
        self,
        snap: PathIndexes,
        plan: QueryPlan,
        context,
        sharded: ShardedIndexes,
    ) -> List[float]:
        """:func:`shard_upper_bounds`, cached per (words, scoring) under
        the serving version; caller holds :attr:`_scatter_lock`."""
        key = (plan.words, plan.scoring)
        version = snap.store.version
        slot = self._shard_uppers.get(key)
        if slot is not None and slot[0] == version:
            return slot[1]
        uppers = shard_upper_bounds(sharded, context, plan.scoring)
        self._shard_uppers[key] = (version, uppers)
        return uppers

    def __repr__(self) -> str:
        pool = "up" if self._pool is not None and not self._pool.closed else "down"
        return (
            f"ShardedSearchService(num_shards={self.num_shards}, "
            f"pool={pool}, {super().__repr__()[len('SearchService('):]}"
        )
