"""Shared subtree-expansion loop (EXPANDROOT of Algorithm 3), id-based.

Given, for a fixed candidate root, the per-keyword ``pattern -> postings``
maps, enumerate the *pattern product* and, inside each tree pattern, the
*path product*; every path combination passing the tree-validity check is
one valid subtree.  Both LINEARENUM variants, the baseline, and the
individual-subtree ranker drive this loop; PATTERNENUM inlines a
pattern-major variant of it.

Since the id-based enumeration refactor the loop never touches a
:class:`~repro.index.entry.PathEntry`: postings are iterated as
``(path_id, sim)`` scalar pairs (cached id columns of
:class:`~repro.index.store.PostingList`, or the baseline's scratch pair
lists), tree-validity goes through
:meth:`~repro.index.store.PostingStore.form_tree` and scoring through
:meth:`~repro.index.store.PostingStore.score_terms`, both of which read
the flat path columns directly.  Sinks receive the id and sim tuples and
materialize nothing; kept subtrees become lazy
:class:`~repro.search.result.ComboRef` objects at the result boundary.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from repro.index.entry import PathEntry, combination_score_terms
from repro.index.store import PostingStore
from repro.scoring.components import SubtreeComponents
from repro.scoring.function import ScoringFunction
from repro.search.result import ComboRef, SearchStats


def combo_score(
    scoring: ScoringFunction, combo: Sequence[PathEntry]
) -> float:
    """score(T, q) of a subtree given as a materialized entry combination.

    Off the hot path since the id-based refactor — retained for the
    result boundary, the entry-based reference enumeration
    (:mod:`repro.search.reference`), and tests.
    """
    size, pr, sim = combination_score_terms(combo)
    return scoring.subtree_score(SubtreeComponents(size, pr, sim))


def pair_scorer(
    store: PostingStore, scoring: ScoringFunction
) -> Callable[[Sequence[Tuple[int, float]]], float]:
    """``pairs -> score(T, q)`` bound to store columns + scoring weights.

    The hot-loop scorer the algorithms hoist before their sinks: one
    closure call per valid combination, no component object and no id/sim
    tuples.  Bit-identical to :func:`combo_score` over the materialized
    entries.
    """
    score_pairs = store.pairs_scorer()
    subtree_score_terms = scoring.subtree_score_terms

    def score(pairs: Sequence[Tuple[int, float]]) -> float:
        size, pr, sim = score_pairs(pairs)
        return subtree_score_terms(size, pr, sim)

    return score


def pair_rows(postings) -> Sequence[Tuple[int, float]]:
    """A posting sequence as ``(path_id, sim)`` pairs.

    :class:`~repro.index.store.PostingList` leaves expose a cached pair
    list; the baseline's scratch maps already hold plain pair lists and
    pass through untouched.
    """
    pairs = getattr(postings, "pairs", None)
    return postings if pairs is None else pairs()


#: Per-keyword map from a pattern key to that keyword's postings at this
#: root.  Keys are interned PatternIds for index-backed callers and raw
#: (labels, flag) tuples for the baseline; values are posting-list
#: flyweights for index-backed callers and plain ``(path_id, sim)`` pair
#: lists for the baseline — the loop is agnostic to both (see
#: :func:`pair_rows`).
PatternMap = Mapping[object, Sequence]

#: sink(pattern_key_combo, pair_combo) -> None, where ``pair_combo`` is
#: one ``(path_id, sim)`` pair per query keyword.
Sink = Callable[
    [Tuple[object, ...], Tuple[Tuple[int, float], ...]], None
]


def expand_root(
    store: PostingStore,
    pattern_maps: Sequence[PatternMap],
    sink: Sink,
    stats: SearchStats,
    form_tree: Optional[Callable] = None,
    pattern_filter: Optional[Callable[[Tuple[object, ...]], bool]] = None,
    key_filter: Optional[Callable[[int, object], bool]] = None,
) -> None:
    """Enumerate all valid subtrees under one root into ``sink``.

    ``pattern_maps[i]`` is keyword i's ``pattern -> postings`` map at the
    root; ``store`` is the posting store the path ids refer to.  Every
    emitted combination is a tree (the check that the paper's pseudo-code
    leaves implicit); rejected combinations are counted in
    ``stats.tree_check_rejections``.  Callers looping over many roots
    should hoist ``form_tree = store.pairs_checker()`` once per query and
    pass it in (like they hoist :func:`pair_scorer`); it defaults to a
    fresh fetch for one-off calls.

    ``pattern_filter`` and ``key_filter`` are the bound-driven pruning
    hooks.  ``key_filter(word_index, key)`` returning ``False`` removes
    one keyword's path pattern from the product *before* it is formed —
    a whole slice of pattern combinations vanishes per exclusion, each
    counted once in ``stats.prefixes_skipped``.
    ``pattern_filter(key_combo, product_size)`` returning ``False`` for
    a surviving pattern key combination skips that pattern's path
    product (of ``product_size`` combinations) at this root — counted in
    ``stats.prefixes_skipped`` (one per pattern×root skip) and
    ``stats.pairs_skipped`` (the path combinations never enumerated);
    the size lets the filter decline to bound patterns whose join is
    cheaper than the bound.  The caller owns admissibility: exclude a
    key or pattern only when an *admissible* upper bound on everything
    it could still contribute falls below the running k-th score (see
    ``docs/pruning.md``).
    """
    if any(not pattern_map for pattern_map in pattern_maps):
        return
    if key_filter is None:
        key_lists = [list(pattern_map.keys()) for pattern_map in pattern_maps]
    else:
        key_lists = []
        for i, pattern_map in enumerate(pattern_maps):
            keys = []
            for key in pattern_map:
                if key_filter(i, key):
                    keys.append(key)
                else:
                    stats.prefixes_skipped += 1
            if not keys:
                return
            key_lists.append(keys)
    if form_tree is None:
        form_tree = store.pairs_checker()
    for key_combo in product(*key_lists):
        if pattern_filter is not None:
            postings = [
                pattern_maps[i][key] for i, key in enumerate(key_combo)
            ]
            total = 1
            for rows in postings:
                total *= len(rows)
            if not pattern_filter(key_combo, total):
                stats.prefixes_skipped += 1
                stats.pairs_skipped += total
                continue
            stats.patterns_checked += 1
            pair_lists = [pair_rows(rows) for rows in postings]
        else:
            stats.patterns_checked += 1
            pair_lists = [
                pair_rows(pattern_maps[i][key])
                for i, key in enumerate(key_combo)
            ]
        emitted = False
        for pair_combo in product(*pair_lists):
            stats.subtrees_enumerated += 1
            if form_tree(pair_combo):
                sink(key_combo, pair_combo)
                emitted = True
            else:
                stats.tree_check_rejections += 1
        if not emitted:
            # Possible only through tree-check rejections: by construction
            # every pattern product at a shared root joins at least one
            # path combination (Section 4.2's non-emptiness argument).
            stats.empty_patterns += 1


def join_pattern_roots(
    store: PostingStore,
    root_maps: Sequence[Mapping[int, Sequence]],
    scoring: ScoringFunction,
    keep_subtrees: bool,
    stats: SearchStats,
):
    """Evaluate one candidate tree pattern by joining paths at shared roots.

    ``root_maps[i]`` maps roots to keyword i's postings *with this
    pattern's i-th path pattern* (i.e. ``Roots(w_i, P_i)`` from the
    pattern-first index).  Returns ``(aggregate, trees, roots)`` where
    ``aggregate`` is ``None`` when the pattern is empty and ``trees``
    holds lazy :class:`~repro.search.result.ComboRef` subtrees.  This is
    the inner join of Algorithm 2 (lines 5-8), also reused by
    LINEARENUM-TOPK's exact re-scoring step.
    """
    smallest = min(root_maps, key=len)
    roots = [
        root
        for root in smallest
        if all(root in root_map for root_map in root_maps)
    ]
    if not roots:
        stats.empty_patterns += 1
        return None, [], []
    aggregate = scoring.running()
    trees: List[ComboRef] = []
    form_tree = store.pairs_checker()
    score = pair_scorer(store, scoring)
    for root in sorted(roots):
        pair_lists = [pair_rows(root_map[root]) for root_map in root_maps]
        for pair_combo in product(*pair_lists):
            stats.subtrees_enumerated += 1
            if not form_tree(pair_combo):
                stats.tree_check_rejections += 1
                continue
            aggregate.add(score(pair_combo))
            if keep_subtrees:
                trees.append(ComboRef(store, pair_combo))
    if aggregate.count == 0:
        stats.empty_patterns += 1
        return None, [], roots
    return aggregate, trees, roots


def expand_root_topk(
    store: PostingStore,
    root,
    pattern_maps: Sequence[PatternMap],
    bounds,
    threshold,
    sink: Sink,
    stats: SearchStats,
    form_tree: Callable,
    sorted_pairs_memo: dict,
) -> None:
    """Bound-driven EXPANDROOT for *individual-subtree* top-k ranking.

    Only valid when every emitted combination is ranked on its own (the
    individual-subtree queue of Section 5.3) — never when combinations
    are aggregated into pattern sums, where skipping one combination
    would corrupt a retained pattern's score.  Three pruning levels, all
    against ``threshold`` (a :class:`~repro.core.topk.TopKThreshold`):

    * a whole pattern combination is skipped when the upper bound over
      its best possible subtree falls below the k-th score
      (``prefixes_skipped``);
    * inside the path product, a partial combination is abandoned when
      its exact partial sums plus the remaining leaves' extreme sums
      cannot reach the k-th score (``pairs_skipped`` counts the product
      of the remaining list lengths);
    * the innermost leaf is iterated in bound-decreasing similarity
      order (cached per leaf in ``sorted_pairs_memo``) — descending sim
      for a positive similarity exponent, ascending for a negative one —
      so the first pair whose bound fails ends the whole suffix run
      (``pairs_skipped`` counts the rest of the run).

    While the queue is not yet full nothing can be pruned, and the plain
    product loop runs with zero bound overhead.  ``bounds`` is the
    query's :class:`~repro.search.bounds.QueryBounds`; ``pattern_maps``
    must be index-backed (keys are interned pattern ids).
    """
    if any(not pattern_map for pattern_map in pattern_maps):
        return
    m = len(pattern_maps)
    last = m - 1
    sizes, prs = store.path_columns()
    score_upper = bounds.score_upper
    admits = threshold.admits
    key_lists = [list(pattern_map.keys()) for pattern_map in pattern_maps]
    for key_combo in product(*key_lists):
        leaves = [pattern_maps[i][key] for i, key in enumerate(key_combo)]
        lens = [len(leaf) for leaf in leaves]
        if not threshold.is_active:
            # Queue not full yet: enumerate exactly like expand_root.
            stats.patterns_checked += 1
            emitted = False
            for pair_combo in product(*[pair_rows(leaf) for leaf in leaves]):
                stats.subtrees_enumerated += 1
                if form_tree(pair_combo):
                    sink(key_combo, pair_combo)
                    emitted = True
                else:
                    stats.tree_check_rejections += 1
            if not emitted:
                stats.empty_patterns += 1
            continue
        leaf_bounds = bounds.leaf_bounds(key_combo, root)
        total = 1
        for n in lens:
            total *= n
        if not admits(bounds.combo_upper(leaf_bounds)):
            stats.prefixes_skipped += 1
            stats.pairs_skipped += total
            continue
        stats.patterns_checked += 1
        pair_lists = [pair_rows(leaf) for leaf in leaves]
        # Per-level extreme sums of the *remaining* leaves (suffixes), and
        # remaining-product sizes for the pairs_skipped accounting.
        suffix_size = [0] * (m + 1)
        suffix_pr = [0.0] * (m + 1)
        suffix_sim = [0.0] * (m + 1)
        remaining = [1] * (m + 1)
        for j in range(last, -1, -1):
            pick_size, pick_pr, pick_sim = bounds.picked(leaf_bounds[j])
            suffix_size[j] = suffix_size[j + 1] + pick_size
            suffix_pr[j] = suffix_pr[j + 1] + pick_pr
            suffix_sim[j] = suffix_sim[j + 1] + pick_sim
            remaining[j] = remaining[j + 1] * lens[j]
        inner_key = id(leaves[last])
        inner = sorted_pairs_memo.get(inner_key)
        if inner is None:
            # Bound-decreasing order: the run-break below requires the
            # score bound to be monotone non-increasing along the run,
            # so the sort direction follows the similarity exponent's
            # sign (with z3 == 0 the bound ignores sim; either order is
            # monotone).
            descending = bounds.scoring.z3 >= 0
            inner = sorted(
                pair_lists[last],
                key=(lambda pair: -pair[1]) if descending
                else (lambda pair: pair[1]),
            )
            sorted_pairs_memo[inner_key] = inner
        emitted = False
        last_size = suffix_size[last]
        last_pr = suffix_pr[last]

        def descend(depth, size, pr, sim, chosen) -> None:
            nonlocal emitted
            if depth == last:
                n = len(inner)
                for index, pair in enumerate(inner):
                    if not admits(
                        score_upper(size + last_size, pr + last_pr, sim + pair[1])
                    ):
                        # Sorted by sim descending: every later pair's
                        # bound is no larger — end the run.
                        stats.pairs_skipped += n - index
                        return
                    stats.subtrees_enumerated += 1
                    pair_combo = chosen + (pair,)
                    if form_tree(pair_combo):
                        sink(key_combo, pair_combo)
                        emitted = True
                    else:
                        stats.tree_check_rejections += 1
                return
            next_depth = depth + 1
            tail_size = suffix_size[next_depth]
            tail_pr = suffix_pr[next_depth]
            tail_sim = suffix_sim[next_depth]
            tail_remaining = remaining[next_depth]
            for pair in pair_lists[depth]:
                path_id, pair_sim = pair
                new_size = size + sizes[path_id]
                new_pr = pr + prs[path_id]
                new_sim = sim + pair_sim
                if not admits(
                    score_upper(
                        new_size + tail_size,
                        new_pr + tail_pr,
                        new_sim + tail_sim,
                    )
                ):
                    stats.pairs_skipped += tail_remaining
                    continue
                descend(next_depth, new_size, new_pr, new_sim, chosen + (pair,))

        descend(0, 0, 0.0, 0.0, ())
        if not emitted:
            stats.empty_patterns += 1


def count_root_subtrees(pattern_maps: Sequence[PatternMap]) -> int:
    """Upper bound on subtrees under one root: the path-count product.

    This is the paper's N_R contribution (Algorithm 4, line 4) — computed
    from counts alone (posting-list lengths are O(1) slice widths), so
    combinations later rejected by the tree-validity check are included,
    exactly as in the paper.
    """
    total = 1
    for pattern_map in pattern_maps:
        count = sum(len(postings) for postings in pattern_map.values())
        if count == 0:
            return 0
        total *= count
    return total
