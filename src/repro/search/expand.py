"""Shared subtree-expansion loop (EXPANDROOT of Algorithm 3).

Given, for a fixed candidate root, the per-keyword ``pattern -> paths``
maps, enumerate the *pattern product* and, inside each tree pattern, the
*path product*; every path combination passing the tree-validity check is
one valid subtree.  Both LINEARENUM variants and the baseline drive this
loop; PATTERNENUM inlines a pattern-major variant of it.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, List, Mapping, Sequence, Tuple

from repro.index.entry import (
    PathEntry,
    combination_score_terms,
    entries_form_tree,
)
from repro.scoring.components import SubtreeComponents
from repro.scoring.function import ScoringFunction
from repro.search.result import SearchStats


def combo_score(
    scoring: ScoringFunction, combo: Sequence[PathEntry]
) -> float:
    """score(T, q) of a subtree given as an entry combination."""
    size, pr, sim = combination_score_terms(combo)
    return scoring.subtree_score(SubtreeComponents(size, pr, sim))

#: Per-keyword map from a pattern key to that keyword's paths at this root.
#: Keys are interned PatternIds for index-backed callers and raw
#: (labels, flag) tuples for the baseline; values are plain lists for the
#: baseline and lazy :class:`~repro.index.store.PostingList` flyweights for
#: index-backed callers — the loop is agnostic to both.
PatternMap = Mapping[object, Sequence[PathEntry]]

#: sink(pattern_key_combo, entry_combo) -> None
Sink = Callable[[Tuple[object, ...], Tuple[PathEntry, ...]], None]


def expand_root(
    pattern_maps: Sequence[PatternMap],
    sink: Sink,
    stats: SearchStats,
) -> None:
    """Enumerate all valid subtrees under one root into ``sink``.

    ``pattern_maps[i]`` is keyword i's ``pattern -> entries`` map at the
    root.  Every emitted combination is a tree (the check that the paper's
    pseudo-code leaves implicit); rejected combinations are counted in
    ``stats.tree_check_rejections``.
    """
    if any(not pattern_map for pattern_map in pattern_maps):
        return
    key_lists = [list(pattern_map.keys()) for pattern_map in pattern_maps]
    for key_combo in product(*key_lists):
        stats.patterns_checked += 1
        entry_lists = [
            pattern_maps[i][key] for i, key in enumerate(key_combo)
        ]
        emitted = False
        for entry_combo in product(*entry_lists):
            stats.subtrees_enumerated += 1
            if entries_form_tree(entry_combo):
                sink(key_combo, entry_combo)
                emitted = True
            else:
                stats.tree_check_rejections += 1
        if not emitted:
            # Possible only through tree-check rejections: by construction
            # every pattern product at a shared root joins at least one
            # path combination (Section 4.2's non-emptiness argument).
            stats.empty_patterns += 1


def join_pattern_roots(
    root_maps: Sequence[Mapping[int, Sequence[PathEntry]]],
    scoring: ScoringFunction,
    keep_subtrees: bool,
    stats: SearchStats,
):
    """Evaluate one candidate tree pattern by joining paths at shared roots.

    ``root_maps[i]`` maps roots to keyword i's paths *with this pattern's
    i-th path pattern* (i.e. ``Roots(w_i, P_i)`` from the pattern-first
    index).  Returns ``(aggregate, trees, roots)`` where ``aggregate`` is
    ``None`` when the pattern is empty.  This is the inner join of
    Algorithm 2 (lines 5-8), also reused by LINEARENUM-TOPK's exact
    re-scoring step.
    """
    from itertools import product as _product

    smallest = min(root_maps, key=len)
    roots = [
        root
        for root in smallest
        if all(root in root_map for root_map in root_maps)
    ]
    if not roots:
        stats.empty_patterns += 1
        return None, [], []
    aggregate = scoring.running()
    trees: List[Tuple[PathEntry, ...]] = []
    for root in sorted(roots):
        entry_lists = [root_map[root] for root_map in root_maps]
        for entry_combo in _product(*entry_lists):
            stats.subtrees_enumerated += 1
            if not entries_form_tree(entry_combo):
                stats.tree_check_rejections += 1
                continue
            aggregate.add(combo_score(scoring, entry_combo))
            if keep_subtrees:
                trees.append(entry_combo)
    if aggregate.count == 0:
        stats.empty_patterns += 1
        return None, [], roots
    return aggregate, trees, roots


def count_root_subtrees(pattern_maps: Sequence[PatternMap]) -> int:
    """Upper bound on subtrees under one root: the path-count product.

    This is the paper's N_R contribution (Algorithm 4, line 4) — computed
    from counts alone, so combinations later rejected by the tree-validity
    check are included, exactly as in the paper.
    """
    total = 1
    for pattern_map in pattern_maps:
        count = sum(len(entries) for entries in pattern_map.values())
        if count == 0:
            return 0
        total *= count
    return total
