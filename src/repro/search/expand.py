"""Shared subtree-expansion loop (EXPANDROOT of Algorithm 3), id-based.

Given, for a fixed candidate root, the per-keyword ``pattern -> postings``
maps, enumerate the *pattern product* and, inside each tree pattern, the
*path product*; every path combination passing the tree-validity check is
one valid subtree.  Both LINEARENUM variants, the baseline, and the
individual-subtree ranker drive this loop; PATTERNENUM inlines a
pattern-major variant of it.

Since the id-based enumeration refactor the loop never touches a
:class:`~repro.index.entry.PathEntry`: postings are iterated as
``(path_id, sim)`` scalar pairs (cached id columns of
:class:`~repro.index.store.PostingList`, or the baseline's scratch pair
lists), tree-validity goes through
:meth:`~repro.index.store.PostingStore.form_tree` and scoring through
:meth:`~repro.index.store.PostingStore.score_terms`, both of which read
the flat path columns directly.  Sinks receive the id and sim tuples and
materialize nothing; kept subtrees become lazy
:class:`~repro.search.result.ComboRef` objects at the result boundary.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from repro.index.entry import PathEntry, combination_score_terms
from repro.index.store import PostingStore
from repro.scoring.components import SubtreeComponents
from repro.scoring.function import ScoringFunction
from repro.search.result import ComboRef, SearchStats


def combo_score(
    scoring: ScoringFunction, combo: Sequence[PathEntry]
) -> float:
    """score(T, q) of a subtree given as a materialized entry combination.

    Off the hot path since the id-based refactor — retained for the
    result boundary, the entry-based reference enumeration
    (:mod:`repro.search.reference`), and tests.
    """
    size, pr, sim = combination_score_terms(combo)
    return scoring.subtree_score(SubtreeComponents(size, pr, sim))


def pair_scorer(
    store: PostingStore, scoring: ScoringFunction
) -> Callable[[Sequence[Tuple[int, float]]], float]:
    """``pairs -> score(T, q)`` bound to store columns + scoring weights.

    The hot-loop scorer the algorithms hoist before their sinks: one
    closure call per valid combination, no component object and no id/sim
    tuples.  Bit-identical to :func:`combo_score` over the materialized
    entries.
    """
    score_pairs = store.pairs_scorer()
    subtree_score_terms = scoring.subtree_score_terms

    def score(pairs: Sequence[Tuple[int, float]]) -> float:
        size, pr, sim = score_pairs(pairs)
        return subtree_score_terms(size, pr, sim)

    return score


def pair_rows(postings) -> Sequence[Tuple[int, float]]:
    """A posting sequence as ``(path_id, sim)`` pairs.

    :class:`~repro.index.store.PostingList` leaves expose a cached pair
    list; the baseline's scratch maps already hold plain pair lists and
    pass through untouched.
    """
    pairs = getattr(postings, "pairs", None)
    return postings if pairs is None else pairs()


#: Per-keyword map from a pattern key to that keyword's postings at this
#: root.  Keys are interned PatternIds for index-backed callers and raw
#: (labels, flag) tuples for the baseline; values are posting-list
#: flyweights for index-backed callers and plain ``(path_id, sim)`` pair
#: lists for the baseline — the loop is agnostic to both (see
#: :func:`pair_rows`).
PatternMap = Mapping[object, Sequence]

#: sink(pattern_key_combo, pair_combo) -> None, where ``pair_combo`` is
#: one ``(path_id, sim)`` pair per query keyword.
Sink = Callable[
    [Tuple[object, ...], Tuple[Tuple[int, float], ...]], None
]


def expand_root(
    store: PostingStore,
    pattern_maps: Sequence[PatternMap],
    sink: Sink,
    stats: SearchStats,
    form_tree: Optional[Callable] = None,
) -> None:
    """Enumerate all valid subtrees under one root into ``sink``.

    ``pattern_maps[i]`` is keyword i's ``pattern -> postings`` map at the
    root; ``store`` is the posting store the path ids refer to.  Every
    emitted combination is a tree (the check that the paper's pseudo-code
    leaves implicit); rejected combinations are counted in
    ``stats.tree_check_rejections``.  Callers looping over many roots
    should hoist ``form_tree = store.pairs_checker()`` once per query and
    pass it in (like they hoist :func:`pair_scorer`); it defaults to a
    fresh fetch for one-off calls.
    """
    if any(not pattern_map for pattern_map in pattern_maps):
        return
    key_lists = [list(pattern_map.keys()) for pattern_map in pattern_maps]
    if form_tree is None:
        form_tree = store.pairs_checker()
    for key_combo in product(*key_lists):
        stats.patterns_checked += 1
        pair_lists = [
            pair_rows(pattern_maps[i][key])
            for i, key in enumerate(key_combo)
        ]
        emitted = False
        for pair_combo in product(*pair_lists):
            stats.subtrees_enumerated += 1
            if form_tree(pair_combo):
                sink(key_combo, pair_combo)
                emitted = True
            else:
                stats.tree_check_rejections += 1
        if not emitted:
            # Possible only through tree-check rejections: by construction
            # every pattern product at a shared root joins at least one
            # path combination (Section 4.2's non-emptiness argument).
            stats.empty_patterns += 1


def join_pattern_roots(
    store: PostingStore,
    root_maps: Sequence[Mapping[int, Sequence]],
    scoring: ScoringFunction,
    keep_subtrees: bool,
    stats: SearchStats,
):
    """Evaluate one candidate tree pattern by joining paths at shared roots.

    ``root_maps[i]`` maps roots to keyword i's postings *with this
    pattern's i-th path pattern* (i.e. ``Roots(w_i, P_i)`` from the
    pattern-first index).  Returns ``(aggregate, trees, roots)`` where
    ``aggregate`` is ``None`` when the pattern is empty and ``trees``
    holds lazy :class:`~repro.search.result.ComboRef` subtrees.  This is
    the inner join of Algorithm 2 (lines 5-8), also reused by
    LINEARENUM-TOPK's exact re-scoring step.
    """
    smallest = min(root_maps, key=len)
    roots = [
        root
        for root in smallest
        if all(root in root_map for root_map in root_maps)
    ]
    if not roots:
        stats.empty_patterns += 1
        return None, [], []
    aggregate = scoring.running()
    trees: List[ComboRef] = []
    form_tree = store.pairs_checker()
    score = pair_scorer(store, scoring)
    for root in sorted(roots):
        pair_lists = [pair_rows(root_map[root]) for root_map in root_maps]
        for pair_combo in product(*pair_lists):
            stats.subtrees_enumerated += 1
            if not form_tree(pair_combo):
                stats.tree_check_rejections += 1
                continue
            aggregate.add(score(pair_combo))
            if keep_subtrees:
                trees.append(ComboRef(store, pair_combo))
    if aggregate.count == 0:
        stats.empty_patterns += 1
        return None, [], roots
    return aggregate, trees, roots


def count_root_subtrees(pattern_maps: Sequence[PatternMap]) -> int:
    """Upper bound on subtrees under one root: the path-count product.

    This is the paper's N_R contribution (Algorithm 4, line 4) — computed
    from counts alone (posting-list lengths are O(1) slice widths), so
    combinations later rejected by the tree-validity check are included,
    exactly as in the paper.
    """
    total = 1
    for pattern_map in pattern_maps:
        count = sum(len(postings) for postings in pattern_map.values())
        if count == 0:
            return 0
        total *= count
    return total
