"""Shared per-query enumeration state for the id-based search loops.

Every search algorithm needs the same per-query setup before its hot loop
can run: the resolved keywords, the per-word root-first posting maps, the
candidate-root intersection, the root-type partition, and (for
PATTERNENUM) the viable-type intersection from the pattern-first index.
Before this refactor each algorithm re-derived all of it; the engine's
``coverage`` call, for example, resolved the query and intersected the
root sets twice for one user request.

:class:`EnumerationContext` computes each piece lazily, at most once, and
is shared across however many algorithms run for one query.  It also
carries the backing :class:`~repro.index.store.PostingStore`, which is
what the hot loops call for tree-validity (``form_tree``) and scoring
(``score_terms``) — path entries are never materialized during
enumeration (see ``docs/enumeration.md``).

The baseline works over paths discovered online by backward walks rather
than over the index; it builds its context with :meth:`from_root_maps`
around a query-local scratch store, so all four algorithms drive the
identical id-based loop in :mod:`repro.search.expand`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.errors import SearchError
from repro.core.types import NodeId, PatternId, TypeId
from repro.index.builder import PathIndexes
from repro.index.store import PostingStore
from repro.search.bounds import QueryBounds

_EMPTY_MAP: Mapping = {}

#: One keyword's postings at one root: pattern key -> pair rows (either a
#: cached :meth:`~repro.index.store.PostingList.pairs` list or, for the
#: baseline's scratch maps, a plain list of ``(path_id, sim)`` tuples).
RootPatternMap = Mapping[object, Sequence]


class EnumerationContext:
    """Lazily-computed per-query state shared by all search algorithms.

    Also shared *across* queries by the
    :class:`~repro.search.service.SearchService` fragment cache (keyed by
    the resolved keyword tuple, against one store snapshot).  Concurrent
    readers are safe without locks: every memoized field is computed from
    pinned inputs and idempotent, so the worst race is two threads doing
    the same computation and one winning the (GIL-atomic) assignment.
    """

    __slots__ = (
        "indexes",
        "words",
        "store",
        "_root_maps",
        "_candidates",
        "_by_type",
        "_viable_types",
        "_bounds",
    )

    def __init__(
        self,
        indexes: PathIndexes,
        query,
        candidate_roots: Optional[List[NodeId]] = None,
    ) -> None:
        """Fresh per-query state for ``query`` against ``indexes``.

        ``candidate_roots`` (sorted) may be supplied when the caller
        already knows the per-word root-set intersection — the
        :class:`~repro.search.service.SearchService` fragment cache
        shares it across queries over the same keyword set, since the
        intersection depends only on the words, not their order.
        """
        self.indexes: Optional[PathIndexes] = indexes
        self.words: Tuple[str, ...] = indexes.resolve_query(query)
        self.store: PostingStore = indexes.store
        self._root_maps: Optional[List[Mapping[NodeId, RootPatternMap]]] = None
        self._candidates: Optional[List[NodeId]] = candidate_roots
        self._by_type: Optional[Dict[TypeId, List[NodeId]]] = None
        self._viable_types: Optional[Set[TypeId]] = None
        self._bounds: Optional[tuple] = None

    @classmethod
    def from_root_maps(
        cls,
        store: PostingStore,
        words: Tuple[str, ...],
        root_maps: List[Mapping[NodeId, RootPatternMap]],
        indexes: Optional[PathIndexes] = None,
        candidate_roots: Optional[List[NodeId]] = None,
    ) -> "EnumerationContext":
        """Wrap precomputed per-word root maps (the baseline's online walks).

        ``store`` is the scratch store the maps' path ids refer to; index
        accessors (:meth:`viable_types`) are unavailable unless ``indexes``
        is also given.  ``candidate_roots`` (sorted) may be supplied when
        the caller already intersected the per-word root sets, so the
        context does not re-derive it.
        """
        context = cls.__new__(cls)
        context.indexes = indexes
        context.words = words
        context.store = store
        context._root_maps = root_maps
        context._candidates = candidate_roots
        context._by_type = None
        context._viable_types = None
        context._bounds = None
        return context

    # ------------------------------------------------------------ root-first

    @property
    def root_maps(self) -> List[Mapping[NodeId, RootPatternMap]]:
        """Per-word ``root -> (pattern -> postings)`` maps, words in query
        order (``Roots(w_i)`` of the root-first index)."""
        maps = self._root_maps
        if maps is None:
            root_first = self.indexes.root_first
            maps = self._root_maps = [
                root_first.roots(word) for word in self.words
            ]
        return maps

    @property
    def candidate_roots(self) -> List[NodeId]:
        """Sorted intersection of the per-word root sets."""
        roots = self._candidates
        if roots is None:
            maps = self.root_maps
            smallest = min(maps, key=len)
            roots = self._candidates = sorted(
                root
                for root in smallest
                if all(root in root_map for root_map in maps)
            )
        return roots

    def roots_by_type(self, graph) -> Dict[TypeId, List[NodeId]]:
        """Candidate roots partitioned by node type (Section 4.2.1).

        Built fully before the (GIL-atomic) memoizing assignment — a
        concurrent reader of a shared context must never observe a
        partial partition (see the class docstring's race contract).
        """
        by_type = self._by_type
        if by_type is None:
            by_type = {}
            for root in self.candidate_roots:
                by_type.setdefault(graph.node_type(root), []).append(root)
            self._by_type = by_type
        return by_type

    def pattern_maps(self, root: NodeId) -> List[RootPatternMap]:
        """``pattern -> postings`` per word at one root.

        Not memoized: every enumeration loop visits each candidate root
        exactly once per query, so a per-root cache would only add dict
        traffic to the hot loop and pin the lists for the context's
        lifetime.
        """
        return [root_map.get(root, _EMPTY_MAP) for root_map in self.root_maps]

    def path_count(self, word_index: int, root: NodeId) -> int:
        """``|Paths(w_i, r)|`` without enumerating (Algorithm 4, line 4)."""
        if self.indexes is not None:
            return self.indexes.root_first.path_count(
                self.words[word_index], root
            )
        pattern_map = self.root_maps[word_index].get(root, _EMPTY_MAP)
        return sum(len(rows) for rows in pattern_map.values())

    # ------------------------------------------------------------- pruning

    def query_bounds(self, scoring) -> Optional[QueryBounds]:
        """Admissible score upper bounds for this query under ``scoring``.

        Built lazily from the store's aggregate bound columns and cached
        for the context's lifetime (multi-algorithm drivers share one
        bounds object per query, like the root maps).  ``None`` when
        ``scoring`` falls outside the bounded class — callers then run
        unpruned.
        """
        cached = self._bounds
        if cached is not None and cached[0] is scoring:
            return cached[1]
        bounds = QueryBounds.create(self.store, scoring, self.words)
        self._bounds = (scoring, bounds)
        return bounds

    def root_upper_bound(self, root: NodeId, scoring) -> float:
        """Upper bound on any pattern's score confined to subtrees at
        ``root`` (and on any single subtree there, under MAX).

        Convenience wrapper over :class:`~repro.search.bounds.QueryBounds`
        for explain tooling and tests; the hot loops use the bounds
        object directly.  ``inf`` when bounds are unavailable.
        """
        bounds = self.query_bounds(scoring)
        if bounds is None:
            return math.inf
        term = bounds.root_term(root)
        if term is None:
            return 0.0
        count, combo_upper = term
        return bounds._finish(count, count * combo_upper, combo_upper)

    def prefix_upper_bound(
        self,
        pids: Sequence[PatternId],
        roots: Sequence[NodeId],
        scoring,
    ) -> float:
        """Upper bound over all patterns completing the path-pattern
        prefix ``pids`` with root set within ``roots`` (``inf`` when
        bounds are unavailable)."""
        bounds = self.query_bounds(scoring)
        if bounds is None:
            return math.inf
        return bounds.prefix_upper(pids, len(pids), roots)

    # --------------------------------------------------------- pattern-first

    def viable_types(self) -> Set[TypeId]:
        """Root types reaching *all* keywords (PATTERNENUM's outer loop).

        Equivalent to the paper's loop over every type: a type missing for
        some keyword can only yield empty patterns.
        """
        types = self._viable_types
        if types is None:
            pattern_first = self.indexes.pattern_first
            types = set()
            for i, word in enumerate(self.words):
                word_types = pattern_first.root_types(word)
                types = word_types if i == 0 else types & word_types
                if not types:
                    break
            self._viable_types = types
        return types


def ensure_context(
    indexes: PathIndexes, query, context: Optional[EnumerationContext]
) -> EnumerationContext:
    """The caller-supplied context, or a fresh one for ``query``.

    Algorithms accept an optional shared context so multi-algorithm
    drivers (the engine facade, ``mixed_search``, ``coverage``) pay the
    per-query setup once; direct calls build their own.

    A supplied context is sanity-checked: it must have been built for the
    same ``indexes`` (its path ids are meaningless against any other
    store) and resolve to the same keywords — resolution is cheap
    (tokenize/stem) next to any search, and both mismatches would
    otherwise return silently wrong results for the query the caller
    actually asked.
    """
    if context is not None:
        if context.indexes is not indexes:
            raise SearchError(
                "shared EnumerationContext was built for a different index"
            )
        words = tuple(indexes.resolve_query(query))
        if words != context.words:
            raise SearchError(
                f"shared EnumerationContext was built for {context.words!r}, "
                f"not {words!r}"
            )
        return context
    return EnumerationContext(indexes, query)
