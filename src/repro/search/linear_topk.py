"""LINEARENUM-TOPK — Algorithm 4 of the paper.

Extends LINEARENUM with two ideas from Sections 4.2.1-4.2.2:

* **Partitioning by types**: candidate roots are processed one root type at
  a time, so the ``TreeDict`` dictionary holds only one type's subtrees at
  any moment (the paper's memory-footprint fix).
* **Root sampling**: for a root type whose estimated subtree count ``N_R``
  (computed from ``|Paths(w_i, r)|`` counts, no enumeration) reaches the
  threshold ``Lambda``, only a ``rho``-fraction of candidate roots is
  expanded.  Pattern scores are estimated with the Horvitz-Thompson
  scale-up ``s_hat = (1/rho) * sum(sampled)``, the per-type top-k by
  estimate are re-scored *exactly* via the pattern-first index, and the
  global queue ranks exact scores — exactly the paper's pipeline.

Enumeration is id-based end-to-end (see ``docs/enumeration.md``): the
EXPANDROOT loop and the exact re-scoring join both run on integer path
ids against the columnar store, materializing no path entries.

With ``sampling_threshold=inf`` (or ``sampling_rate=1``) the output is the
exact top-k (Theorem 4's correctness case); with sampling, Theorem 5 bounds
the probability of inverting any two patterns.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Dict, List, Optional, Tuple

from repro.core.errors import SearchError
from repro.core.topk import TopKQueue, TopKThreshold
from repro.core.types import PatternId
from repro.index.builder import PathIndexes
from repro.scoring.aggregate import AVG, RunningAggregate
from repro.scoring.function import PAPER_DEFAULT, ScoringFunction
from repro.search.bounds import SAFETY
from repro.search.context import EnumerationContext, ensure_context
from repro.search.expand import expand_root, join_pattern_roots, pair_scorer
from repro.search.result import (
    ComboRef,
    EntryCombo,
    PatternAnswer,
    SearchResult,
    SearchStats,
    Stopwatch,
    order_answers,
    pattern_from_key,
)

PatternKey = Tuple[PatternId, ...]

_NEG_INF = float("-inf")

#: Queries whose estimated subtree count (N_R, Algorithm 4 line 4) stays
#: below this run unpruned: bound bookkeeping would dominate.
_PRUNE_MIN_SUBTREES = 512


def linear_topk_search(
    indexes: PathIndexes,
    query,
    k: int = 100,
    scoring: ScoringFunction = PAPER_DEFAULT,
    sampling_threshold: float = math.inf,
    sampling_rate: float = 1.0,
    seed: Optional[int] = 0,
    keep_subtrees: bool = True,
    prune: bool = True,
    context: Optional[EnumerationContext] = None,
) -> SearchResult:
    """Find the top-k d-height tree patterns (LINEARENUM-TOPK(Λ, ρ)).

    Parameters
    ----------
    sampling_threshold:
        The paper's Λ: sampling activates for a root type only when its
        subtree count ``N_R`` is at least this.  ``inf`` (default) never
        samples; ``0`` always samples.
    sampling_rate:
        The paper's ρ: probability that a candidate root is expanded when
        sampling is active.  Must be in (0, 1].
    seed:
        Seed for the sampling RNG; pass ``None`` for nondeterministic
        sampling.
    prune:
        Bound-driven top-k early termination (default on): root types
        are processed in descending upper-bound order and skipped — all
        their roots with them — once their bound falls below the running
        k-th score, and within an unsampled type a pattern whose
        whole-index upper bound cannot reach the k-th score is skipped at
        every root.  Sampling decisions are pre-drawn in the canonical
        type/root order, so answers are bit-identical to ``prune=False``
        even under sampling — only the work differs (``docs/pruning.md``).
    """
    if not 0.0 < sampling_rate <= 1.0:
        raise SearchError(
            f"sampling rate must be in (0, 1], got {sampling_rate}"
        )
    if sampling_threshold < 0:
        raise SearchError(
            f"sampling threshold must be >= 0, got {sampling_threshold}"
        )
    watch = Stopwatch()
    stats = SearchStats(algorithm="linear_topk")
    rng = random.Random(seed)
    context = ensure_context(indexes, query, context)
    words = context.words
    store = context.store
    graph = indexes.graph

    stats.candidate_roots = len(context.candidate_roots)
    by_type = context.roots_by_type(graph)
    score = pair_scorer(store, scoring)
    form_tree = store.pairs_checker()

    queue: TopKQueue = TopKQueue(k)
    threshold = TopKThreshold(queue)
    bounds = context.query_bounds(scoring) if prune else None
    #: Per keyword: pids proven unable to reach the k-th score.  A dead
    #: pid is excluded from every later pattern product; patterns already
    #: holding partial aggregates through it are swept at type flush.
    dead_pids: List[set] = [set() for _ in words]

    # Per-type plans are prepared in the canonical (sorted type, sorted
    # root) order so the sampling RNG stream is identical with and
    # without pruning; pruning only reorders *processing*.
    plans = []
    total_work = 0
    for root_type in sorted(by_type):
        roots = sorted(by_type[root_type])

        subtree_count = 0
        for root in roots:
            per_root = 1
            for i in range(len(words)):
                per_root *= context.path_count(i, root)
            subtree_count += per_root
        if subtree_count >= sampling_threshold:
            rate = sampling_rate
        else:
            rate = 1.0
        if rate < 1.0:
            expanded = [root for root in roots if rng.random() < rate]
        else:
            expanded = roots
        total_work += subtree_count
        plans.append([root_type, roots, rate, expanded, 0.0])
    if bounds is not None and total_work < _PRUNE_MIN_SUBTREES:
        # Adaptive gate: the whole query enumerates fewer subtrees than
        # the bound bookkeeping would cost — run exhaustively.
        bounds = None
    if bounds is not None:
        # Best types first: the k-th score tightens before the bulk of
        # the candidate roots is ever expanded.
        for plan in plans:
            plan[4] = SAFETY * sum(
                bounds.root_mass(root) for root in plan[1]
            )
        plans.sort(key=lambda plan: (-plan[4], plan[0]))

    for root_type, roots, rate, expanded, type_upper in plans:
        if bounds is not None and not threshold.admits(type_upper):
            # No pattern rooted in this type can reach the k-th score.
            stats.roots_skipped += len(roots)
            continue
        if rate < 1.0:
            stats.sampled_types += 1
        # Within-type filters pay off only when patterns span enough
        # roots to amortize their one-time bound; small types run the
        # plain loop (the type-level skip above still applies).

        aggregates: Dict[PatternKey, RunningAggregate] = {}
        trees_by_pattern: Dict[PatternKey, List[EntryCombo]] = {}
        store_trees = keep_subtrees and rate >= 1.0

        def sink(key_combo, pairs) -> None:
            aggregate = aggregates.get(key_combo)
            if aggregate is None:
                aggregate = aggregates[key_combo] = scoring.running()
                if store_trees:
                    trees_by_pattern[key_combo] = []
            aggregate.add(score(pairs))
            if store_trees:
                trees_by_pattern[key_combo].append(ComboRef(store, pairs))

        pattern_filter = None
        key_filter = None
        cut = _NEG_INF
        if bounds is not None and rate >= 1.0:
            # Exact mode only: a pattern whose upper bound over *all* its
            # roots falls below ``cut`` — a proven lower bound on the
            # *final* k-th score — can be dropped, partial aggregate and
            # all: its exact score can never be retained by the global
            # queue.  ``cut`` starts at the k-th score carried over from
            # earlier types and, for monotone aggregators, is raised
            # mid-type from the running partial sums: the k-th largest
            # partial is a lower bound on the final k-th largest score,
            # so pruning activates *inside* the very first (largest)
            # type, before anything was ever flushed.  Under sampling the
            # per-type top-k is chosen by *estimate* and dropping a
            # pattern would change which live patterns are selected — so
            # sampled types always enumerate fully.
            if queue.is_full:
                cut = queue.threshold()
            dead = -1.0  # sentinel: upper bounds are strictly positive
            verdicts: Dict[PatternKey, float] = {}

            if 2 <= len(words) <= 3:
                # The per-pattern bound amortizes over a pattern's roots.
                # With one keyword the pid filter below is the same test;
                # past ~3 keywords pattern combinations are mostly unique
                # per root and their joins are as cheap as the bound, so
                # bounding them is a measured net loss — only the pid
                # filter runs there.
                def pattern_filter(
                    key_combo, _product_size, verdicts=verdicts
                ) -> bool:
                    if cut == _NEG_INF:
                        return True  # nothing to prune against yet
                    upper = verdicts.get(key_combo)
                    if upper == dead:
                        return False
                    if upper is None:
                        upper = verdicts[key_combo] = (
                            bounds.full_pattern_upper(key_combo, max_roots=32)
                        )
                    if upper < cut:
                        verdicts[key_combo] = dead
                        if aggregates.pop(key_combo, None) is not None:
                            trees_by_pattern.pop(key_combo, None)
                        return False
                    return True

            pid_caches = [
                bounds.pid_upper_cache(i) for i in range(len(words))
            ]

            def key_filter(word_index, pid, pid_caches=pid_caches) -> bool:
                # A dead pid removes a whole slice of the pattern product
                # before it is formed; patterns already aggregating
                # through it are swept before the flush below.
                if cut == _NEG_INF:
                    return True
                upper = pid_caches[word_index].get(pid)
                if upper is None:
                    upper = bounds.pid_upper(word_index, pid)
                if upper >= cut:
                    return True
                dead_pids[word_index].add(pid)
                return False

        # Partial sums only grow for sum/max/count aggregation, so their
        # running k-th largest value is a valid lower bound on the final
        # k-th score; avg partials can shrink and must not raise the cut.
        partials_grow = scoring.aggregator != AVG

        for index, root in enumerate(expanded):
            # Geometric early refreshes (the cut rises fastest at the
            # start), then a fixed stride so the O(live patterns) scan
            # stays a small fraction of the type's work.
            if (
                key_filter is not None
                and partials_grow
                and index
                and ((index & (index - 1)) == 0 or index % 16 == 0)
                and len(aggregates) >= k
            ):
                kth_partial = heapq.nlargest(
                    k, (agg.value() for agg in aggregates.values())
                )[-1]
                if kth_partial > cut:
                    cut = kth_partial
            stats.roots_expanded += 1
            expand_root(
                store,
                context.pattern_maps(root),
                sink,
                stats,
                form_tree,
                pattern_filter=pattern_filter,
                key_filter=key_filter,
            )
        if key_filter is not None and any(dead_pids):
            # Sweep partial aggregates orphaned by a pid that died after
            # they started accumulating: their exact score is provably
            # below the final k-th, so dropping them cannot change the
            # global queue (docs/pruning.md).
            for key_combo in list(aggregates):
                if any(
                    pid in dead_pids[i] for i, pid in enumerate(key_combo)
                ):
                    del aggregates[key_combo]
                    trees_by_pattern.pop(key_combo, None)
        if not aggregates:
            continue
        stats.nonempty_patterns += len(aggregates)

        estimated = heapq.nlargest(
            min(k, len(aggregates)),
            ((agg.estimate(rate), key) for key, agg in aggregates.items()),
        )
        for estimate, key in estimated:
            if rate >= 1.0:
                aggregate = aggregates[key]
                exact = aggregate.value()
                count = aggregate.count
                trees = trees_by_pattern.get(key, [])
            else:
                # Exact re-scoring through the pattern-first index
                # (Algorithm 4, line 11).  A sampled estimate can name a
                # pattern whose exact evaluation is non-empty by
                # construction, so aggregate is never None here.
                stats.rescored_patterns += 1
                pattern_roots = [
                    indexes.pattern_first.roots(word, pid)
                    for word, pid in zip(words, key)
                ]
                aggregate, trees, _roots = join_pattern_roots(
                    store, pattern_roots, scoring, keep_subtrees, stats
                )
                if aggregate is None:  # pragma: no cover - see comment above
                    continue
                exact = aggregate.value()
                count = aggregate.count
            if queue.would_accept(exact):
                canonical = tuple(
                    (indexes.interner.pattern(pid).labels,
                     indexes.interner.pattern(pid).ends_at_edge)
                    for pid in key
                )
                queue.push(
                    exact,
                    (key, count, trees, estimate if rate < 1.0 else None),
                    tie_key=canonical,
                )

    if bounds is not None:
        threshold.write_stats(stats)
    answers = []
    for score, (key, count, trees, estimate) in queue.ranked():
        answers.append(
            PatternAnswer(
                pattern_key=key,
                pattern=pattern_from_key(indexes, key),
                score=score,
                num_subtrees=count,
                subtrees=trees,
                estimated_score=estimate,
            )
        )
    order_answers(answers)
    stats.elapsed_seconds = watch.elapsed()
    return SearchResult(
        query=words, k=k, d=indexes.d, answers=answers, stats=stats
    )
