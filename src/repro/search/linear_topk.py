"""LINEARENUM-TOPK — Algorithm 4 of the paper.

Extends LINEARENUM with two ideas from Sections 4.2.1-4.2.2:

* **Partitioning by types**: candidate roots are processed one root type at
  a time, so the ``TreeDict`` dictionary holds only one type's subtrees at
  any moment (the paper's memory-footprint fix).
* **Root sampling**: for a root type whose estimated subtree count ``N_R``
  (computed from ``|Paths(w_i, r)|`` counts, no enumeration) reaches the
  threshold ``Lambda``, only a ``rho``-fraction of candidate roots is
  expanded.  Pattern scores are estimated with the Horvitz-Thompson
  scale-up ``s_hat = (1/rho) * sum(sampled)``, the per-type top-k by
  estimate are re-scored *exactly* via the pattern-first index, and the
  global queue ranks exact scores — exactly the paper's pipeline.

Enumeration is id-based end-to-end (see ``docs/enumeration.md``): the
EXPANDROOT loop and the exact re-scoring join both run on integer path
ids against the columnar store, materializing no path entries.

With ``sampling_threshold=inf`` (or ``sampling_rate=1``) the output is the
exact top-k (Theorem 4's correctness case); with sampling, Theorem 5 bounds
the probability of inverting any two patterns.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Dict, List, Optional, Tuple

from repro.core.errors import SearchError
from repro.core.topk import TopKQueue
from repro.core.types import PatternId
from repro.index.builder import PathIndexes
from repro.scoring.aggregate import RunningAggregate
from repro.scoring.function import PAPER_DEFAULT, ScoringFunction
from repro.search.context import EnumerationContext, ensure_context
from repro.search.expand import expand_root, join_pattern_roots, pair_scorer
from repro.search.result import (
    ComboRef,
    EntryCombo,
    PatternAnswer,
    SearchResult,
    SearchStats,
    Stopwatch,
    order_answers,
    pattern_from_key,
)

PatternKey = Tuple[PatternId, ...]


def linear_topk_search(
    indexes: PathIndexes,
    query,
    k: int = 100,
    scoring: ScoringFunction = PAPER_DEFAULT,
    sampling_threshold: float = math.inf,
    sampling_rate: float = 1.0,
    seed: Optional[int] = 0,
    keep_subtrees: bool = True,
    context: Optional[EnumerationContext] = None,
) -> SearchResult:
    """Find the top-k d-height tree patterns (LINEARENUM-TOPK(Λ, ρ)).

    Parameters
    ----------
    sampling_threshold:
        The paper's Λ: sampling activates for a root type only when its
        subtree count ``N_R`` is at least this.  ``inf`` (default) never
        samples; ``0`` always samples.
    sampling_rate:
        The paper's ρ: probability that a candidate root is expanded when
        sampling is active.  Must be in (0, 1].
    seed:
        Seed for the sampling RNG; pass ``None`` for nondeterministic
        sampling.
    """
    if not 0.0 < sampling_rate <= 1.0:
        raise SearchError(
            f"sampling rate must be in (0, 1], got {sampling_rate}"
        )
    if sampling_threshold < 0:
        raise SearchError(
            f"sampling threshold must be >= 0, got {sampling_threshold}"
        )
    watch = Stopwatch()
    stats = SearchStats(algorithm="linear_topk")
    rng = random.Random(seed)
    context = ensure_context(indexes, query, context)
    words = context.words
    store = context.store
    graph = indexes.graph

    stats.candidate_roots = len(context.candidate_roots)
    by_type = context.roots_by_type(graph)
    score = pair_scorer(store, scoring)
    form_tree = store.pairs_checker()

    queue: TopKQueue = TopKQueue(k)
    for root_type in sorted(by_type):
        roots = sorted(by_type[root_type])

        subtree_count = 0
        for root in roots:
            per_root = 1
            for i in range(len(words)):
                per_root *= context.path_count(i, root)
            subtree_count += per_root
        if subtree_count >= sampling_threshold:
            rate = sampling_rate
        else:
            rate = 1.0
        if rate < 1.0:
            stats.sampled_types += 1

        aggregates: Dict[PatternKey, RunningAggregate] = {}
        trees_by_pattern: Dict[PatternKey, List[EntryCombo]] = {}
        store_trees = keep_subtrees and rate >= 1.0

        def sink(key_combo, pairs) -> None:
            aggregate = aggregates.get(key_combo)
            if aggregate is None:
                aggregate = aggregates[key_combo] = scoring.running()
                if store_trees:
                    trees_by_pattern[key_combo] = []
            aggregate.add(score(pairs))
            if store_trees:
                trees_by_pattern[key_combo].append(ComboRef(store, pairs))

        for root in roots:
            if rate < 1.0 and rng.random() >= rate:
                continue
            stats.roots_expanded += 1
            expand_root(
                store, context.pattern_maps(root), sink, stats, form_tree
            )
        if not aggregates:
            continue
        stats.nonempty_patterns += len(aggregates)

        estimated = heapq.nlargest(
            min(k, len(aggregates)),
            ((agg.estimate(rate), key) for key, agg in aggregates.items()),
        )
        for estimate, key in estimated:
            if rate >= 1.0:
                aggregate = aggregates[key]
                exact = aggregate.value()
                count = aggregate.count
                trees = trees_by_pattern.get(key, [])
            else:
                # Exact re-scoring through the pattern-first index
                # (Algorithm 4, line 11).  A sampled estimate can name a
                # pattern whose exact evaluation is non-empty by
                # construction, so aggregate is never None here.
                stats.rescored_patterns += 1
                pattern_roots = [
                    indexes.pattern_first.roots(word, pid)
                    for word, pid in zip(words, key)
                ]
                aggregate, trees, _roots = join_pattern_roots(
                    store, pattern_roots, scoring, keep_subtrees, stats
                )
                if aggregate is None:  # pragma: no cover - see comment above
                    continue
                exact = aggregate.value()
                count = aggregate.count
            if queue.would_accept(exact):
                canonical = tuple(
                    (indexes.interner.pattern(pid).labels,
                     indexes.interner.pattern(pid).ends_at_edge)
                    for pid in key
                )
                queue.push(
                    exact,
                    (key, count, trees, estimate if rate < 1.0 else None),
                    tie_key=canonical,
                )

    answers = []
    for score, (key, count, trees, estimate) in queue.ranked():
        answers.append(
            PatternAnswer(
                pattern_key=key,
                pattern=pattern_from_key(indexes, key),
                score=score,
                num_subtrees=count,
                subtrees=trees,
                estimated_score=estimate,
            )
        )
    order_answers(answers)
    stats.elapsed_seconds = watch.elapsed()
    return SearchResult(
        query=words, k=k, d=indexes.d, answers=answers, stats=stats
    )
