"""Search algorithms for the d-height tree pattern problem (Section 4)."""

from repro.search.baseline import baseline_search
from repro.search.context import EnumerationContext
from repro.search.engine import ALGORITHMS, TableAnswerEngine
from repro.search.individual import (
    CoverageMetrics,
    IndividualResult,
    coverage_metrics,
    individual_topk,
)
from repro.search.linear_enum import (
    Enumeration,
    count_answers,
    linear_enum,
    linear_enum_search,
)
from repro.search.linear_topk import linear_topk_search
from repro.search.mixed import MixedAnswer, MixedResult, mixed_search
from repro.search.pattern_enum import pattern_enum_search
from repro.search.plan import (
    ALGORITHM_ALIASES,
    QueryPlan,
    canonical_algorithm,
    execute_plan,
    plan_search,
)
from repro.search.relaxation import RelaxedResult, relaxed_search
from repro.search.result import (
    ComboRef,
    EntryCombo,
    PatternAnswer,
    SearchResult,
    SearchStats,
    pattern_from_key,
    pattern_from_labels,
)

from repro.search.service import SearchService, ServiceStats
from repro.search.sharding import ShardedSearchService, ShardWorkerPool

__all__ = [
    "ALGORITHMS",
    "ALGORITHM_ALIASES",
    "ComboRef",
    "QueryPlan",
    "SearchService",
    "ServiceStats",
    "ShardWorkerPool",
    "ShardedSearchService",
    "canonical_algorithm",
    "execute_plan",
    "plan_search",
    "CoverageMetrics",
    "Enumeration",
    "EntryCombo",
    "EnumerationContext",
    "IndividualResult",
    "MixedAnswer",
    "MixedResult",
    "PatternAnswer",
    "RelaxedResult",
    "SearchResult",
    "SearchStats",
    "TableAnswerEngine",
    "mixed_search",
    "relaxed_search",
    "baseline_search",
    "count_answers",
    "coverage_metrics",
    "individual_topk",
    "linear_enum",
    "linear_enum_search",
    "linear_topk_search",
    "pattern_enum_search",
    "pattern_from_key",
    "pattern_from_labels",
]
