"""Individual top-k valid subtrees and coverage metrics (Section 5.3).

The paper contrasts its tree-pattern answers with the classic "rank
individual subtrees" output: this module computes the top-k individual
valid subtrees by Equation 3, and the two Figure 13 metrics —

* **coverage**: the fraction of the individual top-k subtrees that appear
  as rows of some top-k tree pattern;
* **new patterns**: the fraction of top-k tree patterns none of whose
  subtrees made the individual top-k (interpretations a subtree ranker
  would never surface contiguously).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.core.topk import TopKQueue, TopKThreshold
from repro.index.builder import PathIndexes
from repro.scoring.function import PAPER_DEFAULT, ScoringFunction
from repro.search.context import EnumerationContext, ensure_context
from repro.search.expand import expand_root, expand_root_topk, pair_scorer
from repro.search.result import (
    ComboRef,
    EntryCombo,
    SearchResult,
    SearchStats,
    Stopwatch,
    pattern_from_key,
)


@dataclass
class IndividualResult:
    """Top-k individual valid subtrees (each with its pattern key)."""

    query: Tuple[str, ...]
    k: int
    ranked: List[Tuple[float, Tuple[int, ...], EntryCombo]]
    stats: SearchStats

    def combos(self) -> List[EntryCombo]:
        return [combo for _score, _key, combo in self.ranked]

    def scores(self) -> List[float]:
        return [score for score, _key, _combo in self.ranked]

    def format(self, indexes: PathIndexes, max_rows: int = 5) -> str:
        """Render each individual subtree as a one-row table (Figure 14)."""
        from repro.core.table import compose_table
        from repro.index.entry import subtree_from_entries

        lines = []
        for rank, (score, key, combo) in enumerate(
            self.ranked[:max_rows], start=1
        ):
            tree = subtree_from_entries(combo)
            pattern = pattern_from_key(indexes, key)
            table = compose_table(pattern, [tree], indexes.graph, score)
            lines.append(f"Top-{rank} (score {score:.4f})")
            lines.append(table.to_ascii(max_rows=1))
        return "\n".join(lines)


def individual_topk(
    indexes: PathIndexes,
    query,
    k: int = 100,
    scoring: ScoringFunction = PAPER_DEFAULT,
    prune: bool = True,
    context: Optional[EnumerationContext] = None,
) -> IndividualResult:
    """Rank individual valid subtrees by their tree score (Equation 3).

    Because every enumerated combination is ranked on its own (no
    pattern aggregation), this is the classic bounded top-k join: with
    ``prune=True`` (default) candidate roots are visited in descending
    single-subtree upper-bound order and the loop stops outright once the
    best remaining root cannot beat the k-th score; within a root,
    pattern combinations, path-product suffixes, and descending-sim
    posting runs are cut by the same bound (see
    :func:`repro.search.expand.expand_root_topk`).  Ties at the k-th
    score are broken by a canonical (pattern key, pairs) tie key, so
    pruned and unpruned runs return identical rankings.
    """
    watch = Stopwatch()
    stats = SearchStats(algorithm="individual")
    context = ensure_context(indexes, query, context)
    store = context.store
    candidates = context.candidate_roots
    stats.candidate_roots = len(candidates)

    queue: TopKQueue = TopKQueue(k)
    threshold = TopKThreshold(queue)
    bounds = context.query_bounds(scoring) if prune else None
    score = pair_scorer(store, scoring)

    def sink(key_combo, pairs) -> None:
        # Raw pairs into the queue; only the k survivors get wrapped in
        # ComboRef below, not every enumerated subtree.  The tie key
        # makes retention independent of enumeration order (pruning
        # reorders roots and posting runs).
        queue.push(score(pairs), (key_combo, pairs), tie_key=(key_combo, pairs))

    form_tree = store.pairs_checker()
    if bounds is None:
        for root in candidates:
            stats.roots_expanded += 1
            expand_root(
                store, context.pattern_maps(root), sink, stats, form_tree
            )
    else:
        ordered = []
        for root in candidates:
            term = bounds.root_term(root)
            if term is not None:
                ordered.append((term[1], root))
        ordered.sort(key=lambda item: (-item[0], item[1]))
        sorted_pairs_memo: dict = {}
        for index, (root_upper, root) in enumerate(ordered):
            if not threshold.admits(root_upper):
                # Descending bound order: no later root can reach the
                # k-th score either.
                stats.roots_skipped += len(ordered) - index
                break
            stats.roots_expanded += 1
            expand_root_topk(
                store,
                root,
                context.pattern_maps(root),
                bounds,
                threshold,
                sink,
                stats,
                form_tree,
                sorted_pairs_memo,
            )
        threshold.write_stats(stats)

    ranked = [
        (subtree_score, key, ComboRef(store, pairs))
        for subtree_score, (key, pairs) in queue.ranked()
    ]
    stats.elapsed_seconds = watch.elapsed()
    return IndividualResult(
        query=context.words, k=k, ranked=ranked, stats=stats
    )


@dataclass
class CoverageMetrics:
    """The two Figure 13 series for one query and one k."""

    k: int
    num_individual: int
    num_patterns: int
    covered_individual: int
    new_patterns: int

    @property
    def coverage(self) -> float:
        """Fraction of individual top-k found inside top-k patterns."""
        if self.num_individual == 0:
            return 0.0
        return self.covered_individual / self.num_individual

    @property
    def new_pattern_fraction(self) -> float:
        """Fraction of top-k patterns with no individual-top-k subtree."""
        if self.num_patterns == 0:
            return 0.0
        return self.new_patterns / self.num_patterns


def coverage_metrics(
    individual: IndividualResult, patterns: SearchResult
) -> CoverageMetrics:
    """Compare individual top-k subtrees against top-k tree patterns.

    ``patterns`` must have been produced with ``keep_subtrees=True`` —
    coverage is defined over the actual rows of the pattern answers.
    """
    individual_set: Set[EntryCombo] = set(individual.combos())
    pattern_rows: Set[EntryCombo] = set()
    new_patterns = 0
    for answer in patterns.answers:
        rows = set(answer.subtrees)
        pattern_rows |= rows
        if not rows & individual_set:
            new_patterns += 1
    covered = sum(1 for combo in individual_set if combo in pattern_rows)
    return CoverageMetrics(
        k=patterns.k,
        num_individual=len(individual.ranked),
        num_patterns=len(patterns.answers),
        covered_individual=covered,
        new_patterns=new_patterns,
    )
