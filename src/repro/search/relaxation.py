"""Query relaxation: recover answers for over-constrained queries.

Keyword queries against a knowledge base frequently come back empty — a
single off-vocabulary or over-specific word makes the candidate-root
intersection empty.  The paper returns nothing in that case; this extension
(in the spirit of its "query refinement" related work, [41]) retries with
keyword subsets, preferring relaxations that (1) drop fewer keywords and
(2) drop the *least selective* keyword first, so the surviving query keeps
the user's most specific terms.

The search stays cheap: candidate subsets are screened with root-set
intersections (index lookups only) before any engine runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Tuple

from repro.index.builder import PathIndexes, ResolvedQuery
from repro.scoring.function import PAPER_DEFAULT, ScoringFunction
from repro.search.pattern_enum import pattern_enum_search
from repro.search.result import SearchResult


@dataclass
class RelaxedResult:
    """A search result annotated with the relaxation that produced it."""

    result: SearchResult
    kept_keywords: Tuple[str, ...]
    dropped_keywords: Tuple[str, ...]

    @property
    def was_relaxed(self) -> bool:
        return bool(self.dropped_keywords)


def _has_candidate_roots(indexes: PathIndexes, words: Tuple[str, ...]) -> bool:
    roots = None
    for word in words:
        word_roots = indexes.root_first.roots(word)
        if not word_roots:
            return False
        keys = set(word_roots)
        roots = keys if roots is None else roots & keys
        if not roots:
            return False
    return bool(roots)


def relaxed_search(
    indexes: PathIndexes,
    query,
    k: int = 10,
    scoring: ScoringFunction = PAPER_DEFAULT,
    max_dropped: Optional[int] = None,
    **params,
) -> RelaxedResult:
    """Search; on empty results retry with keyword subsets.

    Subsets are tried in order of (fewest drops, lowest dropped
    selectivity); within one relaxation level the first subset with a
    non-empty candidate-root set wins.  ``max_dropped`` caps how many
    keywords may be removed (default: all but one).

    Raises :class:`QueryError` only if the original query normalizes to
    nothing; an unanswerable query (even fully relaxed) returns the empty
    result for the original keywords, flagged unrelaxed.
    """
    words = indexes.resolve_query(query)
    # A shared per-query context is only valid for the *original* words;
    # subset retries below must resolve their own, or they would silently
    # search the full query again.
    context = params.pop("context", None)
    result = pattern_enum_search(
        indexes, ResolvedQuery(words), k=k, scoring=scoring,
        context=context, **params,
    )
    if result.num_answers or len(words) == 1:
        return RelaxedResult(result, words, ())

    if max_dropped is None:
        max_dropped = len(words) - 1
    max_dropped = min(max_dropped, len(words) - 1)

    # Selectivity: postings per keyword; common words are dropped first.
    frequency = {
        word: indexes.root_first.num_entries(word) for word in words
    }
    for num_dropped in range(1, max_dropped + 1):
        candidates: List[Tuple[float, Tuple[str, ...]]] = []
        for kept in combinations(words, len(words) - num_dropped):
            dropped = tuple(w for w in words if w not in kept)
            dropped_frequency = sum(frequency[w] for w in dropped)
            candidates.append((-dropped_frequency, kept))
        candidates.sort()
        for _priority, kept in candidates:
            if not _has_candidate_roots(indexes, kept):
                continue
            relaxed = pattern_enum_search(
                indexes, ResolvedQuery(kept), k=k, scoring=scoring, **params
            )
            if relaxed.num_answers:
                dropped = tuple(w for w in words if w not in kept)
                return RelaxedResult(relaxed, kept, dropped)
    return RelaxedResult(result, words, ())
