"""High-level facade: build once, query many times.

:class:`TableAnswerEngine` wires together the whole pipeline — graph,
lexicon, PageRank, both path indexes, and the four search algorithms — and
is the entry point the examples and benchmarks use.

>>> from repro.datasets.example import example_graph
>>> engine = TableAnswerEngine(example_graph(), d=3)
>>> result = engine.search("database software company revenue", k=5)
>>> print(result.answers[0].to_table(engine.graph).to_ascii())
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import SearchError
from repro.core.table import TableAnswer
from repro.index.builder import PathIndexes, build_indexes
from repro.kg.graph import KnowledgeGraph
from repro.kg.knowledge_base import KnowledgeBase
from repro.kg.synonyms import SynonymTable
from repro.kg.text import TextNormalizer
from repro.scoring.function import PAPER_DEFAULT, ScoringFunction
from repro.search.context import EnumerationContext
from repro.search.individual import (
    CoverageMetrics,
    IndividualResult,
    coverage_metrics,
    individual_topk,
)
from repro.search.linear_enum import count_answers
from repro.search.plan import (
    ALGORITHM_ALIASES,
    QueryPlan,
    execute_plan,
    plan_search,
    reject_plan_overrides,
)
from repro.search.result import SearchResult

#: Algorithm names accepted by :meth:`TableAnswerEngine.search`, with the
#: paper's experiment labels as aliases (see
#: :data:`repro.search.plan.ALGORITHM_ALIASES`, the canonical registry).
ALGORITHMS = tuple(ALGORITHM_ALIASES)


class TableAnswerEngine:
    """Keyword search over a knowledge graph returning table answers."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        d: int = 3,
        scoring: ScoringFunction = PAPER_DEFAULT,
        normalizer: Optional[TextNormalizer] = None,
        synonyms: Optional[SynonymTable] = None,
        pagerank_scores: Optional[Sequence[float]] = None,
        indexes: Optional[PathIndexes] = None,
    ) -> None:
        """Build (or adopt) the path indexes for ``graph``.

        Pass a prebuilt/deserialized ``indexes`` to skip construction; its
        graph and height threshold then override ``graph`` and ``d``.
        """
        if indexes is not None:
            if indexes.graph is not graph:
                raise SearchError(
                    "prebuilt indexes were constructed for a different graph"
                )
            self.indexes = indexes
        else:
            self.indexes = build_indexes(
                graph,
                d=d,
                normalizer=normalizer,
                synonyms=synonyms,
                pagerank_scores=pagerank_scores,
            )
        self.scoring = scoring

    @classmethod
    def from_knowledge_base(
        cls, kb: KnowledgeBase, **kwargs
    ) -> "TableAnswerEngine":
        """Convenience constructor straight from a :class:`KnowledgeBase`."""
        from repro.kg.builder import build_graph

        graph, _node_of_entity = build_graph(kb)
        return cls(graph, **kwargs)

    @property
    def graph(self) -> KnowledgeGraph:
        return self.indexes.graph

    @property
    def d(self) -> int:
        return self.indexes.d

    # ------------------------------------------------------------ searching

    def plan(
        self,
        query,
        k: Optional[int] = None,
        algorithm: Optional[str] = None,
        scoring: Optional[ScoringFunction] = None,
        **params,
    ) -> QueryPlan:
        """Plan a search without running it (the plan/execute split).

        The returned :class:`~repro.search.plan.QueryPlan` is hashable
        (the cache key :class:`~repro.search.service.SearchService` uses),
        explainable (:meth:`~repro.search.plan.QueryPlan.describe`), and
        executable via :meth:`search` with ``plan=``.  ``None`` falls
        back to :func:`~repro.search.plan.plan_search`'s defaults (the
        engine's own scoring for ``scoring``).
        """
        scoring = scoring if scoring is not None else self.scoring
        return plan_search(
            self.indexes, query, k=k, algorithm=algorithm,
            scoring=scoring, **params,
        )

    def search(
        self,
        query=None,
        k: Optional[int] = None,
        algorithm: Optional[str] = None,
        scoring: Optional[ScoringFunction] = None,
        context: Optional[EnumerationContext] = None,
        plan: Optional[QueryPlan] = None,
        **params,
    ) -> SearchResult:
        """Top-k tree patterns for a keyword query.

        Runs as *plan -> execute*: the request is first canonicalized
        into a :class:`~repro.search.plan.QueryPlan` (keyword resolution
        through the index's term-resolution cache, algorithm alias and
        parameter canonicalization, plan-time validation), then
        dispatched.  Pass a prebuilt ``plan`` to skip the planning step;
        the plan then fixes every parameter, and passing ``k``/
        ``algorithm``/``scoring`` or extra params alongside it is an
        error rather than a silent no-op.

        ``algorithm`` is one of :data:`ALGORITHMS`:

        * ``pattern_enum`` / ``petopk`` — Algorithm 2 (default; fastest in
          practice on typical queries);
        * ``linear`` — exact LINEARENUM-TOPK without sampling (Λ=inf, ρ=1);
        * ``letopk`` / ``linear_topk`` — Algorithm 4; pass
          ``sampling_threshold`` and ``sampling_rate``;
        * ``linear_full`` — raw LINEARENUM (Algorithm 3) ranked after a
          full enumeration (the Section 4.2.1 "naive method");
        * ``baseline`` — Section 2.3's enumeration-aggregation.

        Extra keyword ``params`` are forwarded to the algorithm (e.g.
        ``keep_subtrees=False``, ``seed=...``, ``prune=False`` to disable
        the bound-driven top-k pruning of ``pattern_enum``/``linear``/
        ``letopk`` — see ``docs/pruning.md``).  Multi-algorithm callers
        can pass ``context=`` (see :meth:`context`) to share the
        per-query setup across calls; otherwise the algorithm builds its
        own.
        """
        if plan is None:
            if query is None:
                raise SearchError("search needs a query (or a plan)")
            plan = self.plan(
                query, k=k, algorithm=algorithm, scoring=scoring, **params
            )
        else:
            reject_plan_overrides(k, algorithm, scoring, params)
        return execute_plan(self.indexes, plan, context=context)

    def tables(
        self,
        query,
        k: int = 10,
        algorithm: str = "pattern_enum",
        max_rows: Optional[int] = None,
        **params,
    ) -> List[TableAnswer]:
        """Top-k answers rendered as tables, best first."""
        result = self.search(query, k=k, algorithm=algorithm, **params)
        return result.tables(self.graph, max_rows=max_rows)

    def individual(
        self, query, k: int = 100, prune: bool = True
    ) -> IndividualResult:
        """Top-k *individual* valid subtrees (the Section 5.3 comparison)."""
        return individual_topk(
            self.indexes, query, k=k, scoring=self.scoring, prune=prune
        )

    def context(self, query) -> EnumerationContext:
        """A fresh shared per-query context (resolution, root maps, ...).

        Pass it as ``context=...`` to several :meth:`search` calls for the
        same query to pay the per-query setup once.
        """
        return EnumerationContext(self.indexes, query)

    def search_relaxed(self, query, k: int = 10, **params):
        """Search, dropping keywords if the full query has no answers.

        Returns a :class:`repro.search.relaxation.RelaxedResult` whose
        ``dropped_keywords`` records any relaxation applied.
        """
        from repro.search.relaxation import relaxed_search

        return relaxed_search(
            self.indexes, query, k=k, scoring=self.scoring, **params
        )

    def search_mixed(
        self,
        query,
        k: int = 10,
        pattern_weight: float = 1.0,
        prune: bool = True,
    ):
        """Universal ranking mixing tables and individual subtrees.

        Implements the Section 5.3 open problem; see
        :mod:`repro.search.mixed` for the merge semantics.
        """
        from repro.search.mixed import mixed_search

        return mixed_search(
            self.indexes,
            query,
            k=k,
            scoring=self.scoring,
            pattern_weight=pattern_weight,
            prune=prune,
        )

    def coverage(self, query, k: int = 100) -> CoverageMetrics:
        """Figure 13 metrics for one query at one k.

        Both underlying searches share one per-query context.
        """
        context = self.context(query)
        individual = individual_topk(
            self.indexes, query, k=k, scoring=self.scoring, context=context
        )
        patterns = self.search(
            query, k=k, algorithm="pattern_enum", context=context
        )
        return coverage_metrics(individual, patterns)

    def count_answers(self, query) -> Tuple[int, int]:
        """(#tree patterns, #valid subtrees) for a query — full enumeration."""
        return count_answers(self.indexes, query)

    def explain(self, query) -> Dict[str, object]:
        """Diagnostic summary: resolved keywords and per-word index reach.

        Per-word posting counts and the index-level dedup figures are read
        from the columnar store without materializing any path entry.
        """
        words = self.indexes.resolve_query(query)
        report: Dict[str, object] = {"keywords": words}
        per_word = {}
        for word in words:
            per_word[word] = {
                "postings": self.indexes.root_first.num_entries(word),
                "roots": len(self.indexes.root_first.roots(word)),
                "patterns": len(self.indexes.pattern_first.patterns(word)),
            }
        report["per_word"] = per_word
        store = self.indexes.store
        report["index"] = {
            "postings": store.num_postings(),
            "unique_paths": store.num_paths,
            "dedup_ratio": store.dedup_ratio(),
            "store_bytes": store.nbytes(),
        }
        return report
