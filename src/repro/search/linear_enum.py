"""LINEARENUM — Algorithm 3 of the paper.

Enumerates *all* tree patterns and valid subtrees in time linear in the
index size plus the output size (Theorem 3): candidate roots are the
intersection of ``Roots(w_i)`` from the root-first index; each candidate
root is expanded (EXPANDROOT) into the product of its per-keyword pattern
sets — every such pattern is guaranteed non-empty — and the subtrees are
aggregated in the ``TreeDict`` dictionary keyed by tree pattern.

The enumeration is id-based: the expansion loop works on integer path ids
straight from the columnar store (no :class:`~repro.index.entry.PathEntry`
is built), and kept subtrees are lazy
:class:`~repro.search.result.ComboRef` references.

This module exposes both the raw enumeration (used to count a query's
patterns/subtrees for the experiment groupings of Figures 7-9, and as the
ground truth in tests) and a top-k search wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.topk import TopKQueue
from repro.core.types import PatternId
from repro.index.builder import PathIndexes
from repro.scoring.aggregate import RunningAggregate
from repro.scoring.function import PAPER_DEFAULT, ScoringFunction
from repro.search.context import EnumerationContext, ensure_context
from repro.search.expand import expand_root, pair_scorer
from repro.search.result import (
    ComboRef,
    EntryCombo,
    PatternAnswer,
    SearchResult,
    SearchStats,
    Stopwatch,
    order_answers,
    pattern_from_key,
)

PatternKey = Tuple[PatternId, ...]


@dataclass
class Enumeration:
    """The complete output of LINEARENUM for one query."""

    query: Tuple[str, ...]
    d: int
    trees_by_pattern: Dict[PatternKey, List[EntryCombo]]
    aggregates: Dict[PatternKey, RunningAggregate]
    stats: SearchStats
    keep_subtrees: bool = True
    candidate_roots: List[int] = field(default_factory=list)

    @property
    def num_patterns(self) -> int:
        return len(self.aggregates)

    @property
    def num_subtrees(self) -> int:
        return sum(agg.count for agg in self.aggregates.values())

    def score(self, key: PatternKey) -> float:
        return self.aggregates[key].value()


def linear_enum(
    indexes: PathIndexes,
    query,
    scoring: ScoringFunction = PAPER_DEFAULT,
    keep_subtrees: bool = True,
    context: Optional[EnumerationContext] = None,
) -> Enumeration:
    """Enumerate every tree pattern and valid subtree for ``query``."""
    watch = Stopwatch()
    stats = SearchStats(algorithm="linear_enum")
    context = ensure_context(indexes, query, context)
    store = context.store
    candidates = context.candidate_roots
    stats.candidate_roots = len(candidates)

    trees_by_pattern: Dict[PatternKey, List[EntryCombo]] = {}
    aggregates: Dict[PatternKey, RunningAggregate] = {}
    score = pair_scorer(store, scoring)

    def sink(key_combo, pairs) -> None:
        aggregate = aggregates.get(key_combo)
        if aggregate is None:
            aggregate = aggregates[key_combo] = scoring.running()
            trees_by_pattern[key_combo] = []
        aggregate.add(score(pairs))
        if keep_subtrees:
            trees_by_pattern[key_combo].append(ComboRef(store, pairs))

    form_tree = store.pairs_checker()
    for root in candidates:
        stats.roots_expanded += 1
        expand_root(store, context.pattern_maps(root), sink, stats, form_tree)

    stats.nonempty_patterns = len(aggregates)
    stats.elapsed_seconds = watch.elapsed()
    return Enumeration(
        query=context.words,
        d=indexes.d,
        trees_by_pattern=trees_by_pattern,
        aggregates=aggregates,
        stats=stats,
        keep_subtrees=keep_subtrees,
        candidate_roots=list(candidates),
    )


def linear_enum_search(
    indexes: PathIndexes,
    query,
    k: int = 100,
    scoring: ScoringFunction = PAPER_DEFAULT,
    keep_subtrees: bool = True,
    context: Optional[EnumerationContext] = None,
) -> SearchResult:
    """Rank LINEARENUM's full output and return the top-k patterns.

    This is the "naive method" of Section 4.2.1 (score everything after a
    full enumeration); LINEARENUM-TOPK improves on it by partitioning by
    root type and sampling — see :mod:`repro.search.linear_topk`.
    """
    enumeration = linear_enum(
        indexes, query, scoring, keep_subtrees, context=context
    )
    queue: TopKQueue = TopKQueue(k)
    for key in sorted(enumeration.aggregates):
        aggregate = enumeration.aggregates[key]
        canonical = tuple(
            (indexes.interner.pattern(pid).labels,
             indexes.interner.pattern(pid).ends_at_edge)
            for pid in key
        )
        queue.push(
            aggregate.value(),
            (key, aggregate.count, enumeration.trees_by_pattern.get(key, [])),
            tie_key=canonical,
        )
    answers = []
    for score, (key, count, trees) in queue.ranked():
        answers.append(
            PatternAnswer(
                pattern_key=key,
                pattern=pattern_from_key(indexes, key),
                score=score,
                num_subtrees=count,
                subtrees=trees,
            )
        )
    order_answers(answers)
    stats = enumeration.stats
    return SearchResult(
        query=enumeration.query,
        k=k,
        d=indexes.d,
        answers=answers,
        stats=stats,
    )


def count_answers(indexes: PathIndexes, query) -> Tuple[int, int]:
    """(number of tree patterns, number of valid subtrees) for a query.

    The experiment harness groups queries by these totals (Figures 7-9).
    Subtrees are not retained (and with the id-based loop no path entry is
    ever built), so this is memory-light even for large queries.
    """
    enumeration = linear_enum(indexes, query, keep_subtrees=False)
    return enumeration.num_patterns, enumeration.num_subtrees
