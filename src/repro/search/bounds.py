"""Admissible score upper bounds for bound-driven top-k pruning.

The paper's top-k algorithms win by discarding candidate work before
enumerating it; this module supplies the arithmetic.  From the columnar
store's aggregate bound columns (:meth:`repro.index.store.PostingStore.\
bound_columns`) and one :class:`~repro.scoring.function.ScoringFunction`,
:class:`QueryBounds` computes *upper bounds* on

* the score of any single valid subtree drawn from given posting groups
  (:meth:`combo_upper`, :meth:`root_term`), and
* the aggregated score of any tree pattern completing a pattern prefix
  over a given root set (:meth:`prefix_upper`,
  :meth:`full_pattern_upper`),

that are **admissible**: never below the exact value the enumeration
loops would compute.  A skipped candidate therefore provably cannot
enter a full top-k queue whose k-th score exceeds the bound, so pruned
and unpruned searches return bit-identical answers (differential-tested
in ``tests/search/test_pruning.py``; derivation and the floating-point
argument live in ``docs/pruning.md``).

Admissibility sketch.  A subtree combines one path per keyword; its
score is ``size^z1 * pr^z2 * sim^z3`` over the *summed* per-path
components (Equation 3).  Each component sum is bracketed by summing the
per-group minima/maxima, and the power product is monotone in each
positive component, so evaluating it on the per-sign extreme (min for a
negative exponent, max for a positive one) bounds every concrete
combination — in float arithmetic too, because IEEE addition and
multiplication are monotone and the bound follows the hot loop's
operation order.  Pattern aggregation (sum/avg/max/count of subtree
scores) is then bounded from the per-root combination counts and
per-combination bounds.  A relative safety factor absorbs the remaining
ulp-level slack of ``math.pow`` and of long float summations.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.types import NodeId, PatternId
from repro.scoring.aggregate import COUNT, SUM
from repro.scoring.function import ScoringFunction

#: One aggregate posting-group bound, as stored in the bound columns:
#: (count, size_lo, size_hi, pr_lo, pr_hi, sim_lo, sim_hi).
Bound = Tuple[int, int, int, float, float, float, float]

#: Relative slack absorbing float rounding: the exact enumeration sums
#: and multiplies in the same order but not on the same values, and a
#: pattern-sum of n subtree scores carries O(n·eps) relative error.  The
#: margin only *loosens* bounds (skips less), never correctness.
SAFETY = 1.0 + 1e-9


class QueryBounds:
    """Per-query admissible upper bounds for one (store, scoring) pair.

    Built by :meth:`repro.search.context.EnumerationContext.query_bounds`
    and shared by every pruning site of a query.  ``None`` is returned
    instead when the scoring function is outside the bounded class (extra
    weighted components — nothing the id-based hot loops support today,
    but the guard keeps future extensions honest).
    """

    __slots__ = (
        "scoring",
        "aggregator",
        "root_bounds",
        "pattern_bounds",
        "_size_pick",
        "_pr_pick",
        "_sim_pick",
        "_score_terms",
        "_root_mass",
        "_pid_upper",
    )

    def __init__(
        self, store, scoring: ScoringFunction, words: Sequence[str]
    ) -> None:
        root_bounds, pattern_bounds = store.bound_columns()
        #: Per query keyword: root -> Bound over all patterns at the root.
        self.root_bounds: List[Dict[NodeId, Bound]] = [
            root_bounds.get(word, {}) for word in words
        ]
        #: Per query keyword: pid -> root -> Bound for one index leaf.
        self.pattern_bounds: List[Dict[PatternId, Dict[NodeId, Bound]]] = [
            pattern_bounds.get(word, {}) for word in words
        ]
        self.scoring = scoring
        self.aggregator = scoring.aggregator
        # Upper-bounding a positive power product: take each component's
        # max when its exponent is positive, its min when negative (a
        # zero exponent drops the component; either pick is unused).
        self._size_pick = 1 if scoring.z1 < 0 else 2
        self._pr_pick = 3 if scoring.z2 < 0 else 4
        self._sim_pick = 5 if scoring.z3 < 0 else 6
        self._score_terms = scoring.subtree_score_terms
        self._root_mass: Dict[NodeId, float] = {}
        self._pid_upper: List[Dict[PatternId, float]] = [{} for _ in words]

    @classmethod
    def create(
        cls, store, scoring: ScoringFunction, words: Sequence[str]
    ) -> Optional["QueryBounds"]:
        """A bounds object, or ``None`` when ``scoring`` is unbounded."""
        if scoring.extra_weights:
            return None
        return cls(store, scoring, words)

    # ------------------------------------------------------- subtree bounds

    def score_upper(self, size: int, pr: float, sim: float) -> float:
        """Safetied Equation-3 product over already-picked component sums."""
        return self._score_terms(size, pr, sim) * SAFETY

    def picked(self, bound: Bound) -> Tuple[int, float, float]:
        """The (size, pr, sim) extremes of one group, per exponent sign."""
        return (
            bound[self._size_pick],
            bound[self._pr_pick],
            bound[self._sim_pick],
        )

    def combo_upper(self, bounds: Sequence[Bound]) -> float:
        """Upper bound on any single subtree drawing one path per group."""
        size = 0
        pr = 0.0
        sim = 0.0
        size_pick = self._size_pick
        pr_pick = self._pr_pick
        sim_pick = self._sim_pick
        for bound in bounds:
            size += bound[size_pick]
            pr += bound[pr_pick]
            sim += bound[sim_pick]
        return self._score_terms(size, pr, sim) * SAFETY

    def leaf_bounds(
        self, pid_combo: Sequence[PatternId], root: NodeId
    ) -> List[Bound]:
        """The per-keyword leaf bounds of one (pattern combo, root)."""
        return [
            self.pattern_bounds[i][pid][root]
            for i, pid in enumerate(pid_combo)
        ]

    def root_term(self, root: NodeId) -> Optional[Tuple[int, float]]:
        """``(combination count, single-subtree upper bound)`` at one root.

        ``None`` when some keyword has no path at the root (the root can
        join no subtree).  The count multiplies the per-keyword posting
        counts — an upper bound on valid subtrees, exactly the paper's
        ``N_R`` contribution (tree-check rejections included).
        """
        count = 1
        size = 0
        pr = 0.0
        sim = 0.0
        size_pick = self._size_pick
        pr_pick = self._pr_pick
        sim_pick = self._sim_pick
        for word_map in self.root_bounds:
            bound = word_map.get(root)
            if bound is None:
                return None
            count *= bound[0]
            size += bound[size_pick]
            pr += bound[pr_pick]
            sim += bound[sim_pick]
        return count, self._score_terms(size, pr, sim) * SAFETY

    # ------------------------------------------------------- pattern bounds

    def root_mass(self, root: NodeId) -> float:
        """One root's pattern-score mass: an upper bound — under *any* of
        the four aggregators — on the score contribution of the root's
        subtrees to any single pattern.

        Summing masses over a root set therefore bounds every pattern
        confined to it: the cheap, pow-free-after-first-touch prefix
        bound the hot loops accumulate *during* their root-intersection
        passes (one cached-dict lookup and one add per root).  Looser
        than :meth:`prefix_upper` — per-keyword counts and extremes are
        taken over all patterns at the root — but orders of magnitude
        cheaper; callers re-check survivors with the tight bound where a
        join is about to run.  Cached per root for the query's lifetime.
        """
        mass = self._root_mass.get(root)
        if mass is None:
            term = self.root_term(root)
            if term is None:
                mass = 0.0
            else:
                count, upper = term
                aggregator = self.aggregator
                if aggregator == SUM:
                    mass = count * upper
                elif aggregator == COUNT:
                    mass = float(count)
                else:  # AVG and MAX: no single subtree beats `upper`
                    mass = upper
            self._root_mass[root] = mass
        return mass

    def prefix_upper(
        self,
        pids: Sequence[PatternId],
        num_fixed: int,
        roots: Sequence[NodeId],
    ) -> float:
        """Upper bound on score(P, q) over all tree patterns ``P`` that fix
        ``pids[:num_fixed]`` for the first keywords, choose any path
        pattern for the rest, and whose root set is contained in
        ``roots``.

        ``num_fixed == 0`` bounds every pattern over ``roots`` (the
        per-root-type bound); ``num_fixed == len(words)`` is the full
        single-pattern bound restricted to ``roots``.  Admissible for all
        four aggregators; 0.0 when no completion has a root.
        """
        sources: List[Dict[NodeId, Bound]] = []
        for i in range(len(self.root_bounds)):
            if i < num_fixed:
                source = self.pattern_bounds[i].get(pids[i])
                if source is None:
                    return 0.0
            else:
                source = self.root_bounds[i]
            sources.append(source)
        size_pick = self._size_pick
        pr_pick = self._pr_pick
        sim_pick = self._sim_pick
        score_terms = self._score_terms
        total_count = 0
        total_mass = 0.0
        best = 0.0
        for root in roots:
            count = 1
            size = 0
            pr = 0.0
            sim = 0.0
            for source in sources:
                bound = source.get(root)
                if bound is None:
                    count = 0
                    break
                count *= bound[0]
                size += bound[size_pick]
                pr += bound[pr_pick]
                sim += bound[sim_pick]
            if not count:
                continue
            upper = score_terms(size, pr, sim)
            total_count += count
            total_mass += count * upper
            if upper > best:
                best = upper
        return self._finish(total_count, total_mass, best)

    def pattern_upper_at_roots(
        self,
        pids: Sequence[PatternId],
        num_fixed: int,
        roots: Sequence[NodeId],
    ) -> float:
        """Single-``pow`` variant of :meth:`prefix_upper`.

        Instead of scoring each root's extreme sums separately, the
        per-root sums are themselves reduced to component extremes across
        the root set and scored once — admissible because the power
        product is monotone per component, slightly looser when a
        pattern's mass concentrates on one root, and an order of
        magnitude cheaper.  This is the bound the hot loops pay per
        *surviving* pattern, where ``math.pow`` per root would rival the
        join being skipped.
        """
        sources: List[Dict[NodeId, Bound]] = []
        for i in range(len(self.root_bounds)):
            if i < num_fixed:
                source = self.pattern_bounds[i].get(pids[i])
                if source is None:
                    return 0.0
            else:
                source = self.root_bounds[i]
            sources.append(source)
        return self._extremes_upper(sources, roots)

    def _extremes_upper(
        self,
        sources: Sequence[Dict[NodeId, Bound]],
        roots,
    ) -> float:
        """The shared single-``pow`` accumulation: per-root component
        sums reduced to sign-aware extremes across ``roots``, scored
        once, finished per aggregator.  The one source of truth for
        every extreme-reduction bound (:meth:`pattern_upper_at_roots`,
        :meth:`pid_upper`, :meth:`full_pattern_upper`)."""
        size_pick = self._size_pick
        pr_pick = self._pr_pick
        sim_pick = self._sim_pick
        size_min = size_pick == 1
        pr_min = pr_pick == 3
        sim_min = sim_pick == 5
        total_count = 0
        ext_size = 0
        ext_pr = 0.0
        ext_sim = 0.0
        for root in roots:
            count = 1
            size = 0
            pr = 0.0
            sim = 0.0
            for source in sources:
                bound = source.get(root)
                if bound is None:
                    count = 0
                    break
                count *= bound[0]
                size += bound[size_pick]
                pr += bound[pr_pick]
                sim += bound[sim_pick]
            if not count:
                continue
            if not total_count:
                ext_size, ext_pr, ext_sim = size, pr, sim
            else:
                if (size < ext_size) == size_min:
                    ext_size = size
                if (pr < ext_pr) == pr_min:
                    ext_pr = pr
                if (sim < ext_sim) == sim_min:
                    ext_sim = sim
            total_count += count
        if not total_count:
            return 0.0
        upper = self._score_terms(ext_size, ext_pr, ext_sim) * SAFETY
        aggregator = self.aggregator
        if aggregator == SUM:
            return total_count * upper * SAFETY
        if aggregator == COUNT:
            return float(total_count)
        return upper  # AVG and MAX

    def pid_upper(self, word_index: int, pid: PatternId) -> float:
        """Upper bound on *any* pattern that uses path pattern ``pid``
        for keyword ``word_index`` — memoized per (word, pid).

        The strongest cheap lever the hot loops have: a dead pid removes
        a whole slice of every pattern product it would have appeared in,
        at one cached-dict lookup per (root, keyword, pid).  Computed
        with the single-``pow`` reduction over the pid's root map (other
        keywords at root level); maps larger than a small cap get ``inf``
        — high-support pids are effectively never prunable and iterating
        their full root set would cost more than it could save.
        """
        cache = self._pid_upper[word_index]
        upper = cache.get(pid)
        if upper is None:
            source = self.pattern_bounds[word_index].get(pid)
            if not source:
                upper = 0.0
            elif len(source) > 64:
                upper = math.inf
            else:
                sources = [
                    source if j == word_index else self.root_bounds[j]
                    for j in range(len(self.root_bounds))
                ]
                upper = self._extremes_upper(sources, source)
            cache[pid] = upper
        return upper

    def pid_upper_cache(self, word_index: int) -> Dict[PatternId, float]:
        """The pid → :meth:`pid_upper` memo for one keyword.

        Hot loops probe this dict directly (one lookup per occurrence)
        and fall back to :meth:`pid_upper` only on a miss, avoiding a
        function call per already-bounded pid.
        """
        return self._pid_upper[word_index]

    def full_pattern_upper(
        self,
        pid_combo: Sequence[PatternId],
        max_roots: Optional[int] = None,
    ) -> float:
        """Upper bound on one fully-specified pattern's score over *all*
        its roots (the pattern-first root-set intersection).

        Small patterns (root set up to ``max_roots``) use the
        single-``pow`` reduction of :meth:`pattern_upper_at_roots`;
        larger ones get the tight per-root :meth:`prefix_upper` instead —
        for a high-support pattern the extreme-component reduction is far
        too loose (count times the best root's combination everywhere),
        while the per-root ``pow`` amortizes over the many joins a kill
        would skip.  With ``max_roots=None`` the single-``pow`` form is
        always used.
        """
        maps: List[Dict[NodeId, Bound]] = []
        for i, pid in enumerate(pid_combo):
            source = self.pattern_bounds[i].get(pid)
            if not source:
                return 0.0
            maps.append(source)
        smallest = min(maps, key=len)
        if max_roots is not None and len(smallest) > max_roots:
            return self.prefix_upper(pid_combo, len(pid_combo), smallest)
        return self.pattern_upper_at_roots(
            pid_combo, len(pid_combo), smallest
        )

    def _finish(
        self, total_count: int, total_mass: float, best: float
    ) -> float:
        """Aggregate per-root ``(count, combo upper)`` terms per Eq. 2."""
        aggregator = self.aggregator
        if aggregator == SUM:
            return total_mass * SAFETY
        if aggregator == COUNT:
            return float(total_count)
        return best * SAFETY  # AVG and MAX
