"""Universal ranking of tree patterns and individual subtrees (extension).

Section 5.3 leaves open "how to mix individual valid subtrees with tree
patterns to provide a universal ranking".  This module implements a simple,
well-specified solution so downstream users can serve one result list:

1. Compute the top-k tree patterns and the top-k individual subtrees.
2. Normalize both score scales to their respective maxima (pattern scores
   are aggregates over many subtrees; raw comparison would drown singular
   answers exactly as Figure 14/15 illustrates).
3. Merge by normalized score with a redundancy rule: an individual subtree
   already present as a row of an already-ranked pattern is skipped — the
   table subsumes it — while "singular" subtrees (the paper's term for
   subtrees whose pattern has no other support) surface as 1-row answers.

The ``pattern_weight`` dial biases the interleave: 1.0 ranks patterns at
full strength (tables first, paper's table-intent scenario), 0.0 reduces to
individual ranking with de-duplication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.core.errors import SearchError
from repro.index.builder import PathIndexes
from repro.scoring.function import PAPER_DEFAULT, ScoringFunction
from repro.search.context import EnumerationContext, ensure_context
from repro.search.individual import individual_topk
from repro.search.pattern_enum import pattern_enum_search
from repro.search.result import EntryCombo, PatternAnswer, pattern_from_key


@dataclass
class MixedAnswer:
    """One entry of the universal ranking."""

    kind: str  # "pattern" | "subtree"
    normalized_score: float
    raw_score: float
    pattern_answer: Optional[PatternAnswer] = None
    subtree_combo: Optional[EntryCombo] = None

    @property
    def num_rows(self) -> int:
        if self.kind == "pattern":
            return self.pattern_answer.num_subtrees
        return 1


@dataclass
class MixedResult:
    """The merged ranking plus provenance counts."""

    query: Tuple[str, ...]
    k: int
    answers: List[MixedAnswer]
    num_patterns_ranked: int
    num_subtrees_ranked: int
    num_subtrees_subsumed: int

    def kinds(self) -> List[str]:
        return [answer.kind for answer in self.answers]


def mixed_search(
    indexes: PathIndexes,
    query,
    k: int = 10,
    scoring: ScoringFunction = PAPER_DEFAULT,
    pattern_weight: float = 1.0,
    prune: bool = True,
    context: Optional[EnumerationContext] = None,
) -> MixedResult:
    """Produce a universal ranking of tables and individual subtrees.

    ``pattern_weight`` in [0, 1] scales the patterns' normalized scores.
    One :class:`EnumerationContext` is shared by the two underlying
    searches, so query resolution, the candidate-root intersection, and
    (with ``prune=True``) the score-bound columns are computed once;
    ``prune`` is forwarded to both searches, whose answers are
    bit-identical either way.
    """
    if not 0.0 <= pattern_weight <= 1.0:
        raise SearchError(
            f"pattern_weight must be in [0, 1], got {pattern_weight}"
        )
    context = ensure_context(indexes, query, context)
    patterns = pattern_enum_search(
        indexes, query, k=k, scoring=scoring, keep_subtrees=True,
        prune=prune, context=context,
    )
    individual = individual_topk(
        indexes, query, k=k, scoring=scoring, prune=prune, context=context
    )

    best_pattern = max((a.score for a in patterns.answers), default=0.0)
    best_subtree = max((s for s, _key, _c in individual.ranked), default=0.0)

    candidates: List[MixedAnswer] = []
    for answer in patterns.answers:
        normalized = (
            answer.score / best_pattern if best_pattern > 0 else 0.0
        ) * pattern_weight
        candidates.append(
            MixedAnswer(
                kind="pattern",
                normalized_score=normalized,
                raw_score=answer.score,
                pattern_answer=answer,
            )
        )
    for score, key, combo in individual.ranked:
        normalized = score / best_subtree if best_subtree > 0 else 0.0
        candidates.append(
            MixedAnswer(
                kind="subtree",
                normalized_score=normalized,
                raw_score=score,
                subtree_combo=combo,
                pattern_answer=PatternAnswer(
                    pattern_key=key,
                    pattern=pattern_from_key(indexes, key),
                    score=score,
                    num_subtrees=1,
                    subtrees=[combo],
                ),
            )
        )
    # Stable order: normalized score desc, patterns before subtrees on
    # ties (a table is the richer answer), then raw score.
    candidates.sort(
        key=lambda a: (
            -a.normalized_score,
            0 if a.kind == "pattern" else 1,
            -a.raw_score,
        )
    )

    ranked: List[MixedAnswer] = []
    covered_rows: Set[EntryCombo] = set()
    subsumed = 0
    for candidate in candidates:
        if len(ranked) >= k:
            break
        if candidate.kind == "pattern":
            rows = candidate.pattern_answer.subtrees
            # A pattern adding no new rows (e.g. a 1-row pattern whose
            # subtree already ranked individually) is redundant.
            if rows and all(row in covered_rows for row in rows):
                subsumed += 1
                continue
            ranked.append(candidate)
            covered_rows.update(rows)
        else:
            if candidate.subtree_combo in covered_rows:
                subsumed += 1
                continue
            ranked.append(candidate)
            covered_rows.add(candidate.subtree_combo)
    return MixedResult(
        query=patterns.query,
        k=k,
        answers=ranked,
        num_patterns_ranked=sum(1 for a in ranked if a.kind == "pattern"),
        num_subtrees_ranked=sum(1 for a in ranked if a.kind == "subtree"),
        num_subtrees_subsumed=subsumed,
    )
