"""The Figures 14-15 case study dataset and its qualitative outcome."""

import pytest

from repro.datasets.case_study import (
    CASE_STUDY_D,
    XBOX_GAMES,
    xbox_case_study_graph,
)
from repro.index.builder import build_indexes
from repro.search.individual import individual_topk
from repro.search.pattern_enum import pattern_enum_search


@pytest.fixture(scope="module")
def case():
    graph, query = xbox_case_study_graph()
    return graph, query, build_indexes(graph, d=CASE_STUDY_D)


class TestIndividualRanking:
    def test_top1_is_popular_xbox_entity(self, case):
        """Figure 14 top-1: the Xbox entity wins on PageRank."""
        graph, query, indexes = case
        result = individual_topk(indexes, query, k=3)
        top_combo = result.ranked[0][2]
        assert graph.node_text(top_combo[0].nodes[0]) == "Xbox"

    def test_xbox_outranks_any_game_subtree(self, case):
        graph, query, indexes = case
        result = individual_topk(indexes, query, k=10)
        game_scores = [
            score
            for score, _key, combo in result.ranked
            if graph.node_type_name(combo[0].nodes[0]) == "Video Game"
        ]
        xbox_scores = [
            score
            for score, _key, combo in result.ranked
            if graph.node_text(combo[0].nodes[0]) == "Xbox"
        ]
        assert xbox_scores
        assert max(xbox_scores) > max(game_scores)


class TestPatternRanking:
    def test_top1_pattern_is_games_table(self, case):
        """Figure 15: the top pattern lists the Xbox games."""
        graph, query, indexes = case
        result = pattern_enum_search(indexes, query, k=1)
        top = result.answers[0]
        assert top.num_subtrees == len(XBOX_GAMES)
        table = top.to_table(graph)
        titles = {row[0] for row in table.rows}
        assert titles == set(XBOX_GAMES)

    def test_games_pattern_beats_singular_patterns(self, case):
        _graph, query, indexes = case
        result = pattern_enum_search(indexes, query, k=5)
        assert result.answers[0].num_subtrees > max(
            answer.num_subtrees for answer in result.answers[1:]
        )


class TestCoverageStory:
    def test_top_individual_missing_from_top_pattern(self, case):
        """The paper's point: the best individual subtree (Xbox) is not a
        row of the best pattern (the games table)."""
        from repro.search.individual import coverage_metrics

        _graph, query, indexes = case
        individual = individual_topk(indexes, query, k=1)
        patterns = pattern_enum_search(indexes, query, k=1)
        metrics = coverage_metrics(individual, patterns)
        assert metrics.coverage == 0.0
