"""The sampling-stress dataset has the regime Figures 11-12 need."""

import pytest

from repro.datasets.sampling_stress import (
    COMMON_WORD,
    SamplingStressConfig,
    TOPIC_WORD,
    sampling_stress_graph,
)
from repro.index.builder import build_indexes
from repro.search.linear_enum import count_answers
from repro.search.linear_topk import linear_topk_search

SMALL = SamplingStressConfig(
    num_articles=600, num_topics=80, num_attrs=16, fanout=3, seed=3
)


@pytest.fixture(scope="module")
def stress():
    graph, queries = sampling_stress_graph(SMALL)
    return build_indexes(graph, d=2), queries


class TestShape:
    def test_queries_answerable(self, stress):
        indexes, queries = stress
        for query in queries:
            patterns, subtrees = count_answers(indexes, query)
            assert patterns >= 1
            assert subtrees >= patterns

    def test_many_rows_per_pattern(self, stress):
        """The defining property: patterns aggregate many subtrees."""
        indexes, queries = stress
        patterns, subtrees = count_answers(indexes, queries[0])
        assert subtrees / patterns > 5

    def test_patterns_spread_over_many_roots(self, stress):
        indexes, queries = stress
        result = linear_topk_search(indexes, queries[0], k=5)
        top = result.answers[0]
        roots = {combo[0].nodes[0] for combo in top.subtrees}
        assert len(roots) > 10

    def test_deterministic(self):
        a_graph, _q = sampling_stress_graph(SMALL)
        b_graph, _q = sampling_stress_graph(SMALL)
        assert a_graph.num_edges == b_graph.num_edges


class TestSamplingBehaviour:
    def test_sampling_reduces_expansion(self, stress):
        indexes, queries = stress
        exact = linear_topk_search(indexes, queries[0], k=10,
                                   keep_subtrees=False)
        sampled = linear_topk_search(
            indexes, queries[0], k=10, keep_subtrees=False,
            sampling_threshold=0, sampling_rate=0.2, seed=5,
        )
        assert sampled.stats.roots_expanded < exact.stats.roots_expanded / 2

    def test_precision_improves_with_rate(self, stress):
        from repro.bench.experiments import precision_by_score

        indexes, queries = stress
        exact = linear_topk_search(indexes, queries[0], k=10,
                                   keep_subtrees=False)
        precisions = []
        for rate in (0.1, 0.5, 1.0):
            sampled = linear_topk_search(
                indexes, queries[0], k=10, keep_subtrees=False,
                sampling_threshold=0, sampling_rate=rate, seed=5,
            )
            precisions.append(
                precision_by_score(exact.scores(), sampled.scores())
            )
        assert precisions[-1] == 1.0
        assert precisions[0] <= precisions[-1]
