"""End-to-end replay of the paper's worked examples (Sections 1-2).

These tests pin the reproduction to the paper: Example 2.2's valid
subtrees, Example 2.3's tree patterns (Figure 2), Example 2.4's scores,
Figure 3's table, and Example 3.1's index lookups.
"""

import pytest

from repro.core.pattern import PathPattern, TreePattern
from repro.kg.stemmer import stem
from repro.search.linear_enum import linear_enum
from repro.search.pattern_enum import pattern_enum_search

W_DATABASE = stem("database")
W_SOFTWARE = stem("software")
W_COMPANY = stem("company")
W_REVENUE = stem("revenue")


def tid(graph, name):
    return graph.type_id(name)


def aid(graph, name):
    return graph.attr_id(name)


def p1_pattern(graph):
    """Figure 2(a): the tree pattern of T1 and T2."""
    return TreePattern(
        (
            PathPattern(
                (tid(graph, "Software"), aid(graph, "Genre"), tid(graph, "Model")),
                False,
            ),
            PathPattern((tid(graph, "Software"),), False),
            PathPattern(
                (
                    tid(graph, "Software"),
                    aid(graph, "Developer"),
                    tid(graph, "Company"),
                ),
                False,
            ),
            PathPattern(
                (
                    tid(graph, "Software"),
                    aid(graph, "Developer"),
                    tid(graph, "Company"),
                    aid(graph, "Revenue"),
                ),
                True,
            ),
        )
    )


def p2_pattern(graph):
    """Figure 2(b): the tree pattern of T3 (book root)."""
    return TreePattern(
        (
            PathPattern((tid(graph, "Book"),), False),
            PathPattern((tid(graph, "Book"),), False),
            PathPattern(
                (tid(graph, "Book"), aid(graph, "Publisher"), tid(graph, "Company")),
                False,
            ),
            PathPattern(
                (
                    tid(graph, "Book"),
                    aid(graph, "Publisher"),
                    tid(graph, "Company"),
                    aid(graph, "Revenue"),
                ),
                True,
            ),
        )
    )


class TestExample22ValidSubtrees:
    def test_t1_t2_t3_enumerated(self, example_bundle, example_query):
        graph, nodes, indexes = example_bundle
        enumeration = linear_enum(indexes, example_query)
        roots = {
            combo[0].nodes[0]
            for combos in enumeration.trees_by_pattern.values()
            for combo in combos
        }
        # T1 rooted at SQL Server, T2 at Oracle DB, T3 at the book.
        assert nodes["SQL Server"] in roots
        assert nodes["Oracle DB"] in roots
        assert any(graph.node_type_name(r) == "Book" for r in roots)


class TestExample23TreePatterns:
    def test_p1_groups_t1_and_t2(self, example_bundle, example_query):
        graph, nodes, indexes = example_bundle
        enumeration = linear_enum(indexes, example_query)
        key = tuple(
            indexes.interner.lookup(path) for path in p1_pattern(graph).paths
        )
        assert key in enumeration.trees_by_pattern
        combos = enumeration.trees_by_pattern[key]
        assert {combo[0].nodes[0] for combo in combos} == {
            nodes["SQL Server"],
            nodes["Oracle DB"],
        }

    def test_p2_groups_t3(self, example_bundle, example_query):
        graph, nodes, indexes = example_bundle
        enumeration = linear_enum(indexes, example_query)
        key = tuple(
            indexes.interner.lookup(path) for path in p2_pattern(graph).paths
        )
        assert key in enumeration.trees_by_pattern
        assert len(enumeration.trees_by_pattern[key]) == 1


class TestExample24Scores:
    def test_p1_score_is_3_5(self, example_bundle, example_query):
        _graph, _nodes, indexes = example_bundle
        result = pattern_enum_search(indexes, example_query, k=1)
        assert result.answers[0].score == pytest.approx(3.5)

    def test_p2_score_is_4_over_3(self, example_bundle, example_query):
        graph, _nodes, indexes = example_bundle
        result = pattern_enum_search(indexes, example_query, k=100)
        target = p2_pattern(graph)
        scores = {
            answer.pattern: answer.score for answer in result.answers
        }
        assert target in scores
        # score(T3) = (1/7) * 4 * (1/6 + 1/6 + 1 + 1) = 4/3
        assert scores[target] == pytest.approx(4.0 / 3.0)

    def test_p1_ranks_above_p2(self, example_bundle, example_query):
        graph, _nodes, indexes = example_bundle
        result = pattern_enum_search(indexes, example_query, k=100)
        ranks = {answer.pattern: i for i, answer in enumerate(result.answers)}
        assert ranks[p1_pattern(graph)] < ranks[p2_pattern(graph)]


class TestFigure3Table:
    def test_table_contents(self, example_bundle, example_query):
        graph, _nodes, indexes = example_bundle
        result = pattern_enum_search(indexes, example_query, k=1)
        table = result.answers[0].to_table(graph)
        assert table.headers() == ["Software", "Model", "Company", "Revenue"]
        assert ["SQL Server", "Relational database", "Microsoft", "US$ 77 billion"] in table.rows
        assert ["Oracle DB", "O-R database", "Oracle Corp", "US$ 37 billion"] in table.rows


class TestExample31IndexLookups:
    def test_patterns_for_database(self, example_bundle):
        """Example 3.1: Patterns(database) has (at least) the three shown."""
        graph, _nodes, indexes = example_bundle
        pids = indexes.pattern_first.patterns(W_DATABASE)
        patterns = {indexes.interner.pattern(pid) for pid in pids}
        shown = {
            PathPattern(
                (tid(graph, "Software"), aid(graph, "Genre"), tid(graph, "Model")),
                False,
            ),
            PathPattern(
                (
                    tid(graph, "Software"),
                    aid(graph, "Reference"),
                    tid(graph, "Book"),
                ),
                False,
            ),
            PathPattern((tid(graph, "Book"),), False),
        }
        assert shown <= patterns

    def test_roots_via_reference_book(self, example_bundle):
        """Roots(database, (Software)(Reference)(Book)) == {SQL Server}."""
        graph, nodes, indexes = example_bundle
        pattern = PathPattern(
            (tid(graph, "Software"), aid(graph, "Reference"), tid(graph, "Book")),
            False,
        )
        pid = indexes.interner.lookup(pattern)
        roots = indexes.pattern_first.roots(W_DATABASE, pid)
        assert set(roots) == {nodes["SQL Server"]}

    def test_root_first_lookups(self, example_bundle):
        """Roots(database) contains v1, v7, v12 equivalents."""
        graph, nodes, indexes = example_bundle
        roots = set(indexes.root_first.roots(W_DATABASE))
        assert nodes["SQL Server"] in roots
        assert nodes["Oracle DB"] in roots
        # Patterns(database, SQL Server) includes both Genre and Reference.
        pids = indexes.root_first.patterns(W_DATABASE, nodes["SQL Server"])
        rendered = {
            indexes.interner.pattern(pid).format(graph) for pid in pids
        }
        assert "(Software) (Genre) (Model)" in rendered
        assert "(Software) (Reference) (Book)" in rendered

    def test_paths_with_pattern(self, example_bundle):
        graph, nodes, indexes = example_bundle
        pattern = PathPattern(
            (tid(graph, "Software"), aid(graph, "Genre"), tid(graph, "Model")),
            False,
        )
        pid = indexes.interner.lookup(pattern)
        paths = indexes.root_first.paths_with_pattern(
            W_DATABASE, nodes["SQL Server"], pid
        )
        assert len(paths) == 1
        assert paths[0].nodes == (
            nodes["SQL Server"],
            nodes["Relational database"],
        )


class TestScoreComponents:
    def test_t1_component_sums(self, example_bundle, example_query):
        """Example 2.4's raw sums: size 8, PR 4, sim 3.5 for T1."""
        from repro.index.entry import combination_score_terms

        graph, nodes, indexes = example_bundle
        enumeration = linear_enum(indexes, example_query)
        key = tuple(
            indexes.interner.lookup(path) for path in p1_pattern(graph).paths
        )
        t1 = [
            combo
            for combo in enumeration.trees_by_pattern[key]
            if combo[0].nodes[0] == nodes["SQL Server"]
        ]
        assert len(t1) == 1
        size, pr, sim = combination_score_terms(t1[0])
        assert size == 8
        assert pr == pytest.approx(4.0)
        assert sim == pytest.approx(3.5)
