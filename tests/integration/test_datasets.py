"""Dataset generators and query workloads."""

import pytest

from repro.datasets.imdb import IMDB_TYPES, ImdbConfig, generate_imdb_graph
from repro.datasets.queries import (
    WorkloadConfig,
    filter_answerable,
    generate_workload,
    sample_answerable_query,
    words_reachable_from,
)
from repro.datasets.synthetic import (
    make_vocabulary,
    sample_phrase,
    zipf_choice,
    zipf_index,
)
from repro.datasets.wiki import (
    WikiConfig,
    generate_wiki_graph,
    wiki_entity_fraction_graph,
)
from repro.kg.statistics import compute_statistics, longest_path_length


class TestSynthetic:
    def test_vocabulary_distinct(self):
        import random

        words = make_vocabulary(random.Random(0), 200)
        assert len(words) == len(set(words)) == 200

    def test_vocabulary_seeded(self):
        import random

        assert make_vocabulary(random.Random(5), 50) == make_vocabulary(
            random.Random(5), 50
        )

    def test_zipf_head_heavier(self):
        import random

        rng = random.Random(0)
        draws = [zipf_index(rng, 100, 1.0) for _ in range(3000)]
        head = sum(1 for draw in draws if draw < 10)
        tail = sum(1 for draw in draws if draw >= 90)
        assert head > 5 * max(tail, 1)

    def test_zipf_bounds(self):
        import random

        rng = random.Random(1)
        for _ in range(200):
            assert 0 <= zipf_index(rng, 7, 0.8) < 7
        with pytest.raises(ValueError):
            zipf_index(rng, 0)

    def test_zipf_choice(self):
        import random

        assert zipf_choice(random.Random(0), ["only"]) == "only"

    def test_sample_phrase_distinct_words(self):
        import random

        rng = random.Random(0)
        vocabulary = make_vocabulary(rng, 50)
        for _ in range(50):
            words = sample_phrase(rng, vocabulary, 2, 4).split()
            assert len(words) == len(set(words))


class TestWikiGenerator:
    def test_seeded_determinism(self):
        config = WikiConfig(num_entities=150, seed=3)
        a = generate_wiki_graph(config)
        b = generate_wiki_graph(config)
        assert a.num_nodes == b.num_nodes
        assert a.num_edges == b.num_edges
        assert [a.node_text(v) for v in a.nodes()] == [
            b.node_text(v) for v in b.nodes()
        ]

    def test_shape(self):
        graph = generate_wiki_graph(WikiConfig(num_entities=300, num_types=15))
        stats = compute_statistics(graph)
        assert stats.num_entity_nodes == 300
        assert stats.num_text_nodes > 0
        assert stats.num_edges > 300
        # Zipf type popularity: the largest type dominates the smallest.
        sizes = sorted(stats.type_histogram.values(), reverse=True)
        assert sizes[0] >= 5 * sizes[-1]

    def test_fraction_graph(self):
        config = WikiConfig(num_entities=300, seed=2)
        half = wiki_entity_fraction_graph(config, 0.5)
        full = wiki_entity_fraction_graph(config, 1.0)
        assert 0 < half.num_nodes < full.num_nodes
        assert half.num_edges < full.num_edges


class TestImdbGenerator:
    def test_exactly_seven_types_plus_text(self):
        graph = generate_imdb_graph(ImdbConfig(num_movies=50))
        names = {graph.type_name(t) for t in graph.type_ids()}
        assert set(IMDB_TYPES) <= names
        assert names - set(IMDB_TYPES) <= {"Text"}

    def test_paths_bounded_by_three(self):
        """The paper's key IMDB property: directed paths have <= 3 nodes."""
        graph = generate_imdb_graph(ImdbConfig(num_movies=80))
        assert longest_path_length(graph) <= 3

    def test_seeded_determinism(self):
        config = ImdbConfig(num_movies=40, seed=9)
        a = generate_imdb_graph(config)
        b = generate_imdb_graph(config)
        assert a.num_edges == b.num_edges


class TestWorkload:
    def test_sizes_and_counts(self, wiki_indexes):
        config = WorkloadConfig(queries_per_size=3, min_keywords=1, max_keywords=4)
        queries = generate_workload(wiki_indexes, config)
        assert len(queries) == 12
        by_size = {}
        for query in queries:
            by_size.setdefault(len(query), 0)
            by_size[len(query)] += 1
        assert by_size == {1: 3, 2: 3, 3: 3, 4: 3}

    def test_seeded(self, wiki_indexes):
        config = WorkloadConfig(queries_per_size=2, max_keywords=3, seed=11)
        assert generate_workload(wiki_indexes, config) == generate_workload(
            wiki_indexes, config
        )

    def test_answerable_queries_have_answers(self, wiki_indexes):
        import random

        from repro.search.linear_enum import count_answers

        rng = random.Random(0)
        for size in (1, 2, 3):
            query = sample_answerable_query(wiki_indexes, size, rng)
            assert query is not None
            patterns, subtrees = count_answers(wiki_indexes, query)
            assert patterns >= 1
            assert subtrees >= 1

    def test_words_reachable_from(self, wiki_indexes):
        words = words_reachable_from(wiki_indexes, 0)
        for word in words:
            assert wiki_indexes.root_first.path_count(word, 0) > 0

    def test_filter_answerable(self, wiki_indexes):
        queries = [("zzzzz",), tuple(words_reachable_from(wiki_indexes, 0)[:1])]
        kept = filter_answerable(wiki_indexes, queries)
        assert ("zzzzz",) not in kept

    def test_bad_config_rejected(self, wiki_indexes):
        from repro.core.errors import QueryError

        with pytest.raises(QueryError):
            generate_workload(
                wiki_indexes, WorkloadConfig(min_keywords=3, max_keywords=2)
            )
