"""Cross-algorithm agreement: the strongest internal consistency check.

Baseline (online reverse search), PATTERNENUM (pattern-first index), and
LINEARENUM-TOPK without sampling (root-first index) take three very
different routes to the same answer set; on every dataset and query they
must produce identical pattern counts, subtree counts, scores, and top-k
pattern sets.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets.queries import WorkloadConfig, generate_workload
from repro.index.builder import build_indexes
from repro.kg.graph import KnowledgeGraph
from repro.search.baseline import baseline_search
from repro.search.linear_topk import linear_topk_search
from repro.search.pattern_enum import pattern_enum_search


def assert_agreement(indexes, query, k=20):
    baseline = baseline_search(indexes, query, k=k)
    pattern = pattern_enum_search(indexes, query, k=k)
    linear = linear_topk_search(indexes, query, k=k)

    assert baseline.num_answers == pattern.num_answers == linear.num_answers
    assert baseline.scores() == pytest.approx(pattern.scores())
    assert pattern.scores() == pytest.approx(linear.scores())
    # Same patterns at unambiguous (tie-free) ranks.  Ties are detected
    # with a relative tolerance: different summation orders across the
    # engines can make equal-by-construction scores differ in the last
    # few ulps, and such near-ties may legitimately be ordered differently.
    b_scores = baseline.scores()

    def near(x, y):
        # Same tolerance as the score comparison above: near-equal scores
        # may be computed fractionally differently per engine and are
        # allowed to order differently.
        return abs(x - y) <= 1e-6 * max(abs(x), abs(y), 1e-30)

    for i, (b, p, l) in enumerate(
        zip(baseline.answers, pattern.answers, linear.answers)
    ):
        tied = sum(1 for s in b_scores if near(s, b_scores[i])) > 1
        # A full list may have been truncated at k; the last kept rank can
        # tie with the first *cut* answer, whose score we cannot see, and
        # each engine may keep a different member of that tie.
        at_cut_boundary = (
            i == len(b_scores) - 1 and len(baseline.answers) == k
        )
        if not tied and not at_cut_boundary:
            assert b.pattern == p.pattern == l.pattern
            assert b.num_subtrees == p.num_subtrees == l.num_subtrees
    return baseline, pattern, linear


class TestOnFixtures:
    def test_example(self, example_indexes, example_query):
        assert_agreement(example_indexes, example_query)

    def test_wiki_workload(self, wiki_indexes):
        queries = generate_workload(
            wiki_indexes,
            WorkloadConfig(queries_per_size=2, max_keywords=4, seed=3),
        )
        assert queries
        for query in queries:
            assert_agreement(wiki_indexes, query, k=10)

    def test_imdb_workload(self, imdb_indexes):
        queries = generate_workload(
            imdb_indexes,
            WorkloadConfig(queries_per_size=2, max_keywords=4, seed=4),
        )
        assert queries
        for query in queries:
            assert_agreement(imdb_indexes, query, k=10)

    def test_single_rare_word(self, wiki_indexes):
        # The least frequent word exercises tiny posting lists.
        word = min(
            wiki_indexes.root_first.words(),
            key=lambda w: wiki_indexes.root_first.num_entries(w),
        )
        assert_agreement(wiki_indexes, (word,), k=5)


# ---------------------------------------------------------------- hypothesis

WORDS = ["apple", "berry", "cedar", "delta"]
TYPES = ["T0", "T1", "T2"]
ATTRS = ["a0", "a1"]


@st.composite
def random_graph_and_query(draw):
    """A small random typed digraph plus a 1-3 word query."""
    num_nodes = draw(st.integers(min_value=2, max_value=7))
    node_types = [
        draw(st.sampled_from(TYPES)) for _ in range(num_nodes)
    ]
    node_texts = [
        " ".join(
            draw(
                st.lists(
                    st.sampled_from(WORDS), min_size=1, max_size=2, unique=True
                )
            )
        )
        for _ in range(num_nodes)
    ]
    possible_edges = [
        (u, v, a)
        for u in range(num_nodes)
        for v in range(num_nodes)
        if u != v
        for a in ATTRS
    ]
    edges = draw(
        st.lists(
            st.sampled_from(possible_edges),
            max_size=min(12, len(possible_edges)),
            unique=True,
        )
    )
    query = draw(
        st.lists(st.sampled_from(WORDS), min_size=1, max_size=3, unique=True)
    )
    graph = KnowledgeGraph()
    for node_type, text in zip(node_types, node_texts):
        graph.add_node(node_type, text)
    for u, v, a in edges:
        graph.add_edge(u, a, v)
    return graph, tuple(query)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(random_graph_and_query(), st.integers(min_value=1, max_value=3))
def test_agreement_on_random_graphs(graph_and_query, d):
    """All three engines agree on arbitrary cyclic typed digraphs."""
    graph, query = graph_and_query
    indexes = build_indexes(graph, d=d)
    assert_agreement(indexes, query, k=15)


@settings(max_examples=20, deadline=None)
@given(random_graph_and_query())
def test_answers_respect_definitions(graph_and_query):
    """Every answer's subtrees: correct height, valid trees, keywords hit."""
    from repro.index.entry import entries_form_tree

    graph, query = graph_and_query
    indexes = build_indexes(graph, d=3)
    result = pattern_enum_search(indexes, query, k=50)
    words = indexes.resolve_query(query)
    for answer in result.answers:
        assert answer.pattern.height <= 3
        assert answer.pattern.num_keywords == len(words)
        for combo in answer.subtrees:
            assert entries_form_tree(combo)
            for word, entry in zip(words, combo):
                if entry.matched_on_edge:
                    tokens = indexes.lexicon.attr_tokens(entry.attrs[-1])
                else:
                    node = entry.nodes[-1]
                    tokens = indexes.lexicon.node_tokens(node) | (
                        indexes.lexicon.type_tokens(graph.node_type(node))
                    )
                assert word in tokens


def test_agreement_survives_save_load(example_indexes, example_query, tmp_path):
    """All four engine algorithms agree across a v2 save/load round-trip.

    Complements the unit-level serialize tests: here the persisted bundle
    is driven through the high-level engine exactly as the CLI does.
    """
    from repro.index.serialize import load_indexes, save_indexes
    from repro.search.engine import TableAnswerEngine

    path = tmp_path / "example.idx"
    save_indexes(example_indexes, path)
    loaded = load_indexes(path)

    fresh_engine = TableAnswerEngine(example_indexes.graph, indexes=example_indexes)
    loaded_engine = TableAnswerEngine(loaded.graph, indexes=loaded)
    for algorithm in ("pattern_enum", "linear", "linear_topk", "baseline"):
        before = fresh_engine.search(example_query, k=10, algorithm=algorithm)
        after = loaded_engine.search(example_query, k=10, algorithm=algorithm)
        assert before.scores() == after.scores()
        assert [a.pattern_key for a in before.answers] == [
            a.pattern_key for a in after.answers
        ]
        assert [a.num_subtrees for a in before.answers] == [
            a.num_subtrees for a in after.answers
        ]
