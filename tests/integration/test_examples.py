"""The shipped examples must run and print their headline answers.

Each example's ``main()`` is imported and executed with stdout captured —
a broken public API surfaces here before it surfaces for a user.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "score=3.5000" in out
    assert "SQL Server | Relational database | Microsoft   | US$ 77 billion" in out
    assert "Oracle DB" in out


def test_movie_tables(capsys):
    out = run_example("movie_tables", capsys)
    assert "mel gibson movie" in out
    # The headline table: all five Mel Gibson movies as rows.
    for title in ("Braveheart", "Mad Max", "Lethal Weapon", "The Patriot",
                  "Ransom"):
        assert title in out


def test_city_population(capsys):
    out = run_example("city_population", capsys)
    assert "Seattle" in out
    assert "737,015" in out
    # Oregon cities must not leak into the Washington table section.
    washington_section = out.split('=== query: "oregon')[0]
    assert "Portland" not in washington_section


def test_persist_and_reload(capsys):
    out = run_example("persist_and_reload", capsys)
    assert "persisted" in out
    assert "Mad Max" in out
    # The synonym query resolves "film" -> "movi" and finds the same rows.
    assert out.count("Lethal Weapon") >= 2


@pytest.mark.slow
def test_sampling_tradeoff(capsys):
    out = run_example("sampling_tradeoff", capsys)
    assert "rho" in out
    assert "1.0" in out
