"""Edge cases and failure injection across the whole stack."""

import pytest

from repro.core.errors import QueryError
from repro.index.builder import build_indexes
from repro.kg.graph import KnowledgeGraph
from repro.search.baseline import baseline_search
from repro.search.linear_topk import linear_topk_search
from repro.search.pattern_enum import pattern_enum_search

ALL_ENGINES = (baseline_search, linear_topk_search, pattern_enum_search)


class TestDegenerateGraphs:
    def test_empty_graph(self):
        indexes = build_indexes(KnowledgeGraph(), d=3, pagerank_scores=[])
        for engine in ALL_ENGINES:
            assert engine(indexes, "anything", k=5).num_answers == 0

    def test_single_node_graph(self):
        graph = KnowledgeGraph()
        graph.add_node("Thing", "lonely widget")
        indexes = build_indexes(graph, d=3)
        for engine in ALL_ENGINES:
            result = engine(indexes, "widget", k=5)
            assert result.num_answers == 1
            assert result.answers[0].pattern.height == 1

    def test_edgeless_graph_multiword(self):
        graph = KnowledgeGraph()
        graph.add_node("A", "alpha beta")
        graph.add_node("B", "alpha")
        indexes = build_indexes(graph, d=3)
        for engine in ALL_ENGINES:
            # Both words only co-occur at node 0.
            result = engine(indexes, "alpha beta", k=5)
            assert result.num_answers == 1
            assert result.answers[0].num_subtrees == 1

    def test_self_loop_rejected_paths(self):
        """Self-loops exist in real KBs; simple paths must skip them."""
        graph = KnowledgeGraph()
        node = graph.add_node("T", "selfref")
        other = graph.add_node("T", "target word")
        graph.add_edge(node, "rel", other)
        graph.add_edge(other, "rel", node)  # 2-cycle
        indexes = build_indexes(graph, d=4)
        for _word, _pid, entry in indexes.root_first.iter_entries():
            assert len(set(entry.nodes)) == len(entry.nodes)

    def test_text_only_everything(self):
        """A graph whose values are all text nodes still answers."""
        graph = KnowledgeGraph()
        root = graph.add_node("Report", "annual report")
        graph.add_edge(root, "Total", graph.add_text_node("42 million"))
        indexes = build_indexes(graph, d=2)
        result = pattern_enum_search(indexes, "report million", k=5)
        assert result.num_answers == 1


class TestQueries:
    def test_whitespace_only_query(self, example_indexes):
        with pytest.raises(QueryError):
            pattern_enum_search(example_indexes, "   ", k=5)

    def test_ten_keyword_query(self, wiki_indexes):
        from repro.datasets.queries import sample_answerable_query
        import random

        query = sample_answerable_query(
            wiki_indexes, 10, random.Random(0)
        )
        if query is None:
            pytest.skip("no 10-word answerable query in small fixture")
        for engine in ALL_ENGINES:
            result = engine(wiki_indexes, query, k=5)
            assert result.num_answers >= 1
            assert all(
                a.pattern.num_keywords == 10 for a in result.answers
            )

    def test_repeated_word_collapses(self, example_indexes):
        single = pattern_enum_search(example_indexes, "microsoft", k=5)
        doubled = pattern_enum_search(
            example_indexes, "microsoft microsoft", k=5
        )
        assert single.scores() == doubled.scores()

    def test_unicode_text(self):
        graph = KnowledgeGraph()
        graph.add_node("Ville", "Zürich café")
        indexes = build_indexes(graph, d=2)
        # Non-ASCII letters are token separators under the ASCII tokenizer;
        # the ASCII fragments remain searchable and nothing crashes.
        result = pattern_enum_search(indexes, "caf", k=5)
        assert result.num_answers in (0, 1)

    def test_numeric_keywords(self, example_bundle):
        _graph, _nodes, indexes = example_bundle
        result = pattern_enum_search(indexes, "77 billion", k=5)
        assert result.num_answers >= 1


class TestKExtremes:
    def test_k_one(self, example_indexes, example_query):
        result = pattern_enum_search(example_indexes, example_query, k=1)
        assert result.num_answers == 1
        assert result.answers[0].score == pytest.approx(3.5)

    def test_k_huge(self, example_indexes, example_query):
        result = pattern_enum_search(example_indexes, example_query, k=10**6)
        assert 0 < result.num_answers < 1000

    def test_k_zero_rejected(self, example_indexes, example_query):
        from repro.core.errors import SearchError

        with pytest.raises(SearchError):
            pattern_enum_search(example_indexes, example_query, k=0)
